// Top-k query execution over the column store — the paper's MapD
// integration study (Sections 5 and 6.8).
//
// Query shape: SELECT id FROM t WHERE <filter> ORDER BY <ranking> DESC
// LIMIT k, executed with one of three strategies:
//
//  * kFilterSort      : filter/project kernel materializes (rank, row) pairs,
//                       then a full radix sort picks the top k — MapD's
//                       default plan in the paper.
//  * kFilterBitonic   : same materialization, bitonic top-k instead of sort.
//  * kCombinedBitonic : the Section 5 FusedSortReducer — the filter acts as
//                       a buffer filler that feeds matched (rank, row) pairs
//                       directly into the in-shared SortReducer, never
//                       materializing the filtered column in global memory.
//
// And: SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY COUNT(*) DESC LIMIT k
// (paper query 4), with the count-ordering step done by sort or bitonic
// top-k.
#ifndef MPTOPK_ENGINE_QUERY_H_
#define MPTOPK_ENGINE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "planner/resilient.h"
#include "simt/exec_ctx.h"

namespace mptopk::engine {

enum class CompareOp { kLt, kLe, kGt, kGe, kEq };

struct FilterClause {
  std::string column;
  CompareOp op;
  double value;
};

/// A disjunction of clauses: matches when ANY clause matches (e.g.
/// lang='en' OR lang='es').
struct Disjunction {
  std::vector<FilterClause> any_of;
};

/// Conjunctive normal form: a row matches when EVERY disjunction matches.
/// No disjunctions = match all. The single-predicate and single-OR filters
/// of the paper's queries are the 1-disjunction special case; CNF also
/// expresses e.g. (time < X) AND (lang='en' OR lang='es').
struct Filter {
  std::vector<Disjunction> all_of;

  Filter() = default;
  /// Convenience: a single disjunction (the paper's query shapes).
  Filter(std::initializer_list<FilterClause> any_of_clauses) {
    all_of.push_back(Disjunction{any_of_clauses});
  }

  Filter& And(std::initializer_list<FilterClause> any_of_clauses) {
    all_of.push_back(Disjunction{any_of_clauses});
    return *this;
  }
};

/// ORDER BY sum(coeff_i * column_i) DESC — the paper's custom ranking
/// functions (e.g. retweet_count + 0.5 * likes_count).
struct RankingTerm {
  std::string column;
  double coeff;
};
struct Ranking {
  std::vector<RankingTerm> terms;
};

enum class TopKStrategy { kFilterSort, kFilterBitonic, kCombinedBitonic };

inline const char* StrategyName(TopKStrategy s) {
  switch (s) {
    case TopKStrategy::kFilterSort:
      return "Filter+Sort";
    case TopKStrategy::kFilterBitonic:
      return "Filter+BitonicTopK";
    case TopKStrategy::kCombinedBitonic:
      return "Combined BitonicTopK";
  }
  return "Unknown";
}

/// How the engine executes the top-k step of a query.
struct ExecOptions {
  /// Route the top-k step through planner::ResilientTopKDevice: the planner
  /// picks the algorithm and faults are retried / fallen back transparently
  /// (the query's `strategy` still controls filtering/materialization; under
  /// the combined strategy the resilient executor serves as the recovery
  /// path when the fused reduction fails).
  bool resilient = false;
  planner::ResilienceOptions resilience;
  /// Run every kernel of this query under the barrier-epoch race checker
  /// (simt/racecheck.h); hazards land in QueryResult::race_hazards /
  /// racecheck_summary. The device's own racecheck state is restored
  /// afterwards. Purely diagnostic — simulated timings are unchanged.
  bool racecheck = false;
  /// Execution context for the whole query (stream + arena). nullptr runs
  /// on the table device's default stream — the legacy single-query path.
  /// Set by engine::BatchExecutor to interleave queries across streams.
  const simt::ExecCtx* ctx = nullptr;
  /// Registry name (or alias) of the operator to run the top-k step with,
  /// overriding the strategy's default ("Sort" under kFilterSort /
  /// GroupByStrategy::kSort, "BitonicTopK" otherwise). Resolved through
  /// topk::FindOperator, so any registered operator — including extensions —
  /// is addressable; unknown names fail the query with the registered list.
  /// Ignored when `resilient` routes the step through the planner.
  std::string topk_operator;
};

struct QueryResult {
  /// Values of the id column for the top rows, descending by rank.
  std::vector<int64_t> ids;
  std::vector<float> rank_values;
  size_t matched_rows = 0;
  /// Simulated device kernel time.
  double kernel_ms = 0.0;
  /// kernel_ms plus PCIe staging of the (small) result.
  double end_to_end_ms = 0.0;
  int kernels_launched = 0;
  /// ExecutionReport::Summary() of the resilient top-k step (empty when
  /// ExecOptions::resilient is off or the step did not run).
  std::string resilience_summary;
  /// Race hazards this query's kernels produced and the checker's one-line
  /// summary (only populated when racecheck ran; see ExecOptions::racecheck).
  uint64_t race_hazards = 0;
  std::string racecheck_summary;
};

/// Runs the filter + order-by-limit query. `id_column` must be kInt64;
/// ranking columns are read as doubles. Returns min(k, matched) rows.
StatusOr<QueryResult> FilterTopKQuery(Table& table, const Filter& filter,
                                      const Ranking& ranking,
                                      const std::string& id_column, size_t k,
                                      TopKStrategy strategy,
                                      const ExecOptions& exec = {});

enum class GroupByStrategy { kSort, kBitonic };

struct GroupByResult {
  std::vector<int32_t> keys;      // group keys, descending by count
  std::vector<uint32_t> counts;
  size_t num_groups = 0;
  double kernel_ms = 0.0;
  double groupby_ms = 0.0;  // hash build + group compaction
  double topk_ms = 0.0;     // the ORDER BY COUNT(*) LIMIT k step
  int kernels_launched = 0;
  /// See QueryResult::resilience_summary.
  std::string resilience_summary;
  /// See QueryResult::race_hazards / racecheck_summary.
  uint64_t race_hazards = 0;
  std::string racecheck_summary;
};

/// GROUP BY count + top-k by count (paper query 4). `group_column` must be
/// kInt32 with non-negative values.
StatusOr<GroupByResult> GroupByCountTopKQuery(Table& table,
                                              const std::string& group_column,
                                              size_t k, GroupByStrategy strategy,
                                              const ExecOptions& exec = {});

}  // namespace mptopk::engine

#endif  // MPTOPK_ENGINE_QUERY_H_
