#include "engine/tweets.h"

#include <cmath>
#include <random>
#include <vector>

namespace mptopk::engine {

StatusOr<std::unique_ptr<Table>> MakeTweetsTable(simt::Device* device,
                                                 size_t rows, uint64_t seed) {
  if (rows == 0) return Status::InvalidArgument("rows must be positive");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  std::vector<int64_t> id(rows);
  std::vector<int32_t> tweet_time(rows);
  std::vector<int32_t> retweet_count(rows);
  std::vector<int32_t> likes_count(rows);
  std::vector<int32_t> lang(rows);
  std::vector<int32_t> uid(rows);

  const int32_t num_users =
      static_cast<int32_t>(std::max<size_t>(1, rows / 4));
  for (size_t i = 0; i < rows; ++i) {
    id[i] = static_cast<int64_t>(1'000'000'000) + static_cast<int64_t>(i);
    tweet_time[i] = static_cast<int32_t>(rng() % kTweetTimeRange);
    // Heavy-tailed popularity: retweets = floor(u^-1.2) - 1, capped.
    double u = std::max(uni(rng), 1e-9);
    retweet_count[i] = static_cast<int32_t>(
        std::min(5e6, std::floor(std::pow(u, -1.2)) - 1.0));
    double v = std::max(uni(rng), 1e-9);
    likes_count[i] = static_cast<int32_t>(std::min(
        5e6, 0.5 * retweet_count[i] + std::floor(std::pow(v, -1.1)) - 1.0));
    double l = uni(rng);
    lang[i] = l < 0.60 ? kLangEn
                       : (l < 0.80 ? kLangEs
                                   : 2 + static_cast<int32_t>(rng() % 8));
    // Skewed user activity: square a uniform so low uids tweet more.
    double w = uni(rng);
    uid[i] = static_cast<int32_t>(w * w * num_users);
  }

  auto table = std::make_unique<Table>(device);
  MPTOPK_RETURN_NOT_OK(table->AddColumnI64("id", id));
  MPTOPK_RETURN_NOT_OK(table->AddColumnI32("tweet_time", tweet_time));
  MPTOPK_RETURN_NOT_OK(table->AddColumnI32("retweet_count", retweet_count));
  MPTOPK_RETURN_NOT_OK(table->AddColumnI32("likes_count", likes_count));
  MPTOPK_RETURN_NOT_OK(table->AddColumnI32("lang", lang));
  MPTOPK_RETURN_NOT_OK(table->AddColumnI32("uid", uid));
  return table;
}

}  // namespace mptopk::engine
