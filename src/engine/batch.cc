#include "engine/batch.h"

#include <algorithm>
#include <cstdio>

#include "topk/registry.h"

namespace mptopk::engine {

std::string BatchReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu queries (%zu failed) | makespan %.3f ms vs serialized "
                "%.3f ms (%.2fx) | %.1f q/s | peak mem %.1f MiB, %llu pooled "
                "reuses",
                items.size(), failed, makespan_ms, serialized_sum_ms,
                makespan_ms > 0 ? serialized_sum_ms / makespan_ms : 0.0,
                queries_per_sec, peak_allocated_bytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(pool_reuse_count));
  return buf;
}

BatchExecutor::BatchExecutor(Table& table, int num_streams) : table_(table) {
  num_streams = std::max(1, num_streams);
  streams_.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    streams_.push_back(
        table_.device()->CreateStream("batch-" + std::to_string(i)));
  }
}

StatusOr<BatchReport> BatchExecutor::Execute(
    const std::vector<BatchQuery>& queries) {
  simt::Device& dev = *table_.device();
  // A batch naming an unknown top-k operator is malformed: resolve every
  // override against the registry up front rather than failing per item.
  for (const BatchQuery& q : queries) {
    if (!q.exec.topk_operator.empty()) {
      MPTOPK_RETURN_NOT_OK(topk::FindOperator(q.exec.topk_operator).status());
    }
  }
  BatchReport report;
  report.items.reserve(queries.size());

  const uint64_t reuse_before = dev.pool_reuse_count();
  // Batch epoch: the earliest point any stream in the pool can start.
  double epoch = streams_.front()->now_ms();
  for (simt::Stream* s : streams_) epoch = std::min(epoch, s->now_ms());
  const int concurrency =
      static_cast<int>(std::min<size_t>(streams_.size(), queries.size()));

  double max_finish = epoch;
  for (size_t i = 0; i < queries.size(); ++i) {
    const BatchQuery& q = queries[i];
    simt::Stream* stream = streams_[i % streams_.size()];
    simt::MemoryArena arena(q.label.empty() ? "query-" + std::to_string(i)
                                            : q.label);
    simt::ExecCtx ctx(dev, stream, &arena);
    ctx.set_concurrency_hint(concurrency);

    BatchItemReport item;
    item.label = arena.name;
    item.stream_id = stream->id();
    item.start_ms = stream->now_ms();

    ExecOptions exec = q.exec;
    exec.ctx = &ctx;
    switch (q.kind) {
      case BatchQuery::Kind::kFilterTopK: {
        auto r = FilterTopKQuery(table_, q.filter, q.ranking, q.id_column,
                                 q.k, q.strategy, exec);
        if (r.ok()) {
          item.result = std::move(r).value();
        } else {
          item.status = r.status();
        }
        break;
      }
      case BatchQuery::Kind::kGroupByCount: {
        auto r = GroupByCountTopKQuery(table_, q.group_column, q.k,
                                       q.groupby_strategy, exec);
        if (r.ok()) {
          item.group_result = std::move(r).value();
        } else {
          item.status = r.status();
        }
        break;
      }
    }
    item.finish_ms = stream->now_ms();
    item.arena_peak_bytes = arena.peak_bytes;
    if (!item.status.ok()) ++report.failed;
    report.serialized_sum_ms += item.finish_ms - item.start_ms;
    max_finish = std::max(max_finish, item.finish_ms);
    report.items.push_back(std::move(item));
  }

  report.makespan_ms = max_finish - epoch;
  if (report.makespan_ms > 0) {
    report.queries_per_sec =
        static_cast<double>(queries.size()) / (report.makespan_ms * 1e-3);
  }
  report.peak_allocated_bytes = dev.peak_allocated_bytes();
  report.pool_reuse_count = dev.pool_reuse_count() - reuse_before;
  report.footprint_bytes = dev.footprint_bytes();
  return report;
}

}  // namespace mptopk::engine
