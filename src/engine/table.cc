#include "engine/table.h"

namespace mptopk::engine {

Status Table::CheckRowCount(size_t n, const std::string& name) {
  if (columns_.empty()) {
    num_rows_ = n;
    return Status::OK();
  }
  if (n != num_rows_) {
    return Status::InvalidArgument("column '" + name + "' has " +
                                   std::to_string(n) + " rows, table has " +
                                   std::to_string(num_rows_));
  }
  return Status::OK();
}

Status Table::AddColumnI32(const std::string& name,
                           const std::vector<int32_t>& v) {
  if (columns_.count(name)) {
    return Status::InvalidArgument("duplicate column '" + name + "'");
  }
  MPTOPK_RETURN_NOT_OK(CheckRowCount(v.size(), name));
  auto col = std::make_unique<Column>();
  col->type = ColumnType::kInt32;
  MPTOPK_ASSIGN_OR_RETURN(col->i32, device_->Alloc<int32_t>(v.size()));
  MPTOPK_RETURN_NOT_OK(device_->CopyToDevice(col->i32, v.data(), v.size()));
  columns_[name] = std::move(col);
  return Status::OK();
}

Status Table::AddColumnI64(const std::string& name,
                           const std::vector<int64_t>& v) {
  if (columns_.count(name)) {
    return Status::InvalidArgument("duplicate column '" + name + "'");
  }
  MPTOPK_RETURN_NOT_OK(CheckRowCount(v.size(), name));
  auto col = std::make_unique<Column>();
  col->type = ColumnType::kInt64;
  MPTOPK_ASSIGN_OR_RETURN(col->i64, device_->Alloc<int64_t>(v.size()));
  MPTOPK_RETURN_NOT_OK(device_->CopyToDevice(col->i64, v.data(), v.size()));
  columns_[name] = std::move(col);
  return Status::OK();
}

Status Table::AddColumnF32(const std::string& name,
                           const std::vector<float>& v) {
  if (columns_.count(name)) {
    return Status::InvalidArgument("duplicate column '" + name + "'");
  }
  MPTOPK_RETURN_NOT_OK(CheckRowCount(v.size(), name));
  auto col = std::make_unique<Column>();
  col->type = ColumnType::kFloat32;
  MPTOPK_ASSIGN_OR_RETURN(col->f32, device_->Alloc<float>(v.size()));
  MPTOPK_RETURN_NOT_OK(device_->CopyToDevice(col->f32, v.data(), v.size()));
  columns_[name] = std::move(col);
  return Status::OK();
}

StatusOr<const Column*> Table::GetColumn(const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    return Status::InvalidArgument("no such column: " + name);
  }
  return it->second.get();
}

}  // namespace mptopk::engine
