// Query execution kernels: filter/project materialization, the Section 5
// FusedSortReducer (filter as buffer-filler feeding the in-shared bitonic
// reduction), hash group-by count, and id gathering.
#include "engine/query.h"

#include <algorithm>

#include "common/bits.h"
#include "gputopk/bitonic_kernels.h"
#include "gputopk/radix_sort.h"
#include "gputopk/topk.h"
#include "topk/registry.h"

namespace mptopk::engine {
namespace {

using gpu::TopKResult;
using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::SharedSpan;
using simt::Thread;
using KV = mptopk::KV;

constexpr int kBlockDim = 256;
constexpr int kMaxGrid = 128;
constexpr size_t kFilterTile = 2048;
constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

// A column resolved to device spans, readable as double inside kernels.
struct ColRef {
  ColumnType type = ColumnType::kInt32;
  GlobalSpan<int32_t> i32;
  GlobalSpan<int64_t> i64;
  GlobalSpan<float> f32;

  double Read(Thread& t, size_t row) const {
    switch (type) {
      case ColumnType::kInt32:
        return static_cast<double>(i32.Read(t, row));
      case ColumnType::kInt64:
        return static_cast<double>(i64.Read(t, row));
      case ColumnType::kFloat32:
        return static_cast<double>(f32.Read(t, row));
    }
    return 0;
  }
};

StatusOr<ColRef> Resolve(const Table& table, const std::string& name) {
  MPTOPK_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(name));
  ColRef ref;
  ref.type = col->type;
  switch (col->type) {
    case ColumnType::kInt32:
      ref.i32 = GlobalSpan<int32_t>(const_cast<Column*>(col)->i32);
      break;
    case ColumnType::kInt64:
      ref.i64 = GlobalSpan<int64_t>(const_cast<Column*>(col)->i64);
      break;
    case ColumnType::kFloat32:
      ref.f32 = GlobalSpan<float>(const_cast<Column*>(col)->f32);
      break;
  }
  return ref;
}

bool Compare(CompareOp op, double lhs, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
  }
  return false;
}

struct CompiledClause {
  ColRef col;
  CompareOp op;
  double value;
};

// Filter + ranking with resolved columns, evaluable per row in kernels.
struct CompiledQuery {
  // CNF: every disjunction must match; empty = match all.
  std::vector<std::vector<CompiledClause>> conjuncts;
  std::vector<std::pair<ColRef, double>> rank_terms;

  bool Match(Thread& t, size_t row) const {
    for (const auto& disjunction : conjuncts) {
      bool any = false;
      for (const auto& c : disjunction) {
        if (Compare(c.op, c.col.Read(t, row), c.value)) {
          any = true;
          break;  // short-circuit, like generated predicate code
        }
      }
      if (!any) return false;
    }
    return true;
  }

  float RankValue(Thread& t, size_t row) const {
    double v = 0;
    for (const auto& [col, coeff] : rank_terms) {
      v += coeff * col.Read(t, row);
    }
    return static_cast<float>(v);
  }
};

StatusOr<CompiledQuery> Compile(const Table& table, const Filter& filter,
                                const Ranking& ranking) {
  CompiledQuery q;
  for (const auto& disjunction : filter.all_of) {
    if (disjunction.any_of.empty()) {
      return Status::InvalidArgument("empty disjunction in filter");
    }
    std::vector<CompiledClause> compiled;
    for (const auto& clause : disjunction.any_of) {
      MPTOPK_ASSIGN_OR_RETURN(ColRef col, Resolve(table, clause.column));
      compiled.push_back(CompiledClause{col, clause.op, clause.value});
    }
    q.conjuncts.push_back(std::move(compiled));
  }
  if (ranking.terms.empty()) {
    return Status::InvalidArgument("ranking needs at least one term");
  }
  for (const auto& term : ranking.terms) {
    MPTOPK_ASSIGN_OR_RETURN(ColRef col, Resolve(table, term.column));
    q.rank_terms.emplace_back(col, term.coeff);
  }
  return q;
}

// Materializes matched (rank, row) pairs compacted into `out` (scan-based
// staging, coalesced write-out); counters[0] accumulates the match count.
Status LaunchFilterProject(const simt::ExecCtx& dev, const CompiledQuery& q,
                           size_t n, GlobalSpan<KV> out,
                           GlobalSpan<uint32_t> counters) {
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, kFilterTile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), kFilterTile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "filter_project"},
      [&](Block& blk) {
        auto kv_tile = blk.AllocShared<KV>(kFilterTile);
        auto flags = blk.AllocShared<uint32_t>(kFilterTile);
        auto compact = blk.AllocShared<KV>(kFilterTile);
        auto th = blk.AllocShared<uint32_t>(kBlockDim);
        auto scratch = blk.AllocShared<uint32_t>(kBlockDim);
        auto meta = blk.AllocShared<uint32_t>(2);

        size_t range_lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t range_hi = std::min(range_lo + per_block, n);
        for (size_t base = range_lo; base < range_hi; base += kFilterTile) {
          size_t count = std::min(kFilterTile, range_hi - base);
          // Evaluate: one global read per referenced column per row.
          blk.ForEachThread([&](Thread& t) {
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              size_t row = base + i;
              bool m = q.Match(t, row);
              flags.Write(t, i, m ? 1u : 0u);
              if (m) {
                kv_tile.Write(t, i,
                              KV{q.RankValue(t, row),
                                 static_cast<uint32_t>(row)});
              }
            }
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            uint32_t c = 0;
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              c += flags.Read(t, i);
            }
            th.Write(t, t.tid, c);
          });
          blk.Sync();
          uint32_t total = 0;
          gpu::BlockExclusiveScan(blk, th, kBlockDim, scratch, &total);
          blk.ForEachThread([&](Thread& t) {
            if (t.tid == 0) {
              meta.Write(t, 0, counters.AtomicAdd(t, 0, total));
              meta.Write(t, 1, total);
            }
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            uint32_t pos = th.Read(t, t.tid);
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              if (flags.Read(t, i) != 0) {
                compact.Write(t, pos++, kv_tile.Read(t, i));
              }
            }
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            uint32_t base_out = meta.Read(t, 0);
            uint32_t total_out = meta.Read(t, 1);
            for (uint32_t i = t.tid; i < total_out; i += kBlockDim) {
              out.Write(t, base_out + i, compact.Read(t, i));
            }
          });
          blk.Sync();
        }
      });
  return st.ok() ? Status::OK() : st.status();
}

// The Section 5 FusedSortReducer: reads nt rows at a time, filters and
// evaluates the ranking, compacts matches into a 16*nt shared buffer, and
// whenever more than 15*nt have accumulated (or input ends) runs the
// SortReducer reduction on the buffer, emitting tile/2^merges candidates
// (bitonic k-runs) per flush. counters[0] = candidates emitted,
// counters[1] = matched rows.
Status LaunchFusedFilterTopK(const simt::ExecCtx& dev, const CompiledQuery& q,
                             size_t n, size_t k,
                             const gpu::bitonic::Geometry<KV>& g,
                             GlobalSpan<KV> out,
                             GlobalSpan<uint32_t> counters) {
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, g.tile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), g.tile);
  const size_t opb = g.tile >> g.merges;
  const auto local_steps =
      gpu::bitonic::LocalSortSteps(static_cast<uint32_t>(k));
  const auto rebuild_steps =
      gpu::bitonic::RebuildSteps(static_cast<uint32_t>(k));
  const KV sentinel = ElementTraits<KV>::LowestSentinel();
  const size_t flush_level = g.tile - g.nt;  // paper: "> 15*nt matched"

  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = g.nt, .regs_per_thread = g.B + 16,
       .name = "fused_filter_topk"},
      [&](Block& blk) {
        auto s = blk.AllocShared<KV>(g.SharedElems(g.tile));
        auto chunk = blk.AllocShared<KV>(g.nt);
        auto th = blk.AllocShared<uint32_t>(g.nt);
        auto scratch = blk.AllocShared<uint32_t>(g.nt);
        auto meta = blk.AllocShared<uint32_t>(2);

        size_t range_lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t range_hi = std::min(range_lo + per_block, n);
        size_t fill = 0;
        uint32_t matched_total = 0;

        auto flush = [&]() {
          // Sentinel-pad, local sort to k-runs, merge-reduce, emit.
          blk.ForEachThread([&](Thread& t) {
            for (size_t i = fill + t.tid; i < g.tile; i += g.nt) {
              s.Write(t, g.PadIdx(i), sentinel);
            }
          });
          blk.Sync();
          gpu::bitonic::RunStepsShared(blk, s, g.tile, local_steps, g.nt, g);
          size_t m = g.tile;
          for (int mg = 0; mg < g.merges; ++mg) {
            gpu::bitonic::MergeShared(blk, s, m, k, g);
            m >>= 1;
            if (mg + 1 < g.merges) {
              gpu::bitonic::RunStepsShared(
                  blk, s, m, rebuild_steps,
                  gpu::bitonic::RebuildThreads(g, m), g);
            }
          }
          blk.ForEachThread([&](Thread& t) {
            if (t.tid == 0) {
              meta.Write(t, 0, counters.AtomicAdd(
                                   t, 0, static_cast<uint32_t>(opb)));
            }
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            uint32_t base_out = meta.Read(t, 0);
            for (size_t i = t.tid; i < opb; i += g.nt) {
              out.Write(t, base_out + i, s.Read(t, g.PadIdx(i)));
            }
          });
          blk.Sync();
          fill = 0;
        };

        for (size_t base = range_lo; base < range_hi; base += g.nt) {
          size_t count = std::min<size_t>(g.nt, range_hi - base);
          // Buffer filler: one row per thread.
          blk.ForEachThread([&](Thread& t) {
            bool m = false;
            if (static_cast<size_t>(t.tid) < count) {
              size_t row = base + t.tid;
              m = q.Match(t, row);
              if (m) {
                chunk.Write(t, t.tid,
                            KV{q.RankValue(t, row),
                               static_cast<uint32_t>(row)});
              }
            }
            th.Write(t, t.tid, m ? 1u : 0u);
          });
          blk.Sync();
          uint32_t total = 0;
          gpu::BlockExclusiveScan(blk, th, g.nt, scratch, &total);
          blk.ForEachThread([&](Thread& t) {
            if (static_cast<size_t>(t.tid) < count) {
              // Re-read own flag via scan offsets: a thread's slot changed
              // to its exclusive offset; matched iff next offset differs.
              uint32_t off = th.Read(t, t.tid);
              uint32_t next = t.tid + 1 < blk.block_dim()
                                  ? th.Read(t, t.tid + 1)
                                  : total;
              if (next != off) {
                s.Write(t, g.PadIdx(fill + off), chunk.Read(t, t.tid));
              }
            }
          });
          blk.Sync();
          fill += total;
          matched_total += total;
          if (fill > flush_level) flush();
        }
        if (fill > 0 || range_lo >= range_hi) {
          if (fill > 0) flush();
        }
        blk.ForEachThread([&](Thread& t) {
          if (t.tid == 0 && matched_total > 0) {
            counters.ReduceAdd(t, 1, matched_total);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Fetches the id column for the (small) top-k row set.
Status LaunchGatherIds(const simt::ExecCtx& dev, GlobalSpan<int64_t> id_col,
                       GlobalSpan<uint32_t> rows, size_t count,
                       GlobalSpan<int64_t> out) {
  auto st = dev.Launch(
      {.grid_dim = 1, .block_dim = kBlockDim, .name = "gather_ids"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = t.tid; i < count; i += kBlockDim) {
            out.Write(t, i, id_col.Read(t, rows.Read(t, i)));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// --- Group-by ----------------------------------------------------------------

uint32_t HashSlots(size_t n) {
  return static_cast<uint32_t>(NextPowerOfTwo(2 * n));
}

// Open-addressing hash build: keys via CAS, counts via atomicAdd.
Status LaunchHashBuild(const simt::ExecCtx& dev, GlobalSpan<int32_t> group_col,
                       size_t n, GlobalSpan<uint32_t> keys,
                       GlobalSpan<uint32_t> counts, uint32_t mask) {
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, kFilterTile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), kFilterTile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "groupby_hash"},
      [&](Block& blk) {
        size_t lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t hi = std::min(lo + per_block, n);
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = lo + t.tid; i < hi; i += kBlockDim) {
            uint32_t key = static_cast<uint32_t>(group_col.Read(t, i));
            uint32_t slot = (key * 2654435761u) & mask;
            while (true) {
              uint32_t cur = keys.AtomicCas(t, slot, kEmptySlot, key);
              if (cur == kEmptySlot || cur == key) {
                counts.ReduceAdd(t, slot, 1u);
                break;
              }
              slot = (slot + 1) & mask;
            }
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Compacts occupied hash slots into (count, key) pairs.
Status LaunchCompactGroups(const simt::ExecCtx& dev, GlobalSpan<uint32_t> keys,
                           GlobalSpan<uint32_t> counts, size_t slots,
                           GlobalSpan<KV> out,
                           GlobalSpan<uint32_t> counters) {
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(slots, kFilterTile)));
  const size_t per_block = RoundUp(CeilDiv(slots, grid), kFilterTile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "groupby_compact"},
      [&](Block& blk) {
        auto compact = blk.AllocShared<KV>(kFilterTile);
        auto th = blk.AllocShared<uint32_t>(kBlockDim);
        auto scratch = blk.AllocShared<uint32_t>(kBlockDim);
        auto meta = blk.AllocShared<uint32_t>(2);
        size_t range_lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t range_hi = std::min(range_lo + per_block, slots);
        for (size_t base = range_lo; base < range_hi; base += kFilterTile) {
          size_t count = std::min(kFilterTile, range_hi - base);
          blk.ForEachThread([&](Thread& t) {
            uint32_t c = 0;
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              c += keys.Read(t, base + i) != kEmptySlot;
            }
            th.Write(t, t.tid, c);
          });
          blk.Sync();
          uint32_t total = 0;
          gpu::BlockExclusiveScan(blk, th, kBlockDim, scratch, &total);
          blk.ForEachThread([&](Thread& t) {
            if (t.tid == 0) {
              meta.Write(t, 0, counters.AtomicAdd(t, 0, total));
              meta.Write(t, 1, total);
            }
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            uint32_t pos = th.Read(t, t.tid);
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              uint32_t key = keys.Read(t, base + i);
              if (key != kEmptySlot) {
                compact.Write(
                    t, pos++,
                    KV{static_cast<float>(counts.Read(t, base + i)), key});
              }
            }
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            uint32_t base_out = meta.Read(t, 0);
            uint32_t total_out = meta.Read(t, 1);
            for (uint32_t i = t.tid; i < total_out; i += kBlockDim) {
              out.Write(t, base_out + i, compact.Read(t, i));
            }
          });
          blk.Sync();
        }
      });
  return st.ok() ? Status::OK() : st.status();
}

// Resolves the operator for a query's top-k step: the ExecOptions override
// when set, otherwise the strategy's default registry name.
StatusOr<const topk::TopKOperator*> ResolveTopKOperator(
    const ExecOptions& exec, const char* strategy_default) {
  return topk::FindOperator(exec.topk_operator.empty() ? strategy_default
                                                       : exec.topk_operator);
}

// Runs the top-k step through the resilient executor and captures its
// one-line report for the query result.
StatusOr<TopKResult<KV>> ResilientStep(const simt::ExecCtx& dev,
                                       DeviceBuffer<KV>& data, size_t n,
                                       size_t k, const ExecOptions& exec,
                                       std::string* summary) {
  MPTOPK_ASSIGN_OR_RETURN(
      auto r, planner::ResilientTopKDevice<KV>(dev, data, n, k,
                                               exec.resilience));
  *summary = r.report.Summary();
  TopKResult<KV> top;
  top.items = std::move(r.items);
  return top;
}

// Enables the device race checker for the duration of one query and restores
// its previous state on exit; Capture reports the hazards attributable to
// this query (delta against the device-wide accumulated report).
class RacecheckScope {
 public:
  RacecheckScope(simt::Device& dev, bool enable)
      : dev_(dev), prev_(dev.racecheck()),
        baseline_(dev.race_report().hazard_count) {
    if (enable) dev_.set_racecheck(true);
  }
  ~RacecheckScope() { dev_.set_racecheck(prev_); }

  void Capture(uint64_t* hazards, std::string* summary) const {
    if (!dev_.racecheck()) return;
    *hazards = dev_.race_report().hazard_count - baseline_;
    *summary = dev_.race_report().Summary();
  }

 private:
  simt::Device& dev_;
  bool prev_;
  uint64_t baseline_;
};

}  // namespace

StatusOr<QueryResult> FilterTopKQuery(Table& table, const Filter& filter,
                                      const Ranking& ranking,
                                      const std::string& id_column, size_t k,
                                      TopKStrategy strategy,
                                      const ExecOptions& exec) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  simt::ExecCtx default_ctx(*table.device());
  const simt::ExecCtx& dev = exec.ctx != nullptr ? *exec.ctx : default_ctx;
  RacecheckScope racecheck(dev.device(), exec.racecheck);
  const size_t n = table.num_rows();
  MPTOPK_ASSIGN_OR_RETURN(const Column* id_col_ptr,
                          table.GetColumn(id_column));
  if (id_col_ptr->type != ColumnType::kInt64) {
    return Status::InvalidArgument("id column must be int64");
  }
  MPTOPK_ASSIGN_OR_RETURN(CompiledQuery q, Compile(table, filter, ranking));

  gpu::DeviceTimeTracker tracker(dev);
  double pcie_start = dev.pcie_ms();
  MPTOPK_ASSIGN_OR_RETURN(auto counters, dev.Alloc<uint32_t>(2));
  counters.host_data()[0] = 0;
  counters.host_data()[1] = 0;
  GlobalSpan<uint32_t> cnts(counters);

  TopKResult<KV> top;
  size_t matched = 0;
  std::string resilience_summary;

  if (strategy == TopKStrategy::kCombinedBitonic) {
    const size_t k2 = NextPowerOfTwo(k);
    MPTOPK_ASSIGN_OR_RETURN(
        auto g, gpu::bitonic::ResolveGeometry<KV>(dev.spec(),
                                                  k2, gpu::BitonicOptions{}));
    const size_t opb = g.tile >> g.merges;
    const int grid = static_cast<int>(
        std::min<uint64_t>(kMaxGrid, CeilDiv(n, g.tile)));
    const size_t per_block = RoundUp(CeilDiv(n, grid), g.tile);
    const size_t max_flushes_per_block =
        CeilDiv(per_block, g.tile - g.nt) + 2;
    MPTOPK_ASSIGN_OR_RETURN(
        auto cand, dev.Alloc<KV>(grid * max_flushes_per_block * opb));
    GlobalSpan<KV> cand_span(cand);
    MPTOPK_RETURN_NOT_OK(
        LaunchFusedFilterTopK(dev, q, n, k2, g, cand_span, cnts));
    uint32_t counter_vals[2];
    MPTOPK_RETURN_NOT_OK(dev.CopyToHost(counter_vals, counters, 2));
    matched = counter_vals[1];
    size_t emitted = counter_vals[0];
    if (matched == 0) {
      QueryResult empty;
      empty.kernel_ms = tracker.ElapsedMs();
      empty.end_to_end_ms = empty.kernel_ms + (dev.pcie_ms() - pcie_start);
      empty.kernels_launched = tracker.Launches();
      racecheck.Capture(&empty.race_hazards, &empty.racecheck_summary);
      return empty;
    }
    auto reduced = gpu::BitonicReduceRuns(dev, cand, emitted, k2);
    if (reduced.ok()) {
      top = std::move(reduced).value();
    } else if (exec.resilient) {
      // Recovery path: the candidate runs are a superset of the global
      // top-k, so a resilient top-k over them yields the same answer.
      const size_t k_r = std::min(std::min(k, matched), emitted);
      MPTOPK_ASSIGN_OR_RETURN(
          top, ResilientStep(dev, cand, emitted, k_r, exec,
                             &resilience_summary));
    } else {
      return reduced.status();
    }
  } else {
    MPTOPK_ASSIGN_OR_RETURN(auto kv_buf, dev.Alloc<KV>(std::max<size_t>(n, 1)));
    GlobalSpan<KV> kv_span(kv_buf);
    MPTOPK_RETURN_NOT_OK(LaunchFilterProject(dev, q, n, kv_span, cnts));
    uint32_t counter_vals[2];
    MPTOPK_RETURN_NOT_OK(dev.CopyToHost(counter_vals, counters, 2));
    matched = counter_vals[0];
    if (matched == 0) {
      QueryResult empty;
      empty.kernel_ms = tracker.ElapsedMs();
      empty.end_to_end_ms = empty.kernel_ms + (dev.pcie_ms() - pcie_start);
      empty.kernels_launched = tracker.Launches();
      racecheck.Capture(&empty.race_hazards, &empty.racecheck_summary);
      return empty;
    }
    const size_t k_eff = std::min(k, matched);
    if (exec.resilient) {
      MPTOPK_ASSIGN_OR_RETURN(top, ResilientStep(dev, kv_buf, matched, k_eff,
                                                 exec, &resilience_summary));
    } else {
      MPTOPK_ASSIGN_OR_RETURN(
          const topk::TopKOperator* op,
          ResolveTopKOperator(exec, strategy == TopKStrategy::kFilterSort
                                        ? "Sort"
                                        : "BitonicTopK"));
      MPTOPK_ASSIGN_OR_RETURN(top, op->TopKDevice(dev, kv_buf, matched,
                                                  k_eff));
    }
  }

  // Trim sentinels (combined path may round k up / pad short matches).
  const size_t k_out = std::min(k, matched);
  top.items.resize(std::min(top.items.size(), k_out));

  // Assemble ids on device (paper: "copies the top-k tweet ids and
  // assembles the tweet").
  QueryResult result;
  result.matched_rows = matched;
  if (!top.items.empty()) {
    std::vector<uint32_t> rows(top.items.size());
    for (size_t i = 0; i < top.items.size(); ++i) {
      rows[i] = top.items[i].value;
      result.rank_values.push_back(top.items[i].key);
    }
    MPTOPK_ASSIGN_OR_RETURN(auto rows_buf,
                            dev.Alloc<uint32_t>(rows.size()));
    MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(rows_buf, rows.data(), rows.size()));
    MPTOPK_ASSIGN_OR_RETURN(auto ids_buf, dev.Alloc<int64_t>(rows.size()));
    GlobalSpan<int64_t> ids_span(ids_buf);
    GlobalSpan<uint32_t> rows_span(rows_buf);
    GlobalSpan<int64_t> id_col(const_cast<Column*>(id_col_ptr)->i64);
    MPTOPK_RETURN_NOT_OK(
        LaunchGatherIds(dev, id_col, rows_span, rows.size(), ids_span));
    result.ids.resize(rows.size());
    MPTOPK_RETURN_NOT_OK(dev.CopyToHost(result.ids.data(), ids_buf, rows.size()));
  }
  result.kernel_ms = tracker.ElapsedMs();
  result.end_to_end_ms = result.kernel_ms + (dev.pcie_ms() - pcie_start);
  result.kernels_launched = tracker.Launches();
  result.resilience_summary = std::move(resilience_summary);
  racecheck.Capture(&result.race_hazards, &result.racecheck_summary);
  return result;
}

StatusOr<GroupByResult> GroupByCountTopKQuery(Table& table,
                                              const std::string& group_column,
                                              size_t k, GroupByStrategy strategy,
                                              const ExecOptions& exec) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  simt::ExecCtx default_ctx(*table.device());
  const simt::ExecCtx& dev = exec.ctx != nullptr ? *exec.ctx : default_ctx;
  RacecheckScope racecheck(dev.device(), exec.racecheck);
  const size_t n = table.num_rows();
  MPTOPK_ASSIGN_OR_RETURN(const Column* gcol, table.GetColumn(group_column));
  if (gcol->type != ColumnType::kInt32) {
    return Status::InvalidArgument("group column must be int32");
  }

  gpu::DeviceTimeTracker tracker(dev);
  const uint32_t slots = HashSlots(n);
  MPTOPK_ASSIGN_OR_RETURN(auto keys, dev.Alloc<uint32_t>(slots));
  MPTOPK_ASSIGN_OR_RETURN(auto counts, dev.Alloc<uint32_t>(slots));
  MPTOPK_RETURN_NOT_OK(
      gpu::FillDevice<uint32_t>(dev, keys, 0, slots, kEmptySlot));
  MPTOPK_RETURN_NOT_OK(gpu::FillDevice<uint32_t>(dev, counts, 0, slots, 0));

  GlobalSpan<int32_t> gspan(const_cast<Column*>(gcol)->i32);
  GlobalSpan<uint32_t> kspan(keys), cspan(counts);
  MPTOPK_RETURN_NOT_OK(
      LaunchHashBuild(dev, gspan, n, kspan, cspan, slots - 1));

  MPTOPK_ASSIGN_OR_RETURN(auto groups, dev.Alloc<KV>(slots));
  MPTOPK_ASSIGN_OR_RETURN(auto counter, dev.Alloc<uint32_t>(1));
  counter.host_data()[0] = 0;
  GlobalSpan<KV> gr(groups);
  GlobalSpan<uint32_t> ct(counter);
  MPTOPK_RETURN_NOT_OK(LaunchCompactGroups(dev, kspan, cspan, slots, gr, ct));
  uint32_t num_groups = 0;
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(&num_groups, counter, 1));
  const double groupby_ms = tracker.ElapsedMs();

  GroupByResult result;
  result.num_groups = num_groups;
  result.groupby_ms = groupby_ms;
  if (num_groups == 0) {
    result.kernel_ms = tracker.ElapsedMs();
    result.kernels_launched = tracker.Launches();
    racecheck.Capture(&result.race_hazards, &result.racecheck_summary);
    return result;
  }
  const size_t k_eff = std::min<size_t>(k, num_groups);
  TopKResult<KV> top;
  if (exec.resilient) {
    MPTOPK_ASSIGN_OR_RETURN(top,
                            ResilientStep(dev, groups, num_groups, k_eff, exec,
                                          &result.resilience_summary));
  } else {
    MPTOPK_ASSIGN_OR_RETURN(
        const topk::TopKOperator* op,
        ResolveTopKOperator(exec, strategy == GroupByStrategy::kSort
                                      ? "Sort"
                                      : "BitonicTopK"));
    MPTOPK_ASSIGN_OR_RETURN(top, op->TopKDevice(dev, groups, num_groups,
                                                k_eff));
  }
  result.topk_ms = tracker.ElapsedMs() - groupby_ms;
  for (const KV& kv : top.items) {
    result.keys.push_back(static_cast<int32_t>(kv.value));
    result.counts.push_back(static_cast<uint32_t>(kv.key));
  }
  result.kernel_ms = tracker.ElapsedMs();
  result.kernels_launched = tracker.Launches();
  racecheck.Capture(&result.race_hazards, &result.racecheck_summary);
  return result;
}

}  // namespace mptopk::engine
