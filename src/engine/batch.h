// BatchExecutor: concurrent multi-query execution over one device.
//
// Accepts N statements (filter+top-k or group-by-count, the paper's query
// shapes), plans and runs each through the regular engine entry points, but
// binds every query to its own ExecCtx — a stream picked round-robin from a
// configurable pool plus a per-query MemoryArena — so queries overlap on
// the simulated timeline and their buffers recycle through the device's
// pooled allocator. Host execution stays sequential (results are therefore
// bit-identical to running the queries one at a time); concurrency lives in
// the timing model, where per-stream clocks advance independently and
// oversubscribed kernels pay bandwidth contention.
//
// The report gives per-query results and placement plus the aggregate
// numbers the ROADMAP's serving story needs: makespan vs. serialized sum,
// queries/sec at the simulated clock, and pooled-memory accounting.
#ifndef MPTOPK_ENGINE_BATCH_H_
#define MPTOPK_ENGINE_BATCH_H_

#include <string>
#include <vector>

#include "engine/query.h"
#include "engine/table.h"

namespace mptopk::engine {

/// One statement of a batch: either a filter+top-k query (kFilterTopK) or
/// a group-by-count top-k (kGroupByCount).
struct BatchQuery {
  enum class Kind { kFilterTopK, kGroupByCount };
  Kind kind = Kind::kFilterTopK;
  std::string label;

  // kFilterTopK parameters.
  Filter filter;
  Ranking ranking;
  std::string id_column = "id";
  TopKStrategy strategy = TopKStrategy::kCombinedBitonic;

  // kGroupByCount parameters.
  std::string group_column;
  GroupByStrategy groupby_strategy = GroupByStrategy::kBitonic;

  size_t k = 10;
  /// Per-query resilience settings; ExecOptions::ctx is overwritten with
  /// the batch-assigned context.
  ExecOptions exec;
};

/// Per-query outcome and timeline placement.
struct BatchItemReport {
  std::string label;
  int stream_id = 0;
  double start_ms = 0.0;
  double finish_ms = 0.0;
  /// Peak bytes live in this query's arena (its working set).
  size_t arena_peak_bytes = 0;
  Status status = Status::OK();
  QueryResult result;             // kind == kFilterTopK
  GroupByResult group_result;     // kind == kGroupByCount
};

struct BatchReport {
  std::vector<BatchItemReport> items;
  size_t failed = 0;
  /// Wall-clock of the overlapped schedule (max finish - batch epoch).
  double makespan_ms = 0.0;
  /// Sum of the per-query stream spans — what the same schedule costs with
  /// no overlap (contention inflation included, so this upper-bounds a
  /// clean sequential run).
  double serialized_sum_ms = 0.0;
  double queries_per_sec = 0.0;
  /// Device-wide allocation high-water mark after the batch (table
  /// residency + live query working sets).
  size_t peak_allocated_bytes = 0;
  /// Allocations served by free-list reuse during the batch.
  uint64_t pool_reuse_count = 0;
  /// Address space carved out of the device (plateaus under pooling).
  size_t footprint_bytes = 0;

  std::string Summary() const;
};

class BatchExecutor {
 public:
  /// Creates `num_streams` streams (>= 1) on the table's device. The
  /// executor may be reused; streams persist and their clocks carry
  /// forward, so a second Execute schedules after the first.
  BatchExecutor(Table& table, int num_streams);

  /// Runs all queries, round-robin across the stream pool. Individual query
  /// failures are recorded in the report (failed count + per-item status)
  /// without aborting the batch; only malformed batches return non-OK.
  StatusOr<BatchReport> Execute(const std::vector<BatchQuery>& queries);

  int num_streams() const { return static_cast<int>(streams_.size()); }

 private:
  Table& table_;
  std::vector<simt::Stream*> streams_;
};

}  // namespace mptopk::engine

#endif  // MPTOPK_ENGINE_BATCH_H_
