// Synthetic stand-in for the paper's 250M-tweet dataset (Section 6.8).
//
// The paper's four queries depend only on column types, selectivities and
// cardinalities, which this generator matches at a configurable scale:
//   id            int64, unique
//   tweet_time    int32, uniform in [0, kTimeRange) (Q1 sweeps selectivity)
//   retweet_count int32, Zipf-like heavy tail
//   likes_count   int32, Zipf-like heavy tail (correlated with retweets)
//   lang          int32 dictionary code; en=0 (~60%), es=1 (~20%), rest
//                 spread over 8 more codes (en+es ~ 80%, matching Q3)
//   uid           int32, ~rows/4 distinct users (250M tweets / 57M users),
//                 skewed so a few users tweet a lot (Q4 top-50)
#ifndef MPTOPK_ENGINE_TWEETS_H_
#define MPTOPK_ENGINE_TWEETS_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "engine/table.h"

namespace mptopk::engine {

inline constexpr int32_t kTweetTimeRange = 1 << 20;
inline constexpr int kLangEn = 0;
inline constexpr int kLangEs = 1;

/// Builds a device-resident tweets table with `rows` rows.
StatusOr<std::unique_ptr<Table>> MakeTweetsTable(simt::Device* device,
                                                 size_t rows,
                                                 uint64_t seed = 42);

}  // namespace mptopk::engine

#endif  // MPTOPK_ENGINE_TWEETS_H_
