// Minimal device-resident column store used to reproduce the paper's MapD
// integration study (Sections 5 and 6.8): named typed columns living in
// simulated GPU global memory, loaded once from host vectors.
#ifndef MPTOPK_ENGINE_TABLE_H_
#define MPTOPK_ENGINE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "simt/device.h"

namespace mptopk::engine {

enum class ColumnType { kInt32, kInt64, kFloat32 };

/// One device-resident column. Only the buffer matching `type` is populated.
struct Column {
  ColumnType type;
  simt::DeviceBuffer<int32_t> i32;
  simt::DeviceBuffer<int64_t> i64;
  simt::DeviceBuffer<float> f32;
};

/// A device-resident table: named columns of equal row count.
class Table {
 public:
  explicit Table(simt::Device* device) : device_(device) {}

  Status AddColumnI32(const std::string& name, const std::vector<int32_t>& v);
  Status AddColumnI64(const std::string& name, const std::vector<int64_t>& v);
  Status AddColumnF32(const std::string& name, const std::vector<float>& v);

  StatusOr<const Column*> GetColumn(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return columns_.count(name) > 0;
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  simt::Device* device() const { return device_; }

 private:
  Status CheckRowCount(size_t n, const std::string& name);

  simt::Device* device_;
  size_t num_rows_ = 0;
  std::map<std::string, std::unique_ptr<Column>> columns_;
};

}  // namespace mptopk::engine

#endif  // MPTOPK_ENGINE_TABLE_H_
