#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "gputopk/bitonic_plan.h"
#include "simt/timing_model.h"

namespace mptopk::cost {
namespace {

constexpr int kBlockDim = 256;
constexpr double kMs = 1e3;

double Bg(const simt::DeviceSpec& spec) { return spec.global_bw_gbps * 1e9; }
/// Global bandwidth available to one stream of `w`: the device pipe divided
/// by the expected number of concurrently executing streams. Shared-memory
/// bandwidth (Bs) is a per-SM resource and is not divided.
double Bg(const simt::DeviceSpec& spec, const Workload& w) {
  return Bg(spec) / GlobalContention(w);
}
double Bs(const simt::DeviceSpec& spec) { return spec.shared_bw_gbps * 1e9; }
double LaunchMs(const simt::DeviceSpec& spec) {
  return spec.kernel_launch_overhead_us * 1e-3;
}

}  // namespace

double GlobalContention(const Workload& w) {
  return w.concurrent_streams > 1 ? static_cast<double>(w.concurrent_streams)
                                  : 1.0;
}

std::vector<double> RadixSelectEtas(const Workload& w) {
  const int passes = static_cast<int>(w.key_size);
  std::vector<double> etas(passes);
  switch (w.dist) {
    case Distribution::kBucketKiller:
      // Each pass eliminates exactly one key: the reduction check never
      // triggers the skip, so every pass reads AND rewrites ~the whole
      // dataset -- degrading to sort cost (paper Section 6.4).
      std::fill(etas.begin(), etas.end(), 1.0 - 1e-9);
      break;
    case Distribution::kUniform:
    case Distribution::kIncreasing:
    case Distribution::kDecreasing:
      if (w.key_size == 4 && w.elem_size >= 4) {
        // U(0,1) float keys: the top MSD bucket (exponent of [0.5, 1))
        // holds about half the data; subsequent digits are uniform.
        etas[0] = 0.5;
        for (int i = 1; i < passes; ++i) etas[i] = 1.0 / 256;
      } else {
        etas.assign(passes, 1.0 / 256);
      }
      if (w.key_size == 8) {
        // U(0,1) doubles: the first byte is shared by ~all values (skip);
        // the second byte splits the exponent tail ~1/64.
        etas[0] = 1.0;
        etas[1] = 1.0 / 64;
        for (int i = 2; i < passes; ++i) etas[i] = 1.0 / 256;
      }
      break;
  }
  return etas;
}

double RadixSelectCostMs(const simt::DeviceSpec& spec, const Workload& w) {
  const auto etas = RadixSelectEtas(w);
  const double bg = Bg(spec, w);
  double total_s = 0;
  double candidates = static_cast<double>(w.n);
  for (double eta : etas) {
    if (candidates <= static_cast<double>(w.k)) break;
    const double d_bytes = candidates * w.elem_size;
    const double nt =
        std::min(128.0, std::ceil(candidates / 2048.0)) *
        kBlockDim;  // bounded grid, matching the implementation
    // T_i1: read input, write 16 ints of digit counts per thread.
    const double t1 = d_bytes / bg + 16.0 * 4.0 * nt / bg;
    // T_i2: prefix sum over the counts.
    const double t2 = 2.0 * 16.0 * 4.0 * nt / bg;
    // T_i3: cluster pass, skipped when no reduction.
    const double t3 =
        eta >= 1.0 ? 0.0 : d_bytes / bg + eta * d_bytes / bg;
    total_s += t1 + t2 + t3;
    candidates = std::max(static_cast<double>(w.k), candidates * eta);
  }
  // Three kernels per pass (histogram, scan, cluster).
  return total_s * kMs + 3 * etas.size() * LaunchMs(spec);
}

BitonicCostBreakdown BitonicTopKCost(const simt::DeviceSpec& spec,
                                     const Workload& w) {
  BitonicCostBreakdown out;
  const double bg = Bg(spec, w);
  const double bs = Bs(spec);
  const size_t es = w.elem_size;

  // Geometry, mirroring ResolveGeometry: B = 16, block shrunk to fit shared.
  const int B = 16;
  int nt = 256;
  auto shared_elems = [](size_t t) { return t + (t >> 5) + 1; };
  while (nt > 32 &&
         shared_elems(static_cast<size_t>(nt) * B) * es >
             spec.shared_mem_per_block) {
    nt >>= 1;
  }
  const size_t tile = static_cast<size_t>(nt) * B;
  const int merges = std::min(Log2Floor(static_cast<uint64_t>(B)),
                              Log2Floor(std::max<size_t>(2, tile / w.k)));
  const int wb = 4;  // window budget bits for B = 16

  // Weighted shared accesses per element for a window list: 2 accesses
  // (read + write), doubled for strided windows (residual conflicts).
  auto window_cost = [&](const std::vector<gpu::BitonicWindow>& ws) {
    double c = 0;
    for (const auto& win : ws) c += win.strided() ? 4.0 : 2.0;
    return c;
  };
  const auto local_windows =
      gpu::PlanBitonicWindows(gpu::BitonicLocalSortSteps(w.k), wb);
  const auto rebuild_windows =
      gpu::PlanBitonicWindows(gpu::BitonicRebuildSteps(w.k), wb);
  const double local_cost = window_cost(local_windows);
  const double rebuild_cost = window_cost(rebuild_windows);

  // SortReducer shared traffic per input element, in accesses:
  //   load(1) + local sort + merges (1.5 per surviving element) +
  //   rebuilds between merges + store(1/2^merges).
  double per_elem = 1.0 + local_cost;
  double frac = 1.0;
  for (int m = 0; m < merges; ++m) {
    per_elem += 1.5 * frac;
    frac /= 2;
    if (m + 1 < merges) per_elem += rebuild_cost * frac;
  }
  per_elem += frac;  // store
  out.shared_traffic_in_d = per_elem;

  const double d_bytes = static_cast<double>(w.n) * es;
  const int red = 1 << merges;  // per-kernel reduction factor
  out.sort_reducer_global_ms =
      (d_bytes + d_bytes / red) / bg * kMs;
  out.sort_reducer_shared_ms = per_elem * d_bytes / bs * kMs;
  out.total_ms =
      std::max(out.sort_reducer_global_ms, out.sort_reducer_shared_ms) +
      LaunchMs(spec);

  // BitonicReducer chain + final kernel: same structure with rebuild first.
  double reducer_per_elem = 1.0 + 1.0 / red;  // load + store
  frac = 1.0;
  for (int m = 0; m < merges; ++m) {
    reducer_per_elem += rebuild_cost * frac + 1.5 * frac;
    frac /= 2;
  }
  double m_cur = static_cast<double>(w.n) / red;
  while (m_cur > static_cast<double>(tile)) {
    double bytes = m_cur * es;
    double tg = (bytes + bytes / red) / bg;
    double ts = reducer_per_elem * bytes / bs;
    out.reducer_tail_ms += std::max(tg, ts) * kMs + LaunchMs(spec);
    m_cur /= red;
  }
  // Final single-block kernel: dominated by launch overhead at realistic n.
  out.reducer_tail_ms += LaunchMs(spec);
  out.total_ms += out.reducer_tail_ms;
  return out;
}

double BitonicTopKCostMs(const simt::DeviceSpec& spec, const Workload& w) {
  return BitonicTopKCost(spec, w).total_ms;
}

double SortCostMs(const simt::DeviceSpec& spec, const Workload& w) {
  const int passes = static_cast<int>(w.key_size);
  const double d_bytes = static_cast<double>(w.n) * w.elem_size;
  // Per pass: histogram read + scatter read + scatter write, global-bound
  // (shared staging traffic ~8 accesses/elem stays under the global time).
  const double global_s = passes * 3.0 * d_bytes / Bg(spec, w);
  const double shared_s =
      passes * 8.0 * d_bytes / Bs(spec);
  return std::max(global_s, shared_s) * kMs + 3 * passes * LaunchMs(spec);
}

double BucketSelectCostMs(const simt::DeviceSpec& spec, const Workload& w) {
  const double bg = Bg(spec, w);
  const double bs = Bs(spec);
  double total_s = static_cast<double>(w.n) * w.elem_size / bg;  // min/max
  if (w.k == 1) return total_s * kMs + 2 * LaunchMs(spec);
  double candidates = static_cast<double>(w.n);
  const double eta = w.dist == Distribution::kBucketKiller ? 1.0 : 1.0 / 16;
  int passes = 0;
  while (candidates > static_cast<double>(w.k) && passes < 16) {
    const double bytes = candidates * w.elem_size;
    // Histogram read + cluster read&write, plus heavily contended 16-bin
    // shared atomics (approx. 4 colliding lanes * cost factor 4 -> ~16
    // bank-cycles per 32 elements).
    const double t_global = (2.0 + eta) * bytes / bg;
    const double t_atomics =
        candidates * 16.0 * spec.shared_atomic_cost_factor / bs;
    total_s += t_global + t_atomics;
    candidates = std::max(static_cast<double>(w.k), candidates * eta);
    ++passes;
  }
  return total_s * kMs + 3 * passes * LaunchMs(spec);
}

double PerThreadCostMs(const simt::DeviceSpec& spec, const Workload& w) {
  // Block size shrinks with k to fit the heaps in shared memory.
  int nt = 256;
  while (nt >= 32 &&
         w.k * w.elem_size * nt > spec.shared_mem_per_block) {
    nt >>= 1;
  }
  if (nt < 32) return -1.0;  // infeasible (paper Section 4.1)

  const double bg = Bg(spec, w);
  const double bs = Bs(spec);
  const int max_threads = spec.num_sms * spec.max_threads_per_sm;
  const int log_k = std::max(1, Log2Ceil(w.k));
  // Warp slots per heap update: ~2 accesses per sift level plus the root
  // write, inflated ~1.5x by SIMT misalignment of divergent lanes.
  const double update_slots = 1.5 * (2.0 * log_k + 1.0);

  double total_s = 0;
  double m = static_cast<double>(w.n);
  const double threshold = std::max(64.0 * w.k, 4096.0);
  // Reduction pass chain, mirroring the implementation's geometry.
  while (m > threshold) {
    double want = m / (16.0 * w.k);
    int grid = static_cast<int>(
        std::clamp(std::ceil(want / nt), 1.0,
                   static_cast<double>(max_threads / nt)));
    double threads = static_cast<double>(grid) * nt;
    if (threads * w.k >= m) break;
    simt::Occupancy occ = simt::ComputeOccupancy(
        spec, simt::KernelResources{grid, nt, 32,
                                    w.k * w.elem_size * nt});
    const double eff = std::max(occ.bw_efficiency, 1e-3);
    const double sh_eff = std::max(
        occ.shared_efficiency * occ.sm_utilization, 1e-3);

    double per_thread = m / threads;
    double inserts;
    switch (w.dist) {
      case Distribution::kIncreasing:
        inserts = per_thread;  // every element updates the heap
        break;
      case Distribution::kDecreasing:
        inserts = static_cast<double>(w.k);
        break;
      default:
        // Expected updates of a random stream: k * (ln(m/k) + 1).
        inserts = w.k * (std::log(std::max(1.0, per_thread / w.k)) + 1.0);
    }
    const double t_global = m * w.elem_size / (bg * eff);
    const double probe_slots = m / 32.0;
    const double insert_slots = threads / 32.0 * inserts * update_slots;
    const double t_shared = (probe_slots + insert_slots) * 128.0 /
                            (bs * sh_eff);
    // Dependent-latency exposure of the sift chains (matches the
    // simulator's dependent_stall_cycles pricing).
    const double dep_cycles = threads * inserts * 2.0 * log_k *
                              spec.dependent_access_latency_cycles;
    const double t_dep =
        dep_cycles / (spec.clock_ghz * 1e9) /
        (spec.num_sms * std::max(occ.sm_utilization, 1e-3) *
         std::max(1.0, static_cast<double>(occ.resident_warps)));
    total_s += std::max(t_global, t_shared) + t_dep;
    m = threads * w.k;
  }
  // Final single-block kernel: one warp reads m elements, then a serial
  // merge of the surviving heaps.
  total_s += m * w.elem_size / (bg / 16.0) + 32.0 * w.k * update_slots /
                                                 (bs / 128.0 / 96.0);
  int passes = 2 + static_cast<int>(
                       std::log(std::max(2.0, static_cast<double>(w.n) / m)) /
                       std::log(16.0));
  return total_s * kMs + passes * LaunchMs(spec);
}

double HybridCostMs(const simt::DeviceSpec& spec, const Workload& w) {
  const double bg = Bg(spec, w);
  const size_t sample = 16384;
  if (w.n <= 4 * sample) return BitonicTopKCostMs(spec, w);
  if (w.dist == Distribution::kBucketKiller) {
    // Non-discriminating pivot: wasted sample + filter, then full bitonic.
    return BitonicTopKCostMs(spec, w) +
           static_cast<double>(w.n) * w.elem_size / bg * kMs +
           4 * LaunchMs(spec);
  }
  // Sample read (one 32B sector per strided element) + filter read +
  // candidate writes + two tiny bitonic runs (~launch overheads).
  const double sample_s = sample * 32.0 / bg;
  const double filter_s = static_cast<double>(w.n) * w.elem_size / bg;
  const double cand = std::max<double>(32.0 * w.n / sample, 4.0 * w.k);
  const double tail_s = 2.0 * cand * w.elem_size / bg;
  return (sample_s + filter_s + tail_s) * kMs + 6 * LaunchMs(spec);
}

}  // namespace mptopk::cost
