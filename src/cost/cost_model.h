// Analytical cost models (paper Section 7) for the two best-performing
// algorithms, Radix Select and Bitonic Top-K, plus coarser extension models
// for Sort, Bucket Select and PerThread used by the planner.
//
// The models use the paper's hardware parameters: global bandwidth B_G,
// shared bandwidth B_S, key size w, input size D and thread count n_t, and
// follow the paper's structure:
//
//   Radix Select, pass i (Section 7.1):
//     T_i1 = D_i/B_G + 16*4*n_t/B_G        (read + per-thread digit counts)
//     T_i2 = 2*16*4*n_t/B_G                (prefix sum)
//     T_i3 = D_i/B_G + eta_i * D_i/B_G     (cluster; skipped when eta_i = 1)
//
//   Bitonic Top-K (Section 7.2), per fused kernel:
//     T_g = D_in/B_G + D_out/B_G           (global traffic)
//     T_k = sum_i delta_i * (D_i + D_o)/B_S (shared traffic, with per-step
//                                            bank conflict factors delta_i)
//     T   = max(T_g, T_k)
//
// The bitonic shared-traffic term is derived from the same window plan the
// kernels execute (gputopk/bitonic_plan.h), with delta = 1 for contiguous
// windows and delta = 2 for strided lead windows (the measured residual
// conflict level after padding + chunk permutation).
#ifndef MPTOPK_COST_COST_MODEL_H_
#define MPTOPK_COST_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/distributions.h"
#include "simt/device_spec.h"

namespace mptopk::cost {

/// Workload description shared by all models.
struct Workload {
  size_t n = 0;          ///< number of elements
  size_t k = 0;          ///< result size
  size_t elem_size = 4;  ///< bytes per element (key [+ payload])
  size_t key_size = 4;   ///< bytes of the radix key
  Distribution dist = Distribution::kUniform;
  /// Streams expected to execute concurrently with this query (>= 1).
  /// Global memory bandwidth is shared across streams, so every
  /// global-bandwidth-bound term scales by this factor while shared-memory
  /// terms (a per-SM resource) do not — which shifts the planner toward
  /// shared-memory-bound algorithms (bitonic) under heavy batching.
  int concurrent_streams = 1;
};

/// Effective global-bandwidth divisor for `w` (>= 1).
double GlobalContention(const Workload& w);

/// Per-pass candidate-survival fractions eta_i for radix select under the
/// given distribution (uniform ints: 1/256 per pass; uniform U(0,1) floats:
/// exponent clustering keeps eta_0 high; bucket killer: eta = 1 with the
/// clustering pass skipped).
std::vector<double> RadixSelectEtas(const Workload& w);

/// Predicted milliseconds for radix-select top-k (paper Section 7.1).
double RadixSelectCostMs(const simt::DeviceSpec& spec, const Workload& w);

/// Predicted milliseconds for bitonic top-k with all optimizations
/// (paper Section 7.2). Also exposes the component terms for inspection.
struct BitonicCostBreakdown {
  double sort_reducer_global_ms = 0;
  double sort_reducer_shared_ms = 0;
  double reducer_tail_ms = 0;  // BitonicReducer chain + final kernel
  double total_ms = 0;
  /// Shared traffic of the SortReducer in units of D (the paper quotes
  /// 17.5*D/B_S for k=32).
  double shared_traffic_in_d = 0;
};
BitonicCostBreakdown BitonicTopKCost(const simt::DeviceSpec& spec,
                                     const Workload& w);
double BitonicTopKCostMs(const simt::DeviceSpec& spec, const Workload& w);

/// Extension models (not in the paper; used by the planner so every
/// algorithm has a prediction).
double SortCostMs(const simt::DeviceSpec& spec, const Workload& w);
double BucketSelectCostMs(const simt::DeviceSpec& spec, const Workload& w);
/// Returns a negative value when the configuration is infeasible (shared
/// memory exhausted, paper Section 4.1).
double PerThreadCostMs(const simt::DeviceSpec& spec, const Workload& w);

/// Sampling-based hybrid (gputopk/hybrid_topk.h; paper Section 8 future
/// work): ~one coalesced read + sample + tiny bitonic on discriminating
/// keys; bitonic-plus-a-read on adversarial ones.
double HybridCostMs(const simt::DeviceSpec& spec, const Workload& w);

}  // namespace mptopk::cost

#endif  // MPTOPK_COST_COST_MODEL_H_
