#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace mptopk {

void Flags::Define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  flags_[name] = FlagDef{default_value, default_value, help};
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    it->second.value = value;
  }
  return Status::OK();
}

void Flags::PrintHelp(const std::string& program) const {
  std::printf("Usage: %s [flags]\n", program.c_str());
  for (const auto& [name, def] : flags_) {
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), def.help.c_str(),
                def.default_value.empty() ? "\"\"" : def.default_value.c_str());
  }
}

std::string Flags::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? "" : it->second.value;
}

int64_t Flags::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 0);
}

double Flags::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

}  // namespace mptopk
