// Order-preserving transforms from comparable key types to unsigned integer
// bit patterns, and back.
//
// Radix-based algorithms (radix sort, radix select) operate on unsigned
// digits. To support signed integers and IEEE-754 floats with the same
// machinery, keys are mapped to unsigned values such that
//   a < b  <=>  ToOrderedBits(a) < ToOrderedBits(b).
//
// * unsigned ints: identity.
// * signed ints: flip the sign bit (two's-complement bias).
// * floats/doubles: flip the sign bit for non-negatives, flip all bits for
//   negatives (the classic "radix-sortable float" trick). Total order over
//   all values, with -0.0 < +0.0.
//
// NaN ordering (the library-wide contract, enforced here so every algorithm
// — radix- and comparison-based alike — agrees): every NaN, regardless of
// sign or payload bits, maps to the single greatest ordered value. Hence
// NaN > +Inf, all NaNs compare equal to each other, and a NaN that enters a
// top-k result is returned as the canonical quiet NaN (payload bits are not
// preserved). Comparison-based algorithms obtain the same order through
// ElementTraits<E>::Less, which compares ordered bits for float keys. See
// docs/robustness.md ("Degenerate inputs").
#ifndef MPTOPK_COMMON_KEY_TRANSFORM_H_
#define MPTOPK_COMMON_KEY_TRANSFORM_H_

#include <bit>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace mptopk {

template <typename T>
struct KeyTraits;

template <>
struct KeyTraits<uint32_t> {
  using Unsigned = uint32_t;
  static constexpr Unsigned ToOrderedBits(uint32_t v) { return v; }
  static constexpr uint32_t FromOrderedBits(Unsigned u) { return u; }
  static constexpr uint32_t Lowest() { return 0; }
};

template <>
struct KeyTraits<uint64_t> {
  using Unsigned = uint64_t;
  static constexpr Unsigned ToOrderedBits(uint64_t v) { return v; }
  static constexpr uint64_t FromOrderedBits(Unsigned u) { return u; }
  static constexpr uint64_t Lowest() { return 0; }
};

template <>
struct KeyTraits<int32_t> {
  using Unsigned = uint32_t;
  static constexpr Unsigned ToOrderedBits(int32_t v) {
    return static_cast<uint32_t>(v) ^ 0x80000000u;
  }
  static constexpr int32_t FromOrderedBits(Unsigned u) {
    return static_cast<int32_t>(u ^ 0x80000000u);
  }
  static constexpr int32_t Lowest() { return INT32_MIN; }
};

template <>
struct KeyTraits<int64_t> {
  using Unsigned = uint64_t;
  static constexpr Unsigned ToOrderedBits(int64_t v) {
    return static_cast<uint64_t>(v) ^ 0x8000000000000000ull;
  }
  static constexpr int64_t FromOrderedBits(Unsigned u) {
    return static_cast<int64_t>(u ^ 0x8000000000000000ull);
  }
  static constexpr int64_t Lowest() { return INT64_MIN; }
};

template <>
struct KeyTraits<float> {
  using Unsigned = uint32_t;
  static constexpr Unsigned ToOrderedBits(float v) {
    if (v != v) return 0xFFFFFFFFu;  // canonical NaN: the greatest key
    uint32_t bits = std::bit_cast<uint32_t>(v);
    return (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
  }
  static constexpr float FromOrderedBits(Unsigned u) {
    uint32_t bits = (u & 0x80000000u) ? (u & 0x7FFFFFFFu) : ~u;
    return std::bit_cast<float>(bits);
  }
  /// The least key under this total order. Must be -Inf, not -FLT_MAX:
  /// sentinel padding compares against real input, and an input containing
  /// -Inf would rank below a -FLT_MAX sentinel, letting the sentinel leak
  /// into top-k results.
  static constexpr float Lowest() {
    return -std::numeric_limits<float>::infinity();
  }
};

template <>
struct KeyTraits<double> {
  using Unsigned = uint64_t;
  static constexpr Unsigned ToOrderedBits(double v) {
    if (v != v) return 0xFFFFFFFFFFFFFFFFull;  // canonical NaN: greatest key
    uint64_t bits = std::bit_cast<uint64_t>(v);
    return (bits & 0x8000000000000000ull) ? ~bits
                                          : (bits | 0x8000000000000000ull);
  }
  static constexpr double FromOrderedBits(Unsigned u) {
    uint64_t bits =
        (u & 0x8000000000000000ull) ? (u & 0x7FFFFFFFFFFFFFFFull) : ~u;
    return std::bit_cast<double>(bits);
  }
  static constexpr double Lowest() {
    return -std::numeric_limits<double>::infinity();
  }
};

/// Total-order comparison through the ordered bit pattern. For integer keys
/// this is the native comparison; for float keys it adds the NaN contract
/// above (NaN greatest, -0.0 < +0.0). All comparison-based top-k code uses
/// this (via ElementTraits<E>::Less) so radix- and comparison-based
/// algorithms rank identically.
template <typename T>
constexpr bool OrderedLess(const T& a, const T& b) {
  return KeyTraits<T>::ToOrderedBits(a) < KeyTraits<T>::ToOrderedBits(b);
}

/// True when the key is NaN (never true for integer keys).
template <typename T>
constexpr bool IsNanKey(const T& v) {
  if constexpr (std::is_floating_point_v<T>) {
    return v != v;
  } else {
    (void)v;
    return false;
  }
}

/// Concept for types usable as top-k sort keys.
template <typename T>
concept SortableKey = requires(T v, typename KeyTraits<T>::Unsigned u) {
  { KeyTraits<T>::ToOrderedBits(v) } -> std::same_as<typename KeyTraits<T>::Unsigned>;
  { KeyTraits<T>::FromOrderedBits(u) } -> std::same_as<T>;
  { KeyTraits<T>::Lowest() } -> std::same_as<T>;
};

}  // namespace mptopk

#endif  // MPTOPK_COMMON_KEY_TRANSFORM_H_
