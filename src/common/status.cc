#include "common/status.h"

namespace mptopk {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace mptopk
