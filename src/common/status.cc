#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace mptopk {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error state: %s\n",
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace mptopk
