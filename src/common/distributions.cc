#include "common/distributions.h"

#include <algorithm>
#include <bit>
#include <random>

namespace mptopk {

StatusOr<Distribution> ParseDistribution(const std::string& name) {
  if (name == "uniform") return Distribution::kUniform;
  if (name == "increasing") return Distribution::kIncreasing;
  if (name == "decreasing") return Distribution::kDecreasing;
  if (name == "bucket_killer") return Distribution::kBucketKiller;
  return Status::InvalidArgument("unknown distribution: " + name);
}

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kIncreasing:
      return "increasing";
    case Distribution::kDecreasing:
      return "decreasing";
    case Distribution::kBucketKiller:
      return "bucket_killer";
  }
  return "unknown";
}

namespace {

// The paper's bucket-killer input: every key is 1.0 except a handful that
// each differ from 1.0 in exactly one 8-bit digit of the bit pattern. An MSD
// radix pass then eliminates at most one key per pass, so radix select
// degenerates to full-sort cost.
template <typename T, typename U>
std::vector<T> BucketKiller(size_t n, uint64_t seed) {
  std::vector<T> out(n, T(1));
  const U one_bits = std::bit_cast<U>(T(1));
  const int digits = static_cast<int>(sizeof(U));
  std::mt19937_64 rng(seed);
  // One modified key per 8-bit digit, placed at random positions.
  for (int d = 0; d < digits && static_cast<size_t>(d) < n; ++d) {
    U mod = one_bits ^ (U{0x01} << (8 * d));
    size_t pos = rng() % n;
    out[pos] = std::bit_cast<T>(mod);
  }
  return out;
}

}  // namespace

std::vector<float> GenerateFloats(size_t n, Distribution d, uint64_t seed) {
  if (d == Distribution::kBucketKiller) {
    return BucketKiller<float, uint32_t>(n, seed);
  }
  std::vector<float> out(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (auto& v : out) v = dist(rng);
  if (d == Distribution::kIncreasing) std::sort(out.begin(), out.end());
  if (d == Distribution::kDecreasing) {
    std::sort(out.begin(), out.end(), std::greater<float>());
  }
  return out;
}

std::vector<double> GenerateDoubles(size_t n, Distribution d, uint64_t seed) {
  if (d == Distribution::kBucketKiller) {
    return BucketKiller<double, uint64_t>(n, seed);
  }
  std::vector<double> out(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (auto& v : out) v = dist(rng);
  if (d == Distribution::kIncreasing) std::sort(out.begin(), out.end());
  if (d == Distribution::kDecreasing) {
    std::sort(out.begin(), out.end(), std::greater<double>());
  }
  return out;
}

std::vector<uint32_t> GenerateU32(size_t n, Distribution d, uint64_t seed) {
  std::vector<uint32_t> out(n);
  std::mt19937_64 rng(seed);
  if (d == Distribution::kBucketKiller) {
    std::fill(out.begin(), out.end(), 0xFFFF0000u);
    for (int dg = 0; dg < 4 && static_cast<size_t>(dg) < n; ++dg) {
      out[rng() % n] = 0xFFFF0000u ^ (0x01u << (8 * dg));
    }
    return out;
  }
  for (auto& v : out) v = static_cast<uint32_t>(rng());
  if (d == Distribution::kIncreasing) std::sort(out.begin(), out.end());
  if (d == Distribution::kDecreasing) {
    std::sort(out.begin(), out.end(), std::greater<uint32_t>());
  }
  return out;
}

std::vector<int32_t> GenerateI32(size_t n, Distribution d, uint64_t seed) {
  std::vector<uint32_t> u = GenerateU32(n, d, seed);
  std::vector<int32_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<int32_t>(u[i] ^ 0x80000000u);
  }
  if (d == Distribution::kIncreasing) std::sort(out.begin(), out.end());
  if (d == Distribution::kDecreasing) {
    std::sort(out.begin(), out.end(), std::greater<int32_t>());
  }
  return out;
}

}  // namespace mptopk
