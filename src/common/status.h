// Lightweight Status / StatusOr error-handling primitives.
//
// Fallible library APIs return Status (or StatusOr<T>) instead of throwing;
// this mirrors the error-handling style of Arrow / RocksDB. The set of codes
// is deliberately small: the library mostly fails on resource exhaustion
// (e.g. the per-thread top-k heap exceeding device shared memory, paper
// Section 4.1), invalid arguments (non-power-of-two k, k > n, ...) or — with
// fault injection enabled (simt/fault_injection.h) — transient device faults
// (kUnavailable, the only retryable code; see docs/robustness.md).
#ifndef MPTOPK_COMMON_STATUS_H_
#define MPTOPK_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mptopk {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kResourceExhausted,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A transient fault (device transfer hiccup, aborted launch): the exact
  /// same operation may succeed if simply retried. The only retryable code.
  kUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// True when an operation failing with this code may succeed on retry
/// (without changing algorithm, configuration or inputs).
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// Result of a fallible operation: a code plus a context message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for failures that may clear on retry (see IsRetryable(code)).
  bool IsRetryable() const { return mptopk::IsRetryable(code_); }

  /// Returns a copy with `context` prepended to the message, preserving the
  /// code — used to annotate a propagated error with the operation that hit
  /// it ("BitonicTopK attempt 2: <original message>"). No-op on OK.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    if (message_.empty()) return Status(code_, context);
    return Status(code_, context + ": " + message_);
  }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal {
/// Aborts with the status printed to stderr. Out of line so the header does
/// not pull in <cstdio>; never returns.
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

/// Either a value of type T or an error Status. `value()` aborts (with the
/// status message) when called in the error state — in every build type, so
/// release builds fail loudly instead of reading an empty optional. Check
/// `ok()` (or `status()`) first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      internal::DieOnBadStatusAccess(
          Status::Internal("StatusOr constructed from OK status without value"));
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    CheckOk();
    return *value_;
  }
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) internal::DieOnBadStatusAccess(status_);
  }

  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression to the caller.
#define MPTOPK_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::mptopk::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define MPTOPK_ASSIGN_OR_RETURN(lhs, expr)    \
  auto MPTOPK_CONCAT_(_so_, __LINE__) = (expr);             \
  if (!MPTOPK_CONCAT_(_so_, __LINE__).ok())                 \
    return MPTOPK_CONCAT_(_so_, __LINE__).status();         \
  lhs = std::move(MPTOPK_CONCAT_(_so_, __LINE__)).value()

#define MPTOPK_CONCAT_IMPL_(a, b) a##b
#define MPTOPK_CONCAT_(a, b) MPTOPK_CONCAT_IMPL_(a, b)

}  // namespace mptopk

#endif  // MPTOPK_COMMON_STATUS_H_
