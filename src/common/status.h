// Lightweight Status / StatusOr error-handling primitives.
//
// Fallible library APIs return Status (or StatusOr<T>) instead of throwing;
// this mirrors the error-handling style of Arrow / RocksDB. The set of codes
// is deliberately small: the library mostly fails on resource exhaustion
// (e.g. the per-thread top-k heap exceeding device shared memory, paper
// Section 4.1) or invalid arguments (non-power-of-two k, k > n, ...).
#ifndef MPTOPK_COMMON_STATUS_H_
#define MPTOPK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mptopk {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kResourceExhausted,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a context message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. `value()` asserts on error;
/// check `ok()` (or `status()`) first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression to the caller.
#define MPTOPK_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::mptopk::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define MPTOPK_ASSIGN_OR_RETURN(lhs, expr)    \
  auto MPTOPK_CONCAT_(_so_, __LINE__) = (expr);             \
  if (!MPTOPK_CONCAT_(_so_, __LINE__).ok())                 \
    return MPTOPK_CONCAT_(_so_, __LINE__).status();         \
  lhs = std::move(MPTOPK_CONCAT_(_so_, __LINE__)).value()

#define MPTOPK_CONCAT_IMPL_(a, b) a##b
#define MPTOPK_CONCAT_(a, b) MPTOPK_CONCAT_IMPL_(a, b)

}  // namespace mptopk

#endif  // MPTOPK_COMMON_STATUS_H_
