// Minimal command-line flag parser for the benchmark and example binaries.
// Supports --name=value and --name value forms plus --help text.
#ifndef MPTOPK_COMMON_FLAGS_H_
#define MPTOPK_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace mptopk {

class Flags {
 public:
  /// Registers a flag with a default value and help text. Call before Parse.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv; returns InvalidArgument on unknown flags or missing values.
  /// Positional arguments are collected into positional().
  Status Parse(int argc, char** argv);

  /// True if --help was passed; PrintHelp() then shows usage.
  bool help_requested() const { return help_requested_; }
  void PrintHelp(const std::string& program) const;

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct FlagDef {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, FlagDef> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace mptopk

#endif  // MPTOPK_COMMON_FLAGS_H_
