// Tuple element types for top-k over more than a bare key: key+value (KV),
// two keys+value (KKV) and three keys+value (KKKV), as evaluated in the
// paper's Section 6.6 / Figure 14. ElementTraits adapts bare keys and tuple
// structs to one interface so the algorithm kernels are written once.
//
// Multi-key tuples rank lexicographically (key, key2, key3); radix-based
// algorithms select on the primary key's bit pattern only, which is exactly
// what the paper measures (extra keys ride along as payload for data-movement
// purposes).
#ifndef MPTOPK_COMMON_TUPLE_TYPES_H_
#define MPTOPK_COMMON_TUPLE_TYPES_H_

#include <cstdint>
#include <tuple>

#include "common/key_transform.h"

namespace mptopk {

/// Key + 4-byte payload (e.g. tuple id).
struct KV {
  float key;
  uint32_t value;
  friend bool operator==(const KV&, const KV&) = default;
};

/// Two lexicographic keys + payload.
struct KKV {
  float key;
  float key2;
  uint32_t value;
  friend bool operator==(const KKV&, const KKV&) = default;
};

/// Three lexicographic keys + payload.
struct KKKV {
  float key;
  float key2;
  float key3;
  uint32_t value;
  friend bool operator==(const KKKV&, const KKKV&) = default;
};

/// Adapts an element type to the algorithm kernels: primary sort key
/// extraction, total ordering, and a "lowest" sentinel that never enters a
/// top-k result.
template <typename E>
struct ElementTraits {
  using Key = E;
  static constexpr Key PrimaryKey(const E& e) { return e; }
  // Ordered-bits comparison: identical to `<` for integer keys, and the
  // library's canonical NaN-greatest total order for float keys.
  static constexpr bool Less(const E& a, const E& b) {
    return OrderedLess(a, b);
  }
  static constexpr E LowestSentinel() { return KeyTraits<E>::Lowest(); }
  /// Order-reversing involution (top-k of negated = bottom-k of original):
  /// -x for floats, ~x for two's-complement and unsigned ints.
  static constexpr E Negated(const E& e) {
    if constexpr (std::is_floating_point_v<E>) {
      return -e;
    } else {
      return static_cast<E>(~e);
    }
  }
};

template <>
struct ElementTraits<KV> {
  using Key = float;
  static constexpr Key PrimaryKey(const KV& e) { return e.key; }
  static constexpr bool Less(const KV& a, const KV& b) {
    return OrderedLess(a.key, b.key);
  }
  static constexpr KV Negated(KV e) {
    e.key = -e.key;
    return e;
  }
  static constexpr KV LowestSentinel() {
    return KV{KeyTraits<float>::Lowest(), 0};
  }
};

template <>
struct ElementTraits<KKV> {
  using Key = float;
  static constexpr Key PrimaryKey(const KKV& e) { return e.key; }
  static constexpr bool Less(const KKV& a, const KKV& b) {
    return std::make_tuple(KeyTraits<float>::ToOrderedBits(a.key),
                           KeyTraits<float>::ToOrderedBits(a.key2)) <
           std::make_tuple(KeyTraits<float>::ToOrderedBits(b.key),
                           KeyTraits<float>::ToOrderedBits(b.key2));
  }
  static constexpr KKV Negated(KKV e) {
    e.key = -e.key; e.key2 = -e.key2;
    return e;
  }
  static constexpr KKV LowestSentinel() {
    return KKV{KeyTraits<float>::Lowest(), KeyTraits<float>::Lowest(), 0};
  }
};

template <>
struct ElementTraits<KKKV> {
  using Key = float;
  static constexpr Key PrimaryKey(const KKKV& e) { return e.key; }
  static constexpr bool Less(const KKKV& a, const KKKV& b) {
    return std::make_tuple(KeyTraits<float>::ToOrderedBits(a.key),
                           KeyTraits<float>::ToOrderedBits(a.key2),
                           KeyTraits<float>::ToOrderedBits(a.key3)) <
           std::make_tuple(KeyTraits<float>::ToOrderedBits(b.key),
                           KeyTraits<float>::ToOrderedBits(b.key2),
                           KeyTraits<float>::ToOrderedBits(b.key3));
  }
  static constexpr KKKV Negated(KKKV e) {
    e.key = -e.key; e.key2 = -e.key2; e.key3 = -e.key3;
    return e;
  }
  static constexpr KKKV LowestSentinel() {
    return KKKV{KeyTraits<float>::Lowest(), KeyTraits<float>::Lowest(),
                KeyTraits<float>::Lowest(), 0};
  }
};

/// Generic int64-keyed element used by the query engine ((rank_value, row_id)
/// pairs with 64-bit keys).
struct KV64 {
  int64_t key;
  uint32_t value;
  friend bool operator==(const KV64&, const KV64&) = default;
};

template <>
struct ElementTraits<KV64> {
  using Key = int64_t;
  static constexpr Key PrimaryKey(const KV64& e) { return e.key; }
  static constexpr bool Less(const KV64& a, const KV64& b) {
    return a.key < b.key;
  }
  static constexpr KV64 Negated(KV64 e) {
    e.key = ~e.key;
    return e;
  }
  static constexpr KV64 LowestSentinel() {
    return KV64{KeyTraits<int64_t>::Lowest(), 0};
  }
};

}  // namespace mptopk

#endif  // MPTOPK_COMMON_TUPLE_TYPES_H_
