// Aligned-column table printer used by the benchmark harness to emit the
// paper-style result tables (one row per parameter point, one column per
// algorithm / series).
#ifndef MPTOPK_COMMON_TABLE_PRINTER_H_
#define MPTOPK_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mptopk {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, using "-" for
  /// NaN (e.g. an algorithm that cannot run at this parameter point).
  static std::string Cell(double value, int precision = 2);

  /// Renders the table (with a separator under the header) to stdout.
  void Print() const;

  /// Renders the table as CSV (for plotting scripts).
  void PrintCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mptopk

#endif  // MPTOPK_COMMON_TABLE_PRINTER_H_
