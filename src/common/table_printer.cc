#include "common/table_printer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mptopk {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%*s", c == 0 ? "" : "  ", static_cast<int>(widths[c]),
                  row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv() const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mptopk
