// Bit-manipulation helpers used across the library (power-of-two math for
// bitonic networks, digit extraction for radix algorithms).
#ifndef MPTOPK_COMMON_BITS_H_
#define MPTOPK_COMMON_BITS_H_

#include <bit>
#include <cstdint>
#include <cstddef>

namespace mptopk {

/// True iff x is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x > 0.
constexpr int Log2Floor(uint64_t x) { return 63 - std::countl_zero(x); }

/// ceil(log2(x)) for x > 0.
constexpr int Log2Ceil(uint64_t x) {
  return x <= 1 ? 0 : Log2Floor(x - 1) + 1;
}

/// Smallest power of two >= x (x > 0).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return x <= 1 ? 1 : uint64_t{1} << Log2Ceil(x);
}

/// Rounds x up to the next multiple of `multiple` (multiple > 0).
constexpr uint64_t RoundUp(uint64_t x, uint64_t multiple) {
  return (x + multiple - 1) / multiple * multiple;
}

/// Integer division rounding up.
constexpr uint64_t CeilDiv(uint64_t x, uint64_t y) { return (x + y - 1) / y; }

/// Extracts the `digit_bits`-wide digit at position `digit` (0 = least
/// significant) from key. Used by LSD radix sort.
template <typename U>
constexpr uint32_t ExtractDigitLsd(U key, int digit, int digit_bits) {
  return static_cast<uint32_t>((key >> (digit * digit_bits)) &
                               ((U{1} << digit_bits) - 1));
}

/// Extracts the `digit_bits`-wide digit at position `digit` counted from the
/// most significant end (0 = most significant). Used by MSD radix select.
template <typename U>
constexpr uint32_t ExtractDigitMsd(U key, int digit, int digit_bits) {
  const int total_bits = static_cast<int>(sizeof(U) * 8);
  const int shift = total_bits - (digit + 1) * digit_bits;
  return static_cast<uint32_t>((key >> shift) & ((U{1} << digit_bits) - 1));
}

}  // namespace mptopk

#endif  // MPTOPK_COMMON_BITS_H_
