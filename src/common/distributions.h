// Synthetic data generators matching the paper's evaluation workloads
// (Section 6): uniform floats U(0,1), uniform u32, uniform doubles, sorted
// increasing / decreasing variants, and the adversarial "bucket killer"
// distribution of Section 6.4.
#ifndef MPTOPK_COMMON_DISTRIBUTIONS_H_
#define MPTOPK_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mptopk {

enum class Distribution {
  kUniform,      // U(0,1) floats / U(0, 2^w-1) ints
  kIncreasing,   // uniform, sorted ascending (per-thread-heap worst case)
  kDecreasing,   // uniform, sorted descending
  kBucketKiller, // all 1.0f except 4 values each differing in one 8-bit digit
                 // (radix-select worst case, Section 6.4)
};

/// Parses a distribution name ("uniform", "increasing", "decreasing",
/// "bucket_killer"); returns InvalidArgument for anything else.
StatusOr<Distribution> ParseDistribution(const std::string& name);

/// Returns the canonical name of a distribution.
const char* DistributionName(Distribution d);

/// Generates `n` float keys from the given distribution. `seed` makes runs
/// reproducible.
std::vector<float> GenerateFloats(size_t n, Distribution d, uint64_t seed = 42);

/// Generates `n` double keys (bucket-killer uses 8-bit digits of the 64-bit
/// pattern).
std::vector<double> GenerateDoubles(size_t n, Distribution d,
                                    uint64_t seed = 42);

/// Generates `n` uint32 keys drawn from U(0, 2^32 - 1).
std::vector<uint32_t> GenerateU32(size_t n, Distribution d, uint64_t seed = 42);

/// Generates `n` int32 keys (full range, uniform-based distributions).
std::vector<int32_t> GenerateI32(size_t n, Distribution d, uint64_t seed = 42);

}  // namespace mptopk

#endif  // MPTOPK_COMMON_DISTRIBUTIONS_H_
