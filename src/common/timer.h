// Wall-clock timer for the CPU-side benchmarks (the GPU side reports
// simulated time from the SIMT device model instead).
#ifndef MPTOPK_COMMON_TIMER_H_
#define MPTOPK_COMMON_TIMER_H_

#include <chrono>

namespace mptopk {

class Timer {
 public:
  Timer() { Restart(); }
  void Restart() { start_ = Clock::now(); }
  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mptopk

#endif  // MPTOPK_COMMON_TIMER_H_
