// The unified top-k operator registry: every selection backend — the six
// GPU-simulated algorithms, the chunked streaming executor and the three
// CPU baselines — is one TopKOperator with an OperatorCaps descriptor, and
// consumers (planner, resilient executor, query engine, benches, tests)
// enumerate or resolve operators here instead of switching over the
// deprecated gpu::Algorithm enum (gputopk/topk.h keeps thin shims).
//
// Adding an operator is a one-file change: subclass TopKOperator, override
// the Run hooks for the element types it supports, and register a static
// OperatorRegistrar. The planner ranks it by its caps.cost_ms hook, the
// resilient executor slots it into the fallback chain by backend, and the
// property-differential sweep, degenerate-input tests and paper-figure
// benches pick it up automatically (see docs/operators.md).
#ifndef MPTOPK_TOPK_REGISTRY_H_
#define MPTOPK_TOPK_REGISTRY_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "common/tuple_types.h"
#include "cost/cost_model.h"
#include "gputopk/topk_result.h"
#include "simt/exec_ctx.h"

namespace mptopk::topk {

// Every element type any operator can run over. X(type, enumerator, name).
// The per-type virtual hooks of TopKOperator are generated from this list,
// so a type added here is immediately addressable by every operator.
#define MPTOPK_TOPK_ELEMENT_TYPES(X) \
  X(float, kF32, "f32")              \
  X(double, kF64, "f64")             \
  X(uint32_t, kU32, "u32")           \
  X(int32_t, kI32, "i32")            \
  X(uint64_t, kU64, "u64")           \
  X(int64_t, kI64, "i64")            \
  X(::mptopk::KV, kKV, "kv")         \
  X(::mptopk::KV64, kKV64, "kv64")   \
  X(::mptopk::KKV, kKKV, "kkv")      \
  X(::mptopk::KKKV, kKKKV, "kkkv")

enum class ElemType : int {
#define MPTOPK_X(T, EN, NAME) EN,
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
};

inline constexpr int kNumElemTypes = 0
#define MPTOPK_X(T, EN, NAME) +1
    MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
    ;

constexpr uint32_t ElemBit(ElemType t) {
  return uint32_t{1} << static_cast<int>(t);
}

inline const char* ElemTypeName(ElemType t) {
  switch (t) {
#define MPTOPK_X(T, EN, NAME) \
  case ElemType::EN:          \
    return NAME;
    MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
  }
  return "?";
}

/// Maps a C++ element type to its ElemType tag at compile time.
template <typename E>
struct ElemTypeOf;
#define MPTOPK_X(T, EN, NAME)                           \
  template <>                                           \
  struct ElemTypeOf<T> {                                \
    static constexpr ElemType value = ElemType::EN;     \
    static constexpr uint32_t bit = ElemBit(ElemType::EN); \
  };
MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X

inline constexpr uint32_t kAllElemTypes = (uint32_t{1} << kNumElemTypes) - 1;

enum class Backend { kGpuSim, kCpu };

inline const char* BackendName(Backend b) {
  return b == Backend::kGpuSim ? "gpu-sim" : "cpu";
}

/// Static capabilities of one operator — what the planner filters and ranks
/// on, what the resilient executor builds its fallback chain from, and what
/// the caps-enforcement façade validates every call against.
struct OperatorCaps {
  Backend backend = Backend::kGpuSim;
  /// Bitmask of ElemBit(ElemType) values this operator is compiled for.
  uint32_t elem_types = kAllElemTypes;
  /// Requires power-of-two k at the call boundary (e.g. the CPU bitonic
  /// network). Operators that internally round k up instead set rounds_k_up.
  bool pow2_k_only = false;
  /// Largest supported k (0 = no static cap; dynamic limits such as
  /// per-thread shared-memory exhaustion surface as kResourceExhausted).
  size_t max_k = 0;
  /// Smallest supported n (1 for every built-in).
  size_t min_n = 1;
  /// Rounds a non-power-of-two k up internally and trims the result.
  bool rounds_k_up = false;
  /// Consumes host-resident input in streamed chunks (no device-resident
  /// entry point); the resilient executor's degrade stage.
  bool streams_host_input = false;
  /// Transient faults (kUnavailable) are worth retrying with backoff.
  bool retry_transient = true;
  /// Beyond the paper's core algorithm set (Section 8 future work); the
  /// planner only considers extensions when asked to.
  bool extension = false;
  /// Can serve bottom-k via key negation.
  bool supports_bottom_k = true;
  /// Position in the resilient executor's CPU fallback chain (lower first;
  /// meaningful for Backend::kCpu operators).
  int fallback_rank = 0;
  /// Section 7 cost model: predicted milliseconds for the workload, or a
  /// negative value when infeasible. nullptr = not planner-rankable.
  double (*cost_ms)(const simt::DeviceSpec&, const cost::Workload&) = nullptr;
};

/// One top-k backend. The public entry points are the caps-checked template
/// façades; implementations override the per-element-type Run hooks (C++
/// virtuals cannot be templates, so the overload set is macro-generated
/// from MPTOPK_TOPK_ELEMENT_TYPES).
class TopKOperator {
 public:
  TopKOperator(std::string name, OperatorCaps caps)
      : name_(std::move(name)), display_name_(name_), caps_(caps) {}
  TopKOperator(std::string name, std::string display_name, OperatorCaps caps)
      : name_(std::move(name)),
        display_name_(std::move(display_name)),
        caps_(caps) {}
  virtual ~TopKOperator() = default;

  TopKOperator(const TopKOperator&) = delete;
  TopKOperator& operator=(const TopKOperator&) = delete;

  /// Canonical registry name, e.g. "RadixSelect" or "cpu:HandPq".
  const std::string& name() const { return name_; }
  /// Short label for bench table columns (defaults to name()).
  const std::string& display_name() const { return display_name_; }
  const OperatorCaps& caps() const { return caps_; }

  template <typename E>
  bool SupportsElem() const {
    return (caps_.elem_types & ElemTypeOf<E>::bit) != 0;
  }

  /// Validates an (element type, n, k) request against the caps. Every
  /// violation is kInvalidArgument — never a wrong answer.
  Status CheckCaps(ElemType t, size_t n, size_t k) const;

  /// Predicted cost in ms for the workload; negative when infeasible or the
  /// operator has no cost model.
  double CostMs(const simt::DeviceSpec& spec, const cost::Workload& w) const {
    return caps_.cost_ms != nullptr ? caps_.cost_ms(spec, w) : -1.0;
  }

  /// Top-k over device-resident data (caps-checked).
  template <typename E>
  StatusOr<gpu::TopKResult<E>> TopKDevice(const simt::ExecCtx& dev,
                                          simt::DeviceBuffer<E>& data,
                                          size_t n, size_t k) const {
    MPTOPK_RETURN_NOT_OK(CheckCaps(ElemTypeOf<E>::value, n, k));
    return RunDevice(dev, data, n, k);
  }

  /// Top-k over host-resident data (caps-checked). GPU operators stage the
  /// input; CPU operators run in place; streaming operators chunk it.
  template <typename E>
  StatusOr<gpu::TopKResult<E>> TopKHost(const simt::ExecCtx& dev,
                                        const E* data, size_t n,
                                        size_t k) const {
    MPTOPK_RETURN_NOT_OK(CheckCaps(ElemTypeOf<E>::value, n, k));
    return RunHost(dev, data, n, k);
  }

  /// Bottom-k (the k smallest, ascending order semantics of the caller):
  /// top-k over order-negated keys, one extra counted negate pass. Kernel
  /// sequence is identical to the legacy gpu::BottomKDevice.
  template <typename E>
  StatusOr<gpu::TopKResult<E>> BottomKDevice(const simt::ExecCtx& dev,
                                             simt::DeviceBuffer<E>& data,
                                             size_t n, size_t k) const;

  template <typename E>
  StatusOr<gpu::TopKResult<E>> BottomKHost(const simt::ExecCtx& dev,
                                           const E* data, size_t n,
                                           size_t k) const;

 protected:
  /// Stages host data to the device and dispatches the device hook — the
  /// default host path for GPU operators (alloc + H2D copy, both counted).
  template <typename E>
  StatusOr<gpu::TopKResult<E>> StageAndRunDevice(const simt::ExecCtx& dev,
                                                 const E* data, size_t n,
                                                 size_t k) const {
    MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
    MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
    return RunDevice(dev, buf, n, k);
  }

  // Per-element-type hooks. Defaults: RunDevice reports kUnimplemented
  // (CPU / streaming operators have no device-resident entry); RunHost
  // stages and runs the device hook (GPU operators) or reports
  // kUnimplemented (Backend::kCpu without an override).
#define MPTOPK_X(T, EN, NAME)                                         \
  virtual StatusOr<gpu::TopKResult<T>> RunDevice(                     \
      const simt::ExecCtx& dev, simt::DeviceBuffer<T>& data, size_t n, \
      size_t k) const;                                                \
  virtual StatusOr<gpu::TopKResult<T>> RunHost(                       \
      const simt::ExecCtx& dev, const T* data, size_t n, size_t k) const;
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X

 private:
  std::string name_;
  std::string display_name_;
  OperatorCaps caps_;
};

/// The process-wide operator registry. Built-in operators are registered
/// from registry.cc's static initializers; additional operators (e.g.
/// test-only dummies) register via a static OperatorRegistrar in their own
/// translation unit — no registry edits required.
class Registry {
 public:
  static Registry& Instance();

  /// Registers an operator with a display `order` (All() sorts by it; the
  /// built-ins use 10..100 in the paper's presentation order) and optional
  /// lookup aliases (the legacy flag spellings, e.g. "radix_select").
  /// Duplicate canonical names abort: they are always a build bug.
  const TopKOperator* Register(std::unique_ptr<TopKOperator> op, int order,
                               std::vector<std::string> aliases = {});

  /// Case-insensitive lookup by canonical name or alias. Unknown names
  /// report the full registered-operator list in the error.
  StatusOr<const TopKOperator*> Find(const std::string& name) const;
  const TopKOperator* FindOrNull(const std::string& name) const;

  /// Every registered operator, ordered by (order, name).
  std::vector<const TopKOperator*> All() const;

  /// "Sort, PerThreadTopK, ..." — for error messages and --help text.
  std::string KnownOperatorList() const;

 private:
  Registry() = default;
  struct Entry {
    std::unique_ptr<TopKOperator> op;
    int order = 0;
    std::vector<std::string> aliases;
  };
  std::vector<Entry> entries_;
};

/// Registers an operator at static-initialization time:
///   static topk::OperatorRegistrar reg(std::make_unique<MyOp>(), 55, {"my"});
struct OperatorRegistrar {
  OperatorRegistrar(std::unique_ptr<TopKOperator> op, int order,
                    std::initializer_list<const char*> aliases = {}) {
    std::vector<std::string> a(aliases.begin(), aliases.end());
    registered = Registry::Instance().Register(std::move(op), order,
                                               std::move(a));
  }
  const TopKOperator* registered = nullptr;
};

/// Shorthand for Registry::Instance().Find(name).
inline StatusOr<const TopKOperator*> FindOperator(const std::string& name) {
  return Registry::Instance().Find(name);
}

/// The GPU-simulated operators the paper-figure benches and differential
/// sweeps enumerate: device-resident GPU backends, extensions excluded
/// unless asked for. A newly registered GPU operator joins every sweep
/// automatically.
std::vector<const TopKOperator*> GpuSweepOperators(
    bool include_extensions = false);

/// Backend::kCpu operators in fallback order (caps().fallback_rank): the
/// resilient executor's CPU chain.
std::vector<const TopKOperator*> CpuFallbackChain();

/// The first registered streaming operator (caps().streams_host_input) —
/// the resilient executor's chunked-degrade stage — or nullptr.
const TopKOperator* StreamingFallback();

// ---- template definitions ---------------------------------------------------

namespace detail {

/// The legacy bottom-k negate pass, bit-identical to gpu::BottomKDevice's:
/// same kernel name, geometry and access pattern.
template <typename E>
Status NegateKeys(const simt::ExecCtx& dev, simt::DeviceBuffer<E>& in_buf,
                  simt::DeviceBuffer<E>& out_buf, size_t n) {
  simt::GlobalSpan<E> in(in_buf), out(out_buf);
  const int grid =
      static_cast<int>(std::min<uint64_t>(1024, CeilDiv(n, 256)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = 256, .name = "negate_keys"},
      [&](simt::Block& blk) {
        blk.ForEachThread([&](simt::Thread& t) {
          size_t stride = static_cast<size_t>(grid) * 256;
          for (size_t i = static_cast<size_t>(blk.block_idx()) * 256 + t.tid;
               i < n; i += stride) {
            out.Write(t, i, ElementTraits<E>::Negated(in.Read(t, i)));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

}  // namespace detail

template <typename E>
StatusOr<gpu::TopKResult<E>> TopKOperator::BottomKDevice(
    const simt::ExecCtx& dev, simt::DeviceBuffer<E>& data, size_t n,
    size_t k) const {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  MPTOPK_RETURN_NOT_OK(CheckCaps(ElemTypeOf<E>::value, n, k));
  MPTOPK_ASSIGN_OR_RETURN(auto negated, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(detail::NegateKeys(dev, data, negated, n));
  MPTOPK_ASSIGN_OR_RETURN(auto r, RunDevice(dev, negated, n, k));
  for (E& e : r.items) e = ElementTraits<E>::Negated(e);
  return r;
}

template <typename E>
StatusOr<gpu::TopKResult<E>> TopKOperator::BottomKHost(
    const simt::ExecCtx& dev, const E* data, size_t n, size_t k) const {
  if (!caps_.supports_bottom_k) {
    return Status::Unimplemented(name_ + " does not support bottom-k");
  }
  MPTOPK_RETURN_NOT_OK(CheckCaps(ElemTypeOf<E>::value, n, k));
  if (caps_.backend == Backend::kGpuSim) {
    // Stage first, then run the device bottom-k — the exact legacy
    // gpu::TopK(..., SortOrder::kSmallest) allocation/copy sequence.
    MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
    MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
    return BottomKDevice(dev, buf, n, k);
  }
  std::vector<E> negated(data, data + n);
  for (E& e : negated) e = ElementTraits<E>::Negated(e);
  MPTOPK_ASSIGN_OR_RETURN(auto r, RunHost(dev, negated.data(), n, k));
  for (E& e : r.items) e = ElementTraits<E>::Negated(e);
  return r;
}

}  // namespace mptopk::topk

#endif  // MPTOPK_TOPK_REGISTRY_H_
