// Registry implementation plus the built-in operator set: the six GPU
// algorithms, the chunked streaming executor and the three CPU backends.
// Built-ins live in this translation unit so that any binary referencing
// the Registry links their registrars (static-library dead-stripping keeps
// whole objects, and every Registry user pulls this one in).
#include "topk/registry.h"

#include <cctype>
#include <utility>

#include "cputopk/cpu_topk.h"
#include "gputopk/bitonic_topk.h"
#include "gputopk/bucket_select.h"
#include "gputopk/chunked.h"
#include "gputopk/hybrid_topk.h"
#include "gputopk/perthread_topk.h"
#include "gputopk/radix_select.h"
#include "gputopk/radix_sort.h"

namespace mptopk::topk {

// ---- TopKOperator base ------------------------------------------------------

Status TopKOperator::CheckCaps(ElemType t, size_t n, size_t k) const {
  if ((caps_.elem_types & ElemBit(t)) == 0) {
    return Status::InvalidArgument(name_ + " does not support element type " +
                                   ElemTypeName(t));
  }
  if (k == 0 || k > n) {
    return Status::InvalidArgument(
        name_ + ": require 1 <= k <= n (k=" + std::to_string(k) +
        ", n=" + std::to_string(n) + ")");
  }
  if (n < caps_.min_n) {
    return Status::InvalidArgument(name_ + ": require n >= " +
                                   std::to_string(caps_.min_n));
  }
  if (caps_.pow2_k_only && !IsPowerOfTwo(k)) {
    return Status::InvalidArgument(name_ + " requires power-of-two k (k=" +
                                   std::to_string(k) + ")");
  }
  if (caps_.max_k != 0 && k > caps_.max_k) {
    return Status::InvalidArgument(
        name_ + ": k=" + std::to_string(k) + " exceeds max supported k=" +
        std::to_string(caps_.max_k));
  }
  return Status::OK();
}

// Default hooks: GPU operators get staging host paths for free; everything
// else is an explicit kUnimplemented (unreachable through the caps-checked
// façades when elem_types is declared honestly).
#define MPTOPK_X(T, EN, NAME)                                                \
  StatusOr<gpu::TopKResult<T>> TopKOperator::RunDevice(                      \
      const simt::ExecCtx&, simt::DeviceBuffer<T>&, size_t, size_t) const {  \
    return Status::Unimplemented(                                            \
        name_ + " has no device-resident entry point for " NAME);            \
  }                                                                          \
  StatusOr<gpu::TopKResult<T>> TopKOperator::RunHost(                        \
      const simt::ExecCtx& dev, const T* data, size_t n, size_t k) const {   \
    if (caps_.backend != Backend::kGpuSim || caps_.streams_host_input) {     \
      return Status::Unimplemented(name_ +                                   \
                                   " has no host entry point for " NAME);    \
    }                                                                        \
    return StageAndRunDevice<T>(dev, data, n, k);                            \
  }
MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X

// ---- Registry ---------------------------------------------------------------

Registry& Registry::Instance() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

const TopKOperator* Registry::Register(std::unique_ptr<TopKOperator> op,
                                       int order,
                                       std::vector<std::string> aliases) {
  if (FindOrNull(op->name()) != nullptr) {
    std::fprintf(stderr, "duplicate top-k operator registration: %s\n",
                 op->name().c_str());
    std::abort();
  }
  entries_.push_back(Entry{std::move(op), order, std::move(aliases)});
  return entries_.back().op.get();
}

const TopKOperator* Registry::FindOrNull(const std::string& name) const {
  const std::string want = Lower(name);
  for (const Entry& e : entries_) {
    if (Lower(e.op->name()) == want) return e.op.get();
    for (const std::string& a : e.aliases) {
      if (Lower(a) == want) return e.op.get();
    }
  }
  return nullptr;
}

StatusOr<const TopKOperator*> Registry::Find(const std::string& name) const {
  if (const TopKOperator* op = FindOrNull(name); op != nullptr) return op;
  return Status::InvalidArgument("unknown top-k operator '" + name +
                                 "'; registered operators: " +
                                 KnownOperatorList());
}

std::vector<const TopKOperator*> Registry::All() const {
  std::vector<std::pair<int, const TopKOperator*>> v;
  v.reserve(entries_.size());
  for (const Entry& e : entries_) v.emplace_back(e.order, e.op.get());
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->name() < b.second->name();
            });
  std::vector<const TopKOperator*> out;
  out.reserve(v.size());
  for (const auto& [order, op] : v) out.push_back(op);
  return out;
}

std::string Registry::KnownOperatorList() const {
  std::string out;
  for (const TopKOperator* op : All()) {
    if (!out.empty()) out += ", ";
    out += op->name();
  }
  return out;
}

std::vector<const TopKOperator*> GpuSweepOperators(bool include_extensions) {
  std::vector<const TopKOperator*> out;
  for (const TopKOperator* op : Registry::Instance().All()) {
    const OperatorCaps& c = op->caps();
    if (c.backend != Backend::kGpuSim || c.streams_host_input) continue;
    if (c.extension && !include_extensions) continue;
    out.push_back(op);
  }
  return out;
}

std::vector<const TopKOperator*> CpuFallbackChain() {
  std::vector<const TopKOperator*> out;
  for (const TopKOperator* op : Registry::Instance().All()) {
    if (op->caps().backend == Backend::kCpu) out.push_back(op);
  }
  std::sort(out.begin(), out.end(),
            [](const TopKOperator* a, const TopKOperator* b) {
              if (a->caps().fallback_rank != b->caps().fallback_rank) {
                return a->caps().fallback_rank < b->caps().fallback_rank;
              }
              return a->name() < b->name();
            });
  return out;
}

const TopKOperator* StreamingFallback() {
  for (const TopKOperator* op : Registry::Instance().All()) {
    if (op->caps().streams_host_input) return op;
  }
  return nullptr;
}

// ---- Built-in operators -----------------------------------------------------

namespace {

constexpr uint32_t kChunkedElemTypes =
    ElemTypeOf<float>::bit | ElemTypeOf<double>::bit |
    ElemTypeOf<uint32_t>::bit | ElemTypeOf<int32_t>::bit |
    ElemTypeOf<KV>::bit;

constexpr uint32_t kCpuElemTypes =
    ElemTypeOf<float>::bit | ElemTypeOf<double>::bit |
    ElemTypeOf<uint32_t>::bit | ElemTypeOf<int32_t>::bit |
    ElemTypeOf<int64_t>::bit | ElemTypeOf<KV>::bit;

cost::Workload RoundKUp(const cost::Workload& w) {
  cost::Workload w2 = w;
  w2.k = NextPowerOfTwo(w.k);
  return w2;
}

// Cost hooks: the Section 7 models, with each operator's feasibility rule
// (previously inlined in planner/plan_topk.cc) owned by the operator.
double SortCost(const simt::DeviceSpec& s, const cost::Workload& w) {
  return cost::SortCostMs(s, w);
}
double PerThreadCost(const simt::DeviceSpec& s, const cost::Workload& w) {
  return cost::PerThreadCostMs(s, w);  // negative when beyond shared memory
}
double RadixSelectCost(const simt::DeviceSpec& s, const cost::Workload& w) {
  return cost::RadixSelectCostMs(s, w);
}
double BucketSelectCost(const simt::DeviceSpec& s, const cost::Workload& w) {
  return cost::BucketSelectCostMs(s, w);
}
double BitonicCost(const simt::DeviceSpec& s, const cost::Workload& w) {
  // Two k-runs per tile (same rule as the kernels).
  size_t tile_limit = 4096 / 2;
  if (w.elem_size > 8) tile_limit = 2048 / 2;
  if (NextPowerOfTwo(w.k) > tile_limit) return -1.0;
  return cost::BitonicTopKCostMs(s, RoundKUp(w));
}
double HybridCost(const simt::DeviceSpec& s, const cost::Workload& w) {
  if (NextPowerOfTwo(w.k) > 1024) return -1.0;
  return cost::HybridCostMs(s, RoundKUp(w));
}

OperatorCaps GpuCaps(double (*cost)(const simt::DeviceSpec&,
                                    const cost::Workload&)) {
  OperatorCaps c;
  c.backend = Backend::kGpuSim;
  c.elem_types = kAllElemTypes;
  c.cost_ms = cost;
  return c;
}

// The dispatcher semantics the deprecated enum switch used for the
// comparison-network methods: round k up to a power of two, trim the
// result, and fall back to radix select when the round-up would exceed n.
template <typename E, typename RunFn>
StatusOr<gpu::TopKResult<E>> RunRoundedPow2(const simt::ExecCtx& dev,
                                            simt::DeviceBuffer<E>& data,
                                            size_t n, size_t k, RunFn run) {
  const size_t k2 = NextPowerOfTwo(k);
  if (k2 > n) return gpu::RadixSelectTopKDevice(dev, data, n, k);
  MPTOPK_ASSIGN_OR_RETURN(auto r, run(k2));
  r.items.resize(k);
  return r;
}

class SortOperator final : public TopKOperator {
 public:
  SortOperator() : TopKOperator("Sort", GpuCaps(&SortCost)) {}

 protected:
#define MPTOPK_X(T, EN, NAME)                                               \
  StatusOr<gpu::TopKResult<T>> RunDevice(                                   \
      const simt::ExecCtx& dev, simt::DeviceBuffer<T>& data, size_t n,      \
      size_t k) const override {                                            \
    return gpu::SortTopKDevice(dev, data, n, k);                            \
  }
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
};

class PerThreadOperator final : public TopKOperator {
 public:
  PerThreadOperator()
      : TopKOperator("PerThreadTopK", "PerThread", GpuCaps(&PerThreadCost)) {}

 protected:
#define MPTOPK_X(T, EN, NAME)                                               \
  StatusOr<gpu::TopKResult<T>> RunDevice(                                   \
      const simt::ExecCtx& dev, simt::DeviceBuffer<T>& data, size_t n,      \
      size_t k) const override {                                            \
    return gpu::PerThreadTopKDevice(dev, data, n, k);                       \
  }
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
};

class RadixSelectOperator final : public TopKOperator {
 public:
  RadixSelectOperator()
      : TopKOperator("RadixSelect", GpuCaps(&RadixSelectCost)) {}

 protected:
#define MPTOPK_X(T, EN, NAME)                                               \
  StatusOr<gpu::TopKResult<T>> RunDevice(                                   \
      const simt::ExecCtx& dev, simt::DeviceBuffer<T>& data, size_t n,      \
      size_t k) const override {                                            \
    return gpu::RadixSelectTopKDevice(dev, data, n, k);                     \
  }
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
};

class BucketSelectOperator final : public TopKOperator {
 public:
  BucketSelectOperator()
      : TopKOperator("BucketSelect", GpuCaps(&BucketSelectCost)) {}

 protected:
#define MPTOPK_X(T, EN, NAME)                                               \
  StatusOr<gpu::TopKResult<T>> RunDevice(                                   \
      const simt::ExecCtx& dev, simt::DeviceBuffer<T>& data, size_t n,      \
      size_t k) const override {                                            \
    return gpu::BucketSelectTopKDevice(dev, data, n, k);                    \
  }
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
};

class BitonicOperator final : public TopKOperator {
 public:
  BitonicOperator() : TopKOperator("BitonicTopK", Caps()) {}

 private:
  static OperatorCaps Caps() {
    OperatorCaps c = GpuCaps(&BitonicCost);
    c.rounds_k_up = true;
    return c;
  }

 protected:
#define MPTOPK_X(T, EN, NAME)                                               \
  StatusOr<gpu::TopKResult<T>> RunDevice(                                   \
      const simt::ExecCtx& dev, simt::DeviceBuffer<T>& data, size_t n,      \
      size_t k) const override {                                            \
    return RunRoundedPow2(dev, data, n, k, [&](size_t k2) {                 \
      return gpu::BitonicTopKDevice(dev, data, n, k2, gpu::BitonicOptions{}); \
    });                                                                     \
  }
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
};

class HybridOperator final : public TopKOperator {
 public:
  HybridOperator() : TopKOperator("HybridTopK", Caps()) {}

 private:
  static OperatorCaps Caps() {
    OperatorCaps c = GpuCaps(&HybridCost);
    c.rounds_k_up = true;
    c.extension = true;
    return c;
  }

 protected:
#define MPTOPK_X(T, EN, NAME)                                               \
  StatusOr<gpu::TopKResult<T>> RunDevice(                                   \
      const simt::ExecCtx& dev, simt::DeviceBuffer<T>& data, size_t n,      \
      size_t k) const override {                                            \
    return RunRoundedPow2(dev, data, n, k, [&](size_t k2) {                 \
      return gpu::HybridTopKDevice(dev, data, n, k2, gpu::HybridOptions{}); \
    });                                                                     \
  }
  MPTOPK_TOPK_ELEMENT_TYPES(MPTOPK_X)
#undef MPTOPK_X
};

class ChunkedOperator final : public TopKOperator {
 public:
  ChunkedOperator() : TopKOperator("ChunkedTopK", Caps()) {}

 private:
  static OperatorCaps Caps() {
    OperatorCaps c;
    c.backend = Backend::kGpuSim;
    c.elem_types = kChunkedElemTypes;
    c.streams_host_input = true;
    c.rounds_k_up = true;       // the per-chunk reduction is bitonic
    c.supports_bottom_k = false;  // no staged full-input negate pass
    return c;
  }

  // Streaming host entry only — chunked.h's default geometry (auto chunk
  // size, bitonic per-chunk reduction), exactly the resilient executor's
  // legacy degrade call.
#define MPTOPK_X(T, EN, NAME)                                              \
  StatusOr<gpu::TopKResult<T>> RunHost(const simt::ExecCtx& dev,           \
                                       const T* data, size_t n, size_t k)  \
      const override {                                                     \
    MPTOPK_ASSIGN_OR_RETURN(auto c, gpu::ChunkedTopK(dev, data, n, k));    \
    gpu::TopKResult<T> r;                                                  \
    r.items = std::move(c.items);                                          \
    r.kernel_ms = c.kernel_ms;                                             \
    return r;                                                              \
  }
 protected:
  MPTOPK_X(float, kF32, "f32")
  MPTOPK_X(double, kF64, "f64")
  MPTOPK_X(uint32_t, kU32, "u32")
  MPTOPK_X(int32_t, kI32, "i32")
  MPTOPK_X(::mptopk::KV, kKV, "kv")
#undef MPTOPK_X
};

class CpuOperator final : public TopKOperator {
 public:
  CpuOperator(std::string name, cpu::CpuAlgorithm algo, int fallback_rank,
              bool pow2_only, size_t max_k)
      : TopKOperator(std::move(name),
                     Caps(fallback_rank, pow2_only, max_k)),
        algo_(algo) {}

 private:
  static OperatorCaps Caps(int fallback_rank, bool pow2_only, size_t max_k) {
    OperatorCaps c;
    c.backend = Backend::kCpu;
    c.elem_types = kCpuElemTypes;
    c.pow2_k_only = pow2_only;
    c.max_k = max_k;
    c.retry_transient = false;  // host execution has no transient faults
    c.fallback_rank = fallback_rank;
    return c;
  }

  cpu::CpuAlgorithm algo_;

  // Host entry only, for the CPU-instantiated element set; wall-clock goes
  // to TopKResult::host_ms (kernel_ms stays 0 — no simulated device time).
#define MPTOPK_X(T, EN, NAME)                                              \
  StatusOr<gpu::TopKResult<T>> RunHost(const simt::ExecCtx&, const T* data, \
                                       size_t n, size_t k) const override { \
    MPTOPK_ASSIGN_OR_RETURN(auto c, cpu::CpuTopK(data, n, k, algo_));      \
    gpu::TopKResult<T> r;                                                  \
    r.items = std::move(c.items);                                          \
    r.host_ms = c.wall_ms;                                                 \
    return r;                                                              \
  }
 protected:
  MPTOPK_X(float, kF32, "f32")
  MPTOPK_X(double, kF64, "f64")
  MPTOPK_X(uint32_t, kU32, "u32")
  MPTOPK_X(int32_t, kI32, "i32")
  MPTOPK_X(int64_t, kI64, "i64")
  MPTOPK_X(::mptopk::KV, kKV, "kv")
#undef MPTOPK_X
};

// Display order mirrors the paper's presentation (and the legacy bench
// column order): the five core GPU algorithms, the hybrid extension, the
// streaming executor, then the CPU baselines.
OperatorRegistrar r_sort(std::make_unique<SortOperator>(), 10, {"sort"});
OperatorRegistrar r_perthread(std::make_unique<PerThreadOperator>(), 20,
                              {"perthread"});
OperatorRegistrar r_radix(std::make_unique<RadixSelectOperator>(), 30,
                          {"radix_select"});
OperatorRegistrar r_bucket(std::make_unique<BucketSelectOperator>(), 40,
                           {"bucket_select"});
OperatorRegistrar r_bitonic(std::make_unique<BitonicOperator>(), 50,
                            {"bitonic"});
OperatorRegistrar r_hybrid(std::make_unique<HybridOperator>(), 60,
                           {"hybrid"});
OperatorRegistrar r_chunked(std::make_unique<ChunkedOperator>(), 70,
                            {"chunked"});
OperatorRegistrar r_cpu_stl(
    std::make_unique<CpuOperator>("cpu:StlPq", cpu::CpuAlgorithm::kStlPq,
                                  /*fallback_rank=*/1, /*pow2_only=*/false,
                                  /*max_k=*/0),
    80, {"stlpq", "cpu_stlpq"});
OperatorRegistrar r_cpu_hand(
    std::make_unique<CpuOperator>("cpu:HandPq", cpu::CpuAlgorithm::kHandPq,
                                  /*fallback_rank=*/0, /*pow2_only=*/false,
                                  /*max_k=*/0),
    90, {"handpq", "cpu_handpq"});
OperatorRegistrar r_cpu_bitonic(
    std::make_unique<CpuOperator>("cpu:Bitonic", cpu::CpuAlgorithm::kBitonic,
                                  /*fallback_rank=*/2, /*pow2_only=*/true,
                                  /*max_k=*/256),
    100, {"cpu_bitonic"});

}  // namespace

}  // namespace mptopk::topk
