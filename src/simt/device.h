// The simulated device: global memory allocation, kernel launching, metrics
// and simulated-time accounting.
//
// Usage:
//   simt::Device dev(simt::DeviceSpec::TitanXMaxwell());
//   auto buf = dev.Alloc<float>(n).value();
//   dev.CopyToDevice(buf, host_data);              // PCIe-accounted staging
//   auto stats = dev.Launch({grid, block}, [&](simt::Block& blk) { ... });
//   double ms = stats->time.total_ms;              // simulated kernel time
//
// Tracing: by default every block is traced (exact metrics). For large
// inputs, `set_trace_sample_target(t)` traces ~t evenly spaced blocks per
// launch and extrapolates — valid because all kernels in this library have
// block-homogeneous access patterns.
#ifndef MPTOPK_SIMT_DEVICE_H_
#define MPTOPK_SIMT_DEVICE_H_

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "simt/block.h"
#include "simt/device_spec.h"
#include "simt/fault_injection.h"
#include "simt/memory.h"
#include "simt/metrics.h"
#include "simt/timing_model.h"
#include "simt/trace.h"

namespace mptopk::simt {

struct LaunchConfig {
  int grid_dim = 1;
  int block_dim = 256;
  /// Register footprint per thread (a CUDA compiler output; declared by the
  /// kernel author here). Affects occupancy.
  int regs_per_thread = 32;
  /// Kernel name for per-kernel accounting / debugging.
  const char* name = "kernel";
};

struct KernelStats {
  std::string name;
  KernelMetrics metrics;
  KernelTime time;
  KernelResources resources;
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::TitanXMaxwell())
      : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Allocates `n` elements of device global memory. Fails with
  /// ResourceExhausted when the device capacity would be exceeded.
  template <typename T>
  StatusOr<DeviceBuffer<T>> Alloc(size_t n) {
    size_t bytes = n * sizeof(T);
    if (fault_plan_ != nullptr) {
      Status st = fault_plan_->OnAlloc(bytes);
      if (!st.ok()) return st;
    }
    if (allocated_bytes_ + bytes > spec_.global_mem_bytes) {
      return Status::ResourceExhausted(
          "device memory exhausted: requested " + std::to_string(bytes) +
          " bytes, " +
          std::to_string(spec_.global_mem_bytes - allocated_bytes_) +
          " available");
    }
    allocated_bytes_ += bytes;
    uint64_t addr = next_addr_;
    next_addr_ += (bytes + 255) & ~uint64_t{255};  // 256-byte aligned
    return DeviceBuffer<T>(this, addr, n);
  }

  /// Host -> device staging; accumulates simulated PCIe transfer time.
  /// Fails with kUnavailable (retryable) under an installed fault plan; no
  /// data moves on failure.
  template <typename T>
  Status CopyToDevice(DeviceBuffer<T>& dst, const T* src, size_t n) {
    if (n == 0) return Status::OK();
    if (fault_plan_ != nullptr) {
      MPTOPK_RETURN_NOT_OK(
          fault_plan_->OnTransfer(n * sizeof(T), /*readback=*/false));
    }
    std::memcpy(dst.host_data(), src, n * sizeof(T));
    pcie_ms_ += static_cast<double>(n * sizeof(T)) /
                (spec_.pcie_bw_gbps * 1e9) * 1e3;
    return Status::OK();
  }

  /// Device -> host readback; accumulates simulated PCIe transfer time.
  /// Fails with kUnavailable (retryable) under an installed fault plan; the
  /// plan may also silently corrupt one bit of a "successful" readback
  /// (FaultPlanConfig::corrupt_readback_index) to exercise verification.
  template <typename T>
  Status CopyToHost(T* dst, const DeviceBuffer<T>& src, size_t n) {
    if (n == 0) return Status::OK();
    if (fault_plan_ != nullptr) {
      MPTOPK_RETURN_NOT_OK(
          fault_plan_->OnTransfer(n * sizeof(T), /*readback=*/true));
    }
    std::memcpy(dst, src.host_data(), n * sizeof(T));
    if (fault_plan_ != nullptr) {
      fault_plan_->CorruptReadback(dst, n * sizeof(T));
    }
    pcie_ms_ += static_cast<double>(n * sizeof(T)) /
                (spec_.pcie_bw_gbps * 1e9) * 1e3;
    return Status::OK();
  }

  /// Launches `body(Block&)` over the grid, returning traced metrics and the
  /// simulated kernel time. Validates block dimensions and shared-memory
  /// usage (a kernel allocating more than shared_mem_per_block fails with
  /// ResourceExhausted — e.g. per-thread top-k at k=512, paper Section 4.1).
  template <typename F>
  StatusOr<KernelStats> Launch(const LaunchConfig& cfg, F&& body) {
    if (fault_plan_ != nullptr) {
      Status st = fault_plan_->OnLaunch(cfg.name);
      if (!st.ok()) return st;
    }
    if (cfg.grid_dim <= 0 || cfg.block_dim <= 0) {
      return Status::InvalidArgument("launch dims must be positive");
    }
    if (cfg.block_dim > spec_.max_threads_per_block) {
      return Status::InvalidArgument(
          "block_dim " + std::to_string(cfg.block_dim) + " exceeds device max " +
          std::to_string(spec_.max_threads_per_block));
    }

    Block block(spec_, cfg.grid_dim, cfg.block_dim);
    BlockTracer tracer(spec_, cfg.block_dim);

    int stride = 1;
    if (trace_sample_target_ > 0 && cfg.grid_dim > trace_sample_target_) {
      stride = cfg.grid_dim / trace_sample_target_;
    }

    KernelStats stats;
    stats.name = cfg.name;
    size_t shared_used = 0;
    for (int b = 0; b < cfg.grid_dim; ++b) {
      bool traced = (b % stride) == 0;
      if (traced) tracer.Reset(cfg.block_dim);
      block.ResetFor(b, traced ? &tracer : nullptr);
      body(block);
      shared_used = std::max(shared_used, block.shared_bytes_used());
      if (shared_used > spec_.shared_mem_per_block) {
        return Status::ResourceExhausted(
            std::string(cfg.name) + ": block shared memory " +
            std::to_string(shared_used) + " B exceeds device limit " +
            std::to_string(spec_.shared_mem_per_block) + " B");
      }
      if (traced) tracer.Analyze(&stats.metrics);
    }
    stats.metrics.blocks_launched = cfg.grid_dim;
    if (stats.metrics.blocks_traced > 0 &&
        stats.metrics.blocks_traced < static_cast<uint64_t>(cfg.grid_dim)) {
      stats.metrics.Scale(static_cast<double>(cfg.grid_dim) /
                          static_cast<double>(stats.metrics.blocks_traced));
    }

    stats.resources = KernelResources{cfg.grid_dim, cfg.block_dim,
                                      cfg.regs_per_thread, shared_used};
    stats.time = EstimateKernelTime(spec_, stats.resources, stats.metrics);

    total_sim_ms_ += stats.time.total_ms;
    total_metrics_ += stats.metrics;
    kernel_log_.push_back(stats);
    return stats;
  }

  /// Trace every block (exact; default) when 0, else trace ~target blocks
  /// per launch and extrapolate.
  void set_trace_sample_target(int target) { trace_sample_target_ = target; }

  /// Installs (or clears, with nullptr) a deterministic fault plan consulted
  /// by Alloc / CopyToDevice / CopyToHost / Launch. The device shares
  /// ownership so tests can keep inspecting the plan's stats().
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Charges extra simulated latency to this device (e.g. the resilient
  /// executor's retry backoff) so end-to-end simulated time reflects it.
  void AddSimulatedDelayMs(double ms) { total_sim_ms_ += ms; }

  /// Simulated kernel milliseconds accumulated since construction/reset.
  double total_sim_ms() const { return total_sim_ms_; }
  /// Simulated PCIe staging milliseconds.
  double pcie_ms() const { return pcie_ms_; }
  const KernelMetrics& total_metrics() const { return total_metrics_; }
  const std::vector<KernelStats>& kernel_log() const { return kernel_log_; }
  size_t allocated_bytes() const { return allocated_bytes_; }

  /// Resets time/metrics accumulators (not allocations).
  void ResetAccounting() {
    total_sim_ms_ = 0;
    pcie_ms_ = 0;
    total_metrics_ = KernelMetrics{};
    kernel_log_.clear();
  }

  // Internal: DeviceBuffer destruction returns capacity.
  void ReleaseAllocation(size_t bytes) { allocated_bytes_ -= bytes; }

 private:
  DeviceSpec spec_;
  std::shared_ptr<FaultPlan> fault_plan_;
  size_t allocated_bytes_ = 0;
  uint64_t next_addr_ = 4096;  // leave page 0 unmapped
  int trace_sample_target_ = 0;

  double total_sim_ms_ = 0;
  double pcie_ms_ = 0;
  KernelMetrics total_metrics_;
  std::vector<KernelStats> kernel_log_;
};

// --- DeviceBuffer inline implementation -------------------------------------

template <typename T>
DeviceBuffer<T>::DeviceBuffer(Device* device, uint64_t device_addr, size_t n)
    : device_(device), device_addr_(device_addr), storage_(n) {}

template <typename T>
DeviceBuffer<T>::~DeviceBuffer() {
  if (device_ != nullptr) {
    device_->ReleaseAllocation(storage_.size() * sizeof(T));
  }
}

template <typename T>
DeviceBuffer<T>& DeviceBuffer<T>::operator=(DeviceBuffer&& o) noexcept {
  if (this != &o) {
    if (device_ != nullptr) {
      device_->ReleaseAllocation(storage_.size() * sizeof(T));
    }
    device_ = o.device_;
    device_addr_ = o.device_addr_;
    storage_ = std::move(o.storage_);
    o.device_ = nullptr;
    o.device_addr_ = 0;
    o.storage_.clear();
  }
  return *this;
}

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_DEVICE_H_
