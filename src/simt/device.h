// The simulated device: global memory allocation, kernel launching, metrics
// and simulated-time accounting.
//
// Usage:
//   simt::Device dev(simt::DeviceSpec::TitanXMaxwell());
//   auto buf = dev.Alloc<float>(n).value();
//   dev.CopyToDevice(buf, host_data);              // PCIe-accounted staging
//   auto stats = dev.Launch({grid, block}, [&](simt::Block& blk) { ... });
//   double ms = stats->time.total_ms;              // simulated kernel time
//
// Memory is pooled: freed DeviceBuffers return their (256-byte rounded)
// blocks to a per-size free list, so a long batch of queries reuses
// addresses instead of growing the footprint. `allocated_bytes()` tracks
// live requested bytes, `peak_allocated_bytes()` the high-water mark,
// `footprint_bytes()` the bump-pointer extent. `set_pooling(false)` turns
// Release into a no-op (the pre-pooling no-reuse baseline, where a batch
// monotonically accumulates until ResourceExhausted).
//
// Streams: work issued through Device::LaunchOnStream / the stream-taking
// copy overloads advances only that stream's simulated clock, so
// independent streams overlap; concurrent kernels that oversubscribe the
// device are slowed by the committed-interval contention model in
// timing_model.h. `total_sim_ms()` stays the busy sum across all streams
// (the legacy serialized metric); `makespan_ms()` is the wall-clock of the
// overlapped schedule. Legacy entry points run on the default stream.
//
// Tracing: by default every block is traced (exact metrics). For large
// inputs, `set_trace_sample_target(t)` traces ~t evenly spaced blocks per
// launch and extrapolates — valid because all kernels in this library have
// block-homogeneous access patterns.
#ifndef MPTOPK_SIMT_DEVICE_H_
#define MPTOPK_SIMT_DEVICE_H_

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "simt/block.h"
#include "simt/device_spec.h"
#include "simt/fault_injection.h"
#include "simt/memory.h"
#include "simt/metrics.h"
#include "simt/racecheck.h"
#include "simt/stream.h"
#include "simt/timing_model.h"
#include "simt/trace.h"
#include "simt/workers.h"

namespace mptopk::simt {

struct LaunchConfig {
  int grid_dim = 1;
  int block_dim = 256;
  /// Register footprint per thread (a CUDA compiler output; declared by the
  /// kernel author here). Affects occupancy.
  int regs_per_thread = 32;
  /// Kernel name for per-kernel accounting / debugging.
  const char* name = "kernel";
};

struct KernelStats {
  std::string name;
  KernelMetrics metrics;
  KernelTime time;
  KernelResources resources;
  /// Stream placement of this launch on the simulated timeline.
  int stream_id = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  /// Hazards this launch's traced blocks produced under the race checker
  /// (empty unless Device racecheck is enabled; see simt/racecheck.h).
  RaceReport race;
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::TitanXMaxwell())
      : spec_(std::move(spec)),
        racecheck_(spec_.racecheck || RacecheckEnvEnabled()),
        host_workers_(spec_.host_workers > 0 ? spec_.host_workers
                                             : DefaultHostWorkers()),
        default_stream_(0, "default") {}

  const DeviceSpec& spec() const { return spec_; }

  /// Allocates `n` elements of device global memory from the pooled
  /// allocator (charged to the device-wide arena). Fails with
  /// ResourceExhausted when live bytes would exceed device capacity.
  template <typename T>
  StatusOr<DeviceBuffer<T>> Alloc(size_t n) {
    return AllocIn<T>(n, nullptr);
  }

  /// Allocates like Alloc but charges the given arena (per-query
  /// accounting scope); nullptr means the device-wide arena.
  template <typename T>
  StatusOr<DeviceBuffer<T>> AllocIn(size_t n, MemoryArena* arena) {
    size_t bytes = n * sizeof(T);
    if (fault_plan_ != nullptr) {
      Status st = fault_plan_->OnAlloc(bytes);
      if (!st.ok()) return st;
    }
    if (allocated_bytes_ + bytes > spec_.global_mem_bytes) {
      return Status::ResourceExhausted(
          "device memory exhausted: requested " + std::to_string(bytes) +
          " bytes, " +
          std::to_string(spec_.global_mem_bytes - allocated_bytes_) +
          " available");
    }
    uint64_t addr = AcquireBlock(RoundBlock(bytes));
    allocated_bytes_ += bytes;
    lifetime_alloc_bytes_ += bytes;
    if (allocated_bytes_ > peak_allocated_bytes_) {
      peak_allocated_bytes_ = allocated_bytes_;
    }
    if (arena == nullptr) arena = &device_arena_;
    arena->OnAlloc(bytes);
    return DeviceBuffer<T>(this, addr, n, arena);
  }

  /// Host -> device staging; accumulates simulated PCIe transfer time and
  /// advances the target stream's clock. Fails with kUnavailable
  /// (retryable) under an installed fault plan; no data moves on failure.
  template <typename T>
  Status CopyToDevice(Stream& stream, DeviceBuffer<T>& dst, const T* src,
                      size_t n) {
    if (n == 0) return Status::OK();
    if (fault_plan_ != nullptr) {
      MPTOPK_RETURN_NOT_OK(
          fault_plan_->OnTransfer(n * sizeof(T), /*readback=*/false));
    }
    std::memcpy(dst.host_data(), src, n * sizeof(T));
    CommitTransfer(stream, n * sizeof(T));
    return Status::OK();
  }

  template <typename T>
  Status CopyToDevice(DeviceBuffer<T>& dst, const T* src, size_t n) {
    return CopyToDevice(default_stream_, dst, src, n);
  }

  /// Device -> host readback; accumulates simulated PCIe transfer time and
  /// advances the source stream's clock. Fails with kUnavailable
  /// (retryable) under an installed fault plan; the plan may also silently
  /// corrupt one bit of a "successful" readback
  /// (FaultPlanConfig::corrupt_readback_index) to exercise verification.
  template <typename T>
  Status CopyToHost(Stream& stream, T* dst, const DeviceBuffer<T>& src,
                    size_t n) {
    if (n == 0) return Status::OK();
    if (fault_plan_ != nullptr) {
      MPTOPK_RETURN_NOT_OK(
          fault_plan_->OnTransfer(n * sizeof(T), /*readback=*/true));
    }
    std::memcpy(dst, src.host_data(), n * sizeof(T));
    if (fault_plan_ != nullptr) {
      fault_plan_->CorruptReadback(dst, n * sizeof(T));
    }
    CommitTransfer(stream, n * sizeof(T));
    return Status::OK();
  }

  template <typename T>
  Status CopyToHost(T* dst, const DeviceBuffer<T>& src, size_t n) {
    return CopyToHost(default_stream_, dst, src, n);
  }

  /// Launches `body(Block&)` over the grid on `stream`, returning traced
  /// metrics and the simulated kernel time. Validates block dimensions and
  /// shared-memory usage (a kernel allocating more than
  /// shared_mem_per_block fails with ResourceExhausted — e.g. per-thread
  /// top-k at k=512, paper Section 4.1). The kernel starts at the stream's
  /// clock; if committed work on *other* streams overlaps it and the summed
  /// device share exceeds 1, its bandwidth terms stretch accordingly.
  template <typename F>
  StatusOr<KernelStats> LaunchOnStream(Stream& stream, const LaunchConfig& cfg,
                                       F&& body) {
    if (fault_plan_ != nullptr) {
      Status st = fault_plan_->OnLaunch(cfg.name);
      if (!st.ok()) return st;
    }
    if (cfg.grid_dim <= 0 || cfg.block_dim <= 0) {
      return Status::InvalidArgument("launch dims must be positive");
    }
    if (cfg.block_dim > spec_.max_threads_per_block) {
      return Status::InvalidArgument(
          "block_dim " + std::to_string(cfg.block_dim) + " exceeds device max " +
          std::to_string(spec_.max_threads_per_block));
    }

    // Ceil-division guarantees at most trace_sample_target_ traced blocks
    // (floor division traced up to 2*target - 1).
    int stride = 1;
    if (trace_sample_target_ > 0 && cfg.grid_dim > trace_sample_target_) {
      stride = (cfg.grid_dim + trace_sample_target_ - 1) /
               trace_sample_target_;
    }

    KernelStats stats;
    stats.name = cfg.name;
    size_t shared_used = 0;
    const int workers = std::min(host_workers_, cfg.grid_dim);
    if (workers <= 1) {
      // Sequential path: the exact legacy loop (workers=1 contract).
      Block block(spec_, cfg.grid_dim, cfg.block_dim);
      BlockTracer tracer(spec_, cfg.block_dim);
      for (int b = 0; b < cfg.grid_dim; ++b) {
        bool traced = (b % stride) == 0;
        if (traced) tracer.Reset(cfg.block_dim);
        block.ResetFor(b, traced ? &tracer : nullptr);
        body(block);
        shared_used = std::max(shared_used, block.shared_bytes_used());
        if (shared_used > spec_.shared_mem_per_block) {
          return Status::ResourceExhausted(
              std::string(cfg.name) + ": block shared memory " +
              std::to_string(shared_used) + " B exceeds device limit " +
              std::to_string(spec_.shared_mem_per_block) + " B");
        }
        if (traced) {
          tracer.Analyze(&stats.metrics);
          if (racecheck_) {
            RaceChecker::CheckBlock(tracer, spec_, stats.name, b, &stats.race);
          }
        }
      }
    } else {
      // Parallel path: shard blocks round-robin over W workers, each with
      // its own Block/BlockTracer and local accumulators; merge in block
      // order after the join so every metric, race report and timing is
      // bit-identical to the sequential loop (see simt/workers.h for the
      // atomics/turnstile contract that makes the traces themselves
      // worker-count-invariant).
      struct WorkerCtx {
        WorkerCtx(const DeviceSpec& spec, const LaunchConfig& cfg)
            : block(spec, cfg.grid_dim, cfg.block_dim),
              tracer(spec, cfg.block_dim) {}
        Block block;
        BlockTracer tracer;
        KernelMetrics metrics;
        size_t shared_used = 0;
        std::vector<std::pair<int, RaceReport>> race;  // per traced block
      };
      std::vector<std::unique_ptr<WorkerCtx>> ctx;
      ctx.reserve(workers);
      for (int w = 0; w < workers; ++w) {
        ctx.push_back(std::make_unique<WorkerCtx>(spec_, cfg));
      }
      LaunchOrder order(cfg.grid_dim);
      const std::function<void(int, int)> run = [&](int w, int b) {
        WorkerCtx& cx = *ctx[w];
        bool traced = (b % stride) == 0;
        if (traced) cx.tracer.Reset(cfg.block_dim);
        cx.block.ResetFor(b, traced ? &cx.tracer : nullptr, &order);
        body(cx.block);
        size_t used = cx.block.shared_bytes_used();
        cx.shared_used = std::max(cx.shared_used, used);
        if (traced && used <= spec_.shared_mem_per_block) {
          cx.tracer.Analyze(&cx.metrics);
          if (racecheck_) {
            cx.race.emplace_back(b, RaceReport{});
            RaceChecker::CheckBlock(cx.tracer, spec_, stats.name, b,
                                    &cx.race.back().second);
          }
        }
        order.MarkDone(b);
      };
      BlockWorkers::Instance().Run(workers, cfg.grid_dim, run);

      for (const auto& c : ctx) {
        shared_used = std::max(shared_used, c->shared_used);
      }
      if (shared_used > spec_.shared_mem_per_block) {
        // All kernels in this library allocate shared memory uniformly per
        // block, so the peak equals the sequential loop's first-failure
        // usage and the message matches the workers=1 path.
        return Status::ResourceExhausted(
            std::string(cfg.name) + ": block shared memory " +
            std::to_string(shared_used) + " B exceeds device limit " +
            std::to_string(spec_.shared_mem_per_block) + " B");
      }
      // Metric counters are all uint64 and Analyze only accumulates, so
      // summing per-worker locals in any order reproduces the sequential
      // totals exactly.
      for (const auto& c : ctx) stats.metrics += c->metrics;
      if (racecheck_) {
        // Race reports cap recorded hazards, so merge order matters:
        // restore block order across workers.
        std::vector<std::pair<int, RaceReport>*> reports;
        for (auto& c : ctx) {
          for (auto& r : c->race) reports.push_back(&r);
        }
        std::sort(reports.begin(), reports.end(),
                  [](const auto* a, const auto* b) {
                    return a->first < b->first;
                  });
        for (const auto* r : reports) stats.race.Merge(r->second);
      }
    }
    race_report_.Merge(stats.race);
    stats.metrics.blocks_launched = cfg.grid_dim;
    if (stats.metrics.blocks_traced > 0 &&
        stats.metrics.blocks_traced < static_cast<uint64_t>(cfg.grid_dim)) {
      stats.metrics.Scale(static_cast<double>(cfg.grid_dim) /
                          static_cast<double>(stats.metrics.blocks_traced));
    }

    stats.resources = KernelResources{cfg.grid_dim, cfg.block_dim,
                                      cfg.regs_per_thread, shared_used};
    stats.time = EstimateKernelTime(spec_, stats.resources, stats.metrics);

    const double start = stream.now_ms();
    // Contention only arises once extra streams exist; the common
    // single-stream path skips the interval scan entirely.
    if (!streams_.empty()) {
      double factor =
          ConcurrencyFactor(intervals_, stream.id(), start,
                            stats.time.total_ms,
                            stats.time.occupancy.sm_utilization);
      stats.time = ApplyConcurrency(stats.time, factor);
      intervals_.push_back(StreamInterval{stream.id(), start,
                                          start + stats.time.total_ms,
                                          stats.time.occupancy.sm_utilization});
    }
    stats.stream_id = stream.id();
    stats.start_ms = start;
    stats.end_ms = start + stats.time.total_ms;
    stream.Advance(stats.time.total_ms);

    total_sim_ms_ += stats.time.total_ms;
    total_metrics_ += stats.metrics;
    kernel_log_.push_back(stats);
    return stats;
  }

  /// Legacy launch on the default stream.
  template <typename F>
  StatusOr<KernelStats> Launch(const LaunchConfig& cfg, F&& body) {
    return LaunchOnStream(default_stream_, cfg, std::forward<F>(body));
  }

  /// Creates an additional stream (owned by the device; stable pointer).
  /// The default stream has id 0; created streams get ids 1, 2, ...
  Stream* CreateStream(std::string name = "stream") {
    streams_.push_back(std::make_unique<Stream>(
        static_cast<int>(streams_.size()) + 1, std::move(name)));
    return streams_.back().get();
  }
  Stream& default_stream() { return default_stream_; }
  /// Number of streams including the default stream.
  int stream_count() const { return static_cast<int>(streams_.size()) + 1; }

  /// Wall-clock of the overlapped schedule: the furthest point any stream's
  /// clock has reached (compare with total_sim_ms(), the busy sum).
  double makespan_ms() const {
    double m = default_stream_.now_ms();
    for (const auto& s : streams_) m = std::max(m, s->now_ms());
    return m;
  }

  /// Trace every block (exact; default) when 0, else trace at most `target`
  /// evenly spaced blocks per launch (ceil-division stride; block 0 is
  /// always traced) and extrapolate the counters to the full grid.
  void set_trace_sample_target(int target) { trace_sample_target_ = target; }

  /// Host worker threads used to execute launches (simulator host
  /// performance only: simulated metrics and timings are bit-identical for
  /// every count — pinned by tests/parallel_launch_test.cc). Initialized
  /// from DeviceSpec::host_workers, falling back to the MPTOPK_WORKERS
  /// environment variable / bench --workers override, then
  /// min(hardware_concurrency, 8). 1 = the legacy sequential loop.
  void set_host_workers(int workers) {
    host_workers_ = workers < 1 ? 1 : workers;
  }
  int host_workers() const { return host_workers_; }

  /// Toggles the barrier-epoch race checker for subsequent launches (see
  /// simt/racecheck.h). Initialized from DeviceSpec::racecheck or the
  /// MPTOPK_RACECHECK environment variable. Only traced blocks are checked,
  /// so under trace sampling raise set_trace_sample_target for coverage.
  void set_racecheck(bool on) { racecheck_ = on; }
  bool racecheck() const { return racecheck_; }
  /// Hazards accumulated across every checked launch since construction /
  /// ClearRaceReport (per-launch reports are on KernelStats::race).
  const RaceReport& race_report() const { return race_report_; }
  void ClearRaceReport() { race_report_ = RaceReport{}; }

  /// Installs (or clears, with nullptr) a deterministic fault plan consulted
  /// by Alloc / CopyToDevice / CopyToHost / Launch. The device shares
  /// ownership so tests can keep inspecting the plan's stats().
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Charges extra simulated latency (e.g. the resilient executor's retry
  /// backoff) to the given stream so end-to-end simulated time reflects it.
  void AddSimulatedDelayMs(Stream& stream, double ms) {
    total_sim_ms_ += ms;
    stream.Advance(ms);
  }
  void AddSimulatedDelayMs(double ms) {
    AddSimulatedDelayMs(default_stream_, ms);
  }

  /// Simulated kernel milliseconds accumulated since construction/reset —
  /// the busy sum over all streams (serialized-equivalent time).
  double total_sim_ms() const { return total_sim_ms_; }
  /// Simulated PCIe staging milliseconds.
  double pcie_ms() const { return pcie_ms_; }
  const KernelMetrics& total_metrics() const { return total_metrics_; }
  const std::vector<KernelStats>& kernel_log() const { return kernel_log_; }

  /// Live requested bytes (decremented when buffers die under pooling).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// High-water mark of allocated_bytes() since construction.
  size_t peak_allocated_bytes() const { return peak_allocated_bytes_; }
  /// Cumulative requested bytes over all allocations (never decremented).
  size_t lifetime_alloc_bytes() const { return lifetime_alloc_bytes_; }
  /// Extent of the bump pointer: address space ever carved out. Under
  /// pooling this plateaus once the pool serves steady-state demand.
  size_t footprint_bytes() const {
    return static_cast<size_t>(next_addr_ - kBaseAddr);
  }
  /// Allocations served from the free list instead of fresh address space.
  uint64_t pool_reuse_count() const { return pool_reuse_count_; }
  /// Rounded bytes currently parked in the free list.
  size_t pooled_free_bytes() const { return pooled_free_bytes_; }
  /// Device-wide arena (allocations not charged to a caller arena).
  const MemoryArena& device_arena() const { return device_arena_; }

  /// Pooling is on by default. Disabling it makes Release a no-op — freed
  /// bytes stay charged and addresses are never reused — which is the
  /// pre-pooling no-reuse baseline used for memory comparisons. Toggle
  /// before allocating; flipping mid-lifetime skews accounting.
  void set_pooling(bool enabled) { pooling_enabled_ = enabled; }
  bool pooling_enabled() const { return pooling_enabled_; }

  /// Resets time/metrics accumulators and stream clocks (not allocations).
  void ResetAccounting() {
    total_sim_ms_ = 0;
    pcie_ms_ = 0;
    total_metrics_ = KernelMetrics{};
    kernel_log_.clear();
    intervals_.clear();
    default_stream_.Reset();
    for (auto& s : streams_) s->Reset();
  }

  // Internal: DeviceBuffer destruction returns the block to the pool.
  void ReleaseAllocation(size_t bytes, uint64_t addr, MemoryArena* arena) {
    if (!pooling_enabled_) return;  // no-reuse baseline: bytes stay charged
    allocated_bytes_ -= bytes;
    if (arena != nullptr) arena->OnFree(bytes);
    size_t rounded = RoundBlock(bytes);
    if (rounded > 0) {
      free_blocks_[rounded].push_back(addr);
      pooled_free_bytes_ += rounded;
    }
  }

 private:
  static constexpr uint64_t kBaseAddr = 4096;  // leave page 0 unmapped

  static size_t RoundBlock(size_t bytes) {
    return (bytes + 255) & ~size_t{255};  // 256-byte aligned blocks
  }

  uint64_t AcquireBlock(size_t rounded) {
    if (rounded > 0) {
      auto it = free_blocks_.find(rounded);
      if (it != free_blocks_.end() && !it->second.empty()) {
        uint64_t addr = it->second.back();
        it->second.pop_back();
        pooled_free_bytes_ -= rounded;
        ++pool_reuse_count_;
        return addr;
      }
    }
    uint64_t addr = next_addr_;
    next_addr_ += rounded;
    return addr;
  }

  void CommitTransfer(Stream& stream, size_t bytes) {
    double ms =
        static_cast<double>(bytes) / (spec_.pcie_bw_gbps * 1e9) * 1e3;
    pcie_ms_ += ms;
    // Transfers occupy the stream's timeline but not device compute
    // bandwidth; they commit no contention interval.
    stream.Advance(ms);
  }

  DeviceSpec spec_;
  std::shared_ptr<FaultPlan> fault_plan_;

  bool pooling_enabled_ = true;
  size_t allocated_bytes_ = 0;
  size_t peak_allocated_bytes_ = 0;
  size_t lifetime_alloc_bytes_ = 0;
  size_t pooled_free_bytes_ = 0;
  uint64_t pool_reuse_count_ = 0;
  uint64_t next_addr_ = kBaseAddr;
  /// Free blocks by rounded size (exact size-class reuse).
  std::map<size_t, std::vector<uint64_t>> free_blocks_;
  MemoryArena device_arena_{"device"};

  int trace_sample_target_ = 0;
  bool racecheck_ = false;
  int host_workers_ = 1;
  RaceReport race_report_;

  Stream default_stream_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<StreamInterval> intervals_;

  double total_sim_ms_ = 0;
  double pcie_ms_ = 0;
  KernelMetrics total_metrics_;
  std::vector<KernelStats> kernel_log_;
};

// --- DeviceBuffer inline implementation -------------------------------------

template <typename T>
DeviceBuffer<T>::DeviceBuffer(Device* device, uint64_t device_addr, size_t n,
                              MemoryArena* arena)
    : device_(device), device_addr_(device_addr), arena_(arena), storage_(n) {}

template <typename T>
DeviceBuffer<T>::~DeviceBuffer() {
  if (device_ != nullptr) {
    device_->ReleaseAllocation(storage_.size() * sizeof(T), device_addr_,
                               arena_);
  }
}

template <typename T>
DeviceBuffer<T>& DeviceBuffer<T>::operator=(DeviceBuffer&& o) noexcept {
  if (this != &o) {
    if (device_ != nullptr) {
      device_->ReleaseAllocation(storage_.size() * sizeof(T), device_addr_,
                                 arena_);
    }
    device_ = o.device_;
    device_addr_ = o.device_addr_;
    arena_ = o.arena_;
    storage_ = std::move(o.storage_);
    o.device_ = nullptr;
    o.device_addr_ = 0;
    o.arena_ = nullptr;
    o.storage_.clear();
  }
  return *this;
}

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_DEVICE_H_
