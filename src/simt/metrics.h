// Per-kernel execution metrics collected by the access tracer.
//
// These are the quantities the paper's cost model (Section 7) is built on:
// global-memory traffic (with coalescing efficiency), shared-memory cycles
// (with bank-conflict replays), atomics, and divergence-driven warp
// instruction counts.
#ifndef MPTOPK_SIMT_METRICS_H_
#define MPTOPK_SIMT_METRICS_H_

#include <cstdint>
#include <string>

namespace mptopk::simt {

struct KernelMetrics {
  // Global memory ------------------------------------------------------------
  /// 32-byte sectors moved (each warp memory instruction touches >= 1).
  uint64_t global_transactions = 0;
  /// Bytes actually moved over the global memory bus (sectors * 32).
  uint64_t global_bytes = 0;
  /// Bytes the kernel asked for; global_bytes / global_useful_bytes is the
  /// coalescing inefficiency factor.
  uint64_t global_useful_bytes = 0;
  /// Local-memory traffic from register spills (billed at global bandwidth).
  uint64_t local_bytes = 0;

  // Shared memory --------------------------------------------------------—--
  /// Warp-level shared memory cycles including bank-conflict replays. One
  /// conflict-free warp access = 1 cycle moving up to 128 bytes.
  uint64_t shared_cycles = 0;
  /// shared_cycles * 128 (bandwidth-slot bytes consumed).
  uint64_t shared_bytes = 0;
  /// Bytes the kernel asked for from shared memory.
  uint64_t shared_useful_bytes = 0;
  /// Replays beyond the first cycle, i.e. pure bank-conflict overhead.
  uint64_t bank_conflict_cycles = 0;

  // Atomics -------------------------------------------------------------—---
  uint64_t shared_atomic_cycles = 0;
  uint64_t global_atomics = 0;

  /// Cycles spent in kernel-reported dependent access chains (latency-bound
  /// serial sections like heap sift-downs) that bandwidth cannot express.
  uint64_t dependent_stall_cycles = 0;

  // Divergence ----------------------------------------------------------—---
  /// Total warp memory instructions issued.
  uint64_t warp_instructions = 0;
  /// Lane-slots that were idle in issued warp instructions (divergence).
  uint64_t divergent_lane_slots = 0;

  /// Number of blocks that were actually traced (sampling) vs launched.
  uint64_t blocks_traced = 0;
  uint64_t blocks_launched = 0;

  KernelMetrics& operator+=(const KernelMetrics& o) {
    global_transactions += o.global_transactions;
    global_bytes += o.global_bytes;
    global_useful_bytes += o.global_useful_bytes;
    local_bytes += o.local_bytes;
    shared_cycles += o.shared_cycles;
    shared_bytes += o.shared_bytes;
    shared_useful_bytes += o.shared_useful_bytes;
    bank_conflict_cycles += o.bank_conflict_cycles;
    shared_atomic_cycles += o.shared_atomic_cycles;
    dependent_stall_cycles += o.dependent_stall_cycles;
    global_atomics += o.global_atomics;
    warp_instructions += o.warp_instructions;
    divergent_lane_slots += o.divergent_lane_slots;
    blocks_traced += o.blocks_traced;
    blocks_launched += o.blocks_launched;
    return *this;
  }

  /// Scales all traffic counters by `factor` (used to extrapolate sampled
  /// block traces to the full grid).
  void Scale(double factor);

  std::string ToString() const;
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_METRICS_H_
