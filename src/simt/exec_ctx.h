// ExecCtx: the execution context every algorithm runs against — a device
// plus the stream its work is ordered on and the arena its allocations are
// charged to.
//
// ExecCtx mirrors the Device surface (spec / Alloc / CopyToDevice /
// CopyToHost / Launch / accounting accessors), so algorithm code is written
// once against `simt::ExecCtx&` and works identically for the legacy
// single-query path (a default context on the device's default stream) and
// for the batched engine (one context per query, each on its own stream and
// arena). It is a cheap value type: three pointers and a hint; copy freely.
#ifndef MPTOPK_SIMT_EXEC_CTX_H_
#define MPTOPK_SIMT_EXEC_CTX_H_

#include "simt/device.h"

namespace mptopk::simt {

class ExecCtx {
 public:
  /// Default context: device's default stream, device-wide arena.
  /// Deliberately implicit — a bare `simt::Device&` converts to a default
  /// context, so every pre-stream call site (and out-of-tree caller)
  /// compiles unchanged against the ExecCtx-taking algorithm entry points.
  ExecCtx(Device& dev)  // NOLINT(google-explicit-constructor)
      : dev_(&dev), stream_(&dev.default_stream()), arena_(nullptr) {}

  /// Bound context: work ordered on `stream`, allocations charged to
  /// `arena` (nullptr = device-wide arena). Both must outlive the context
  /// and any DeviceBuffer allocated through it.
  ExecCtx(Device& dev, Stream* stream, MemoryArena* arena)
      : dev_(&dev), stream_(stream != nullptr ? stream : &dev.default_stream()),
        arena_(arena) {}

  Device& device() const { return *dev_; }
  Stream& stream() const { return *stream_; }
  MemoryArena* arena() const { return arena_; }

  /// Expected number of contexts running concurrently on this device; set
  /// by the batch executor so the planner's cost model can price bandwidth
  /// sharing (cost::Workload::concurrent_streams).
  int concurrency_hint() const { return concurrency_hint_; }
  void set_concurrency_hint(int n) { concurrency_hint_ = n > 1 ? n : 1; }

  // --- Device surface, bound to this stream/arena ---------------------------

  const DeviceSpec& spec() const { return dev_->spec(); }

  template <typename T>
  StatusOr<DeviceBuffer<T>> Alloc(size_t n) const {
    return dev_->AllocIn<T>(n, arena_);
  }

  template <typename T>
  Status CopyToDevice(DeviceBuffer<T>& dst, const T* src, size_t n) const {
    return dev_->CopyToDevice(*stream_, dst, src, n);
  }

  template <typename T>
  Status CopyToHost(T* dst, const DeviceBuffer<T>& src, size_t n) const {
    return dev_->CopyToHost(*stream_, dst, src, n);
  }

  template <typename F>
  StatusOr<KernelStats> Launch(const LaunchConfig& cfg, F&& body) const {
    return dev_->LaunchOnStream(*stream_, cfg, std::forward<F>(body));
  }

  void AddSimulatedDelayMs(double ms) const {
    dev_->AddSimulatedDelayMs(*stream_, ms);
  }

  /// Cross-stream ordering: capture this context's position / block behind
  /// another context's event.
  Event RecordEvent() const { return stream_->Record(); }
  void WaitEvent(const Event& e) const { stream_->Wait(e); }
  double now_ms() const { return stream_->now_ms(); }

  double total_sim_ms() const { return dev_->total_sim_ms(); }
  double pcie_ms() const { return dev_->pcie_ms(); }
  const std::vector<KernelStats>& kernel_log() const {
    return dev_->kernel_log();
  }
  size_t allocated_bytes() const { return dev_->allocated_bytes(); }
  FaultPlan* fault_plan() const { return dev_->fault_plan(); }

  /// Barrier-epoch race checker state (device-wide; see simt/racecheck.h).
  bool racecheck() const { return dev_->racecheck(); }
  const RaceReport& race_report() const { return dev_->race_report(); }

 private:
  Device* dev_;
  Stream* stream_;
  MemoryArena* arena_;
  int concurrency_hint_ = 1;
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_EXEC_CTX_H_
