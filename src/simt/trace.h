// Memory access tracing and warp-level analysis.
//
// Kernels execute block-synchronously (lane loops between barriers). Every
// global / shared access made through the traced spans is recorded with a
// per-thread sequence number. Because the kernels in this library are
// data-parallel, the i-th access of each lane in a warp corresponds to the
// same (SIMT) memory instruction; the analyzer therefore groups accesses by
// (warp, seq) into "warp instructions" and derives:
//
//  * global memory: the set of 32-byte sectors touched -> transactions and
//    bus bytes (coalescing model),
//  * shared memory: the maximum number of distinct 4-byte words mapping to
//    one bank -> replay cycles (bank-conflict model; same-word access by
//    multiple lanes broadcasts conflict-free),
//  * atomics: same-bank accesses serialize per access (not per distinct
//    word),
//  * divergence: lanes missing from a warp instruction are idle slots.
//
// Sequence numbers are re-aligned across a warp at every barrier and region
// boundary so that divergent regions (e.g. data-dependent heap updates) cost
// extra warp instructions exactly as SIMT hardware serializes them.
//
// Every access also carries the block's barrier epoch — the number of
// Block::Sync() barriers executed before it. Epochs do not affect the
// timing analysis; they exist for simt::RaceChecker, which flags
// conflicting same-epoch accesses by different threads (racecheck.h).
#ifndef MPTOPK_SIMT_TRACE_H_
#define MPTOPK_SIMT_TRACE_H_

#include <cstdint>
#include <vector>

#include "simt/device_spec.h"
#include "simt/metrics.h"

namespace mptopk::simt {

class BlockTracer {
 public:
  /// One traced memory access. `epoch` counts Block::Sync() barriers executed
  /// before the access; `atomic` marks read-modify-write operations (both are
  /// ignored by the timing analysis and consumed by simt::RaceChecker).
  struct Access {
    uint64_t addr;
    uint32_t seq;
    uint32_t epoch;
    uint16_t size;
    bool write;
    bool atomic;
  };

  BlockTracer(const DeviceSpec& spec, int block_dim);

  /// Clears all recorded accesses (block reuse) and resets the barrier
  /// epoch. Access vectors are re-reserved from the high-water mark of
  /// earlier blocks, so steady-state tracing never reallocates.
  void Reset(int block_dim);

  void RecordGlobal(int tid, uint32_t seq, uint64_t addr, uint32_t size,
                    bool write, bool atomic = false);
  void RecordShared(int tid, uint32_t seq, uint64_t addr, uint32_t size,
                    bool write, bool atomic);
  /// Register-spill traffic to thread-local memory (no warp analysis; billed
  /// as global-bandwidth bytes).
  void RecordLocal(uint64_t bytes) { local_bytes_ += bytes; }

  /// Latency-bound dependent access chains (each link's address depends on
  /// the previous load, e.g. heap sift levels); priced by the timing model
  /// as exposed latency divided by resident warps.
  void RecordDependentCycles(uint64_t cycles) { dependent_cycles_ += cycles; }

  /// Advances the barrier epoch (called by Block::Sync on traced blocks).
  void AdvanceEpoch() { ++epoch_; }
  uint32_t epoch() const { return epoch_; }

  /// Analyzes all recorded accesses of this block and accumulates into *m.
  void Analyze(KernelMetrics* m) const;

  // Raw per-thread access streams, indexed by tid (for RaceChecker).
  int block_dim() const { return block_dim_; }
  const std::vector<std::vector<Access>>& global_accesses() const {
    return global_;
  }
  const std::vector<std::vector<Access>>& shared_accesses() const {
    return shared_;
  }

 private:
  void AnalyzeGlobalWarp(const std::vector<Access>* lanes, int num_lanes,
                         KernelMetrics* m) const;
  void AnalyzeSharedWarp(const std::vector<Access>* lanes, int num_lanes,
                         KernelMetrics* m) const;

  const DeviceSpec& spec_;
  int block_dim_;
  // Indexed by tid; accesses are in strictly increasing seq order per thread.
  std::vector<std::vector<Access>> global_;
  std::vector<std::vector<Access>> shared_;
  uint32_t epoch_ = 0;
  uint64_t local_bytes_ = 0;
  uint64_t dependent_cycles_ = 0;
  // Largest per-thread access counts seen so far (Reset reserves these).
  size_t global_hwm_ = 0;
  size_t shared_hwm_ = 0;
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_TRACE_H_
