#include "simt/timing_model.h"

#include <algorithm>
#include <cmath>

namespace mptopk::simt {

Occupancy ComputeOccupancy(const DeviceSpec& spec, const KernelResources& res) {
  Occupancy occ;
  int by_threads = spec.max_threads_per_sm / std::max(1, res.block_dim);
  int by_smem =
      res.shared_bytes_per_block == 0
          ? spec.max_blocks_per_sm
          : static_cast<int>(spec.shared_mem_per_sm /
                             res.shared_bytes_per_block);
  int regs_per_block = std::max(1, res.regs_per_thread * res.block_dim);
  int by_regs = spec.register_file_per_sm / regs_per_block;
  occ.blocks_per_sm = std::max(
      0, std::min({spec.max_blocks_per_sm, by_threads, by_smem, by_regs}));
  int warps_per_block =
      (res.block_dim + spec.warp_size - 1) / spec.warp_size;
  occ.warps_per_sm = std::min(occ.blocks_per_sm * warps_per_block,
                              spec.max_warps_per_sm());
  // The whole grid may not fill every SM (or may not even provide one block
  // per SM); cap resident warps by what the grid supplies.
  // A busy SM hosts at least one whole block, so small grids are judged by
  // per-busy-SM residency (idle SMs are charged via sm_utilization instead).
  double grid_blocks_per_sm = std::max(
      1.0, static_cast<double>(res.grid_dim) / spec.num_sms);
  double resident_warps = std::min(static_cast<double>(occ.warps_per_sm),
                                   grid_blocks_per_sm * warps_per_block);
  occ.resident_warps = std::max(1.0, resident_warps);
  occ.bw_efficiency =
      std::min(1.0, resident_warps / spec.warps_to_saturate_bw);
  occ.shared_efficiency =
      std::min(1.0, resident_warps / spec.warps_to_saturate_shared);
  occ.sm_utilization =
      std::min(1.0, static_cast<double>(res.grid_dim) / spec.num_sms);
  return occ;
}

KernelTime EstimateKernelTime(const DeviceSpec& spec,
                              const KernelResources& res,
                              const KernelMetrics& metrics) {
  KernelTime t;
  t.occupancy = ComputeOccupancy(spec, res);
  const double bw_eff = std::max(t.occupancy.bw_efficiency, 1e-6);
  const double sm_util = std::max(t.occupancy.sm_utilization, 1e-6);

  const double global_bw = spec.global_bw_gbps * 1e9 * bw_eff;  // bytes/s
  t.global_ms = (static_cast<double>(metrics.global_bytes) +
                 static_cast<double>(metrics.local_bytes)) /
                global_bw * 1e3;

  // Shared bandwidth is a per-SM resource; scale by busy SMs and by warp
  // occupancy (an SM with very few resident warps cannot keep its shared
  // memory pipeline full either, though it saturates with fewer warps than
  // the global pipeline).
  const double shared_eff = std::max(t.occupancy.shared_efficiency, 1e-6);
  const double shared_bw = spec.shared_bw_gbps * 1e9 * sm_util * shared_eff;
  const double shared_slot_bytes =
      static_cast<double>(spec.shared_mem_banks * spec.bank_width_bytes);
  double shared_traffic =
      (static_cast<double>(metrics.shared_cycles) +
       spec.shared_atomic_cost_factor *
           static_cast<double>(metrics.shared_atomic_cycles)) *
      shared_slot_bytes;
  t.shared_ms = shared_traffic / shared_bw * 1e3;

  // Global atomics are limited by L2 throughput; modeled as a separate
  // pipeline that overlaps with data movement.
  t.atomic_ms =
      static_cast<double>(metrics.global_atomics) * spec.global_atomic_ns *
      1e-6;

  // Dependent chains: each link exposes its full latency to the owning
  // warp; the other resident warps on the SM interleave their own chains,
  // so device throughput is (resident_warps) links per latency per busy SM.
  t.dependent_ms = static_cast<double>(metrics.dependent_stall_cycles) /
                   (spec.clock_ghz * 1e9) /
                   (spec.num_sms * sm_util * t.occupancy.resident_warps) *
                   1e3;

  t.overhead_ms = spec.kernel_launch_overhead_us * 1e-3;
  t.total_ms = std::max({t.global_ms, t.shared_ms, t.atomic_ms}) +
               t.dependent_ms + t.overhead_ms;
  return t;
}

double ConcurrencyFactor(const std::vector<StreamInterval>& committed,
                         int stream_id, double start_ms, double duration_ms,
                         double own_share) {
  if (duration_ms <= 0.0 || own_share <= 0.0) return 1.0;
  const double end_ms = start_ms + duration_ms;
  // Duration-weighted average of foreign device share overlapping this
  // kernel's window. Intervals on the same stream are serialized by the
  // stream clock and never overlap by construction.
  double foreign = 0.0;
  for (const StreamInterval& iv : committed) {
    if (iv.stream_id == stream_id || iv.device_share <= 0.0) continue;
    double overlap = std::min(end_ms, iv.end_ms) - std::max(start_ms, iv.start_ms);
    if (overlap > 0.0) foreign += iv.device_share * (overlap / duration_ms);
  }
  return std::max(1.0, own_share + foreign);
}

KernelTime ApplyConcurrency(const KernelTime& t, double factor) {
  if (factor <= 1.0) return t;
  KernelTime out = t;
  out.global_ms *= factor;
  out.shared_ms *= factor;
  out.atomic_ms *= factor;
  out.total_ms = std::max({out.global_ms, out.shared_ms, out.atomic_ms}) +
                 out.dependent_ms + out.overhead_ms;
  return out;
}

}  // namespace mptopk::simt
