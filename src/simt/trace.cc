#include "simt/trace.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>

namespace mptopk::simt {

BlockTracer::BlockTracer(const DeviceSpec& spec, int block_dim)
    : spec_(spec), block_dim_(block_dim) {
  global_.resize(block_dim);
  shared_.resize(block_dim);
}

void BlockTracer::Reset(int block_dim) {
  block_dim_ = block_dim;
  if (static_cast<int>(global_.size()) < block_dim) {
    global_.resize(block_dim);
    shared_.resize(block_dim);
  }
  // Reserve from the previous block's high-water mark so freshly resized
  // per-thread vectors skip the push_back growth ladder on the hot path
  // (block-homogeneous kernels hit the mark exactly).
  for (auto& v : global_) {
    global_hwm_ = std::max(global_hwm_, v.size());
    v.clear();
    v.reserve(global_hwm_);
  }
  for (auto& v : shared_) {
    shared_hwm_ = std::max(shared_hwm_, v.size());
    v.clear();
    v.reserve(shared_hwm_);
  }
  epoch_ = 0;
  local_bytes_ = 0;
  dependent_cycles_ = 0;
}

void BlockTracer::RecordGlobal(int tid, uint32_t seq, uint64_t addr,
                               uint32_t size, bool write, bool atomic) {
  global_[tid].push_back(
      Access{addr, seq, epoch_, static_cast<uint16_t>(size), write, atomic});
}

void BlockTracer::RecordShared(int tid, uint32_t seq, uint64_t addr,
                               uint32_t size, bool write, bool atomic) {
  shared_[tid].push_back(
      Access{addr, seq, epoch_, static_cast<uint16_t>(size), write, atomic});
}

void BlockTracer::AnalyzeGlobalWarp(const std::vector<Access>* lanes,
                                    int num_lanes, KernelMetrics* m) const {
  std::array<size_t, 32> pos{};
  const uint64_t sector = spec_.sector_bytes;
  while (true) {
    // Find the minimum outstanding seq across lanes.
    uint32_t min_seq = std::numeric_limits<uint32_t>::max();
    for (int l = 0; l < num_lanes; ++l) {
      if (pos[l] < lanes[l].size()) {
        min_seq = std::min(min_seq, lanes[l][pos[l]].seq);
      }
    }
    if (min_seq == std::numeric_limits<uint32_t>::max()) break;

    // Gather the participating lanes of this warp instruction.
    std::array<uint64_t, 64> sectors;
    int num_sectors = 0;
    int participants = 0;
    uint64_t useful = 0;
    for (int l = 0; l < num_lanes; ++l) {
      if (pos[l] >= lanes[l].size() || lanes[l][pos[l]].seq != min_seq) {
        continue;
      }
      const Access& a = lanes[l][pos[l]];
      ++pos[l];
      ++participants;
      useful += a.size;
      uint64_t first = a.addr / sector;
      uint64_t last = (a.addr + a.size - 1) / sector;
      for (uint64_t s = first; s <= last; ++s) {
        bool seen = false;
        for (int j = 0; j < num_sectors; ++j) {
          if (sectors[j] == s) {
            seen = true;
            break;
          }
        }
        if (!seen && num_sectors < 64) sectors[num_sectors++] = s;
      }
    }
    m->warp_instructions += 1;
    m->divergent_lane_slots += spec_.warp_size - participants;
    m->global_transactions += num_sectors;
    m->global_bytes += static_cast<uint64_t>(num_sectors) * sector;
    m->global_useful_bytes += useful;
  }
}

void BlockTracer::AnalyzeSharedWarp(const std::vector<Access>* lanes,
                                    int num_lanes, KernelMetrics* m) const {
  const int kBanks = spec_.shared_mem_banks;
  const uint64_t word = spec_.bank_width_bytes;
  // Per-bank distinct-word lists for the current warp instruction. Lane
  // counts are tiny (<= 32 lanes * 4 words), linear scans are fine.
  std::vector<std::vector<uint64_t>> bank_words(kBanks);
  std::vector<int> bank_accesses(kBanks);

  std::array<size_t, 32> pos{};
  while (true) {
    uint32_t min_seq = std::numeric_limits<uint32_t>::max();
    for (int l = 0; l < num_lanes; ++l) {
      if (pos[l] < lanes[l].size()) {
        min_seq = std::min(min_seq, lanes[l][pos[l]].seq);
      }
    }
    if (min_seq == std::numeric_limits<uint32_t>::max()) break;

    for (auto& bw : bank_words) bw.clear();
    std::fill(bank_accesses.begin(), bank_accesses.end(), 0);
    int participants = 0;
    uint64_t useful = 0;
    bool any_atomic = false;
    for (int l = 0; l < num_lanes; ++l) {
      if (pos[l] >= lanes[l].size() || lanes[l][pos[l]].seq != min_seq) {
        continue;
      }
      const Access& a = lanes[l][pos[l]];
      ++pos[l];
      ++participants;
      useful += a.size;
      any_atomic |= a.atomic;
      uint64_t first = a.addr / word;
      uint64_t last = (a.addr + a.size - 1) / word;
      for (uint64_t w = first; w <= last; ++w) {
        int bank = static_cast<int>(w % kBanks);
        ++bank_accesses[bank];
        auto& words = bank_words[bank];
        if (std::find(words.begin(), words.end(), w) == words.end()) {
          words.push_back(w);
        }
      }
    }

    m->warp_instructions += 1;
    m->divergent_lane_slots += spec_.warp_size - participants;
    if (any_atomic) {
      // Same-word atomics within one warp instruction are warp-aggregated
      // (one hardware update delivering per-lane return values, as modern
      // shared-atomic units do); distinct words on a bank still replay, and
      // the read-modify-write costs one extra cycle.
      int cycles = 1;
      for (int b = 0; b < kBanks; ++b) {
        cycles = std::max(cycles, static_cast<int>(bank_words[b].size()) + 1);
      }
      m->shared_atomic_cycles += cycles;
      m->shared_useful_bytes += useful;
    } else {
      // Plain accesses: distinct words on the same bank replay; all lanes
      // reading one word broadcast in a single cycle.
      int replays = 1;
      for (int b = 0; b < kBanks; ++b) {
        replays = std::max(replays, static_cast<int>(bank_words[b].size()));
      }
      m->shared_cycles += replays;
      m->bank_conflict_cycles += replays - 1;
      m->shared_bytes +=
          static_cast<uint64_t>(replays) * kBanks * spec_.bank_width_bytes;
      m->shared_useful_bytes += useful;
    }
  }
}

void BlockTracer::Analyze(KernelMetrics* m) const {
  const int ws = spec_.warp_size;
  for (int w = 0; w * ws < block_dim_; ++w) {
    int lanes = std::min(ws, block_dim_ - w * ws);
    AnalyzeGlobalWarp(&global_[w * ws], lanes, m);
    AnalyzeSharedWarp(&shared_[w * ws], lanes, m);
  }
  m->local_bytes += local_bytes_;
  m->dependent_stall_cycles += dependent_cycles_;
  m->blocks_traced += 1;
}

}  // namespace mptopk::simt
