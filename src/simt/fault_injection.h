// Deterministic fault injection for the simulated device.
//
// A FaultPlan is a seedable script of device failures, installed on a
// simt::Device with `dev.set_fault_plan(plan)`. Every fallible device
// operation consults the plan before executing:
//
//   * Alloc       -> kResourceExhausted at a chosen allocation index or
//                    above a byte threshold ("the Nth allocation fails").
//   * CopyToDevice / CopyToHost
//                 -> transient kUnavailable faults, either at chosen
//                    transfer indices or with a seeded per-transfer
//                    probability. Retrying the copy advances the transfer
//                    counter, so a retried operation succeeds unless the
//                    plan also fails the next index.
//   * Launch      -> kUnavailable abort at a chosen launch index.
//   * CopyToHost  -> optional single-bit corruption of the transferred
//                    buffer (the copy itself reports success), exercising
//                    result verification in planner/resilient.h.
//
// Determinism: all decisions derive from the plan's configuration, its seed
// and the order of device operations — no wall clock, no global state. The
// same plan on the same workload injects byte-for-byte the same faults, so
// failure tests are exactly reproducible (see tests/failure_injection_test.cc
// and docs/robustness.md).
#ifndef MPTOPK_SIMT_FAULT_INJECTION_H_
#define MPTOPK_SIMT_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace mptopk::simt {

/// Declarative description of the faults to inject. Indices are 1-based and
/// count operations made after the plan is installed; 0 disables a trigger.
struct FaultPlanConfig {
  /// Seeds the PRNG behind probabilistic triggers and the corruption bit
  /// choice. Two plans with equal config produce identical fault sequences.
  uint64_t seed = 0;

  /// One-shot: the Nth Alloc fails with kResourceExhausted, later ones
  /// succeed (models a temporarily fragmented / oversubscribed device).
  int fail_alloc_index = 0;
  /// Persistent: every Alloc larger than this fails with kResourceExhausted
  /// (0 = disabled). Models a capacity cliff without shrinking the spec.
  size_t fail_alloc_above_bytes = 0;

  /// One-shot: the Nth transfer (host->device and device->host share one
  /// counter) fails with kUnavailable.
  int fail_transfer_index = 0;
  /// Per-transfer probability of a transient kUnavailable failure, decided
  /// by the seeded PRNG (0 = disabled).
  double transient_transfer_prob = 0.0;

  /// One-shot: the Nth kernel launch aborts with kUnavailable before
  /// executing any block.
  int fail_launch_index = 0;

  /// One-shot: the Nth device->host transfer completes "successfully" but
  /// with one seed-chosen bit flipped in the destination buffer.
  int corrupt_readback_index = 0;
};

/// Counters of what the plan saw and did (cumulative since installation).
struct FaultStats {
  int allocs_seen = 0;
  int allocs_failed = 0;
  int transfers_seen = 0;   ///< host->device + device->host
  int readbacks_seen = 0;   ///< device->host only
  int transfers_failed = 0;
  int launches_seen = 0;
  int launches_aborted = 0;
  int corruptions = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultPlanConfig& config);

  const FaultPlanConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// Re-arms all one-shot triggers and zeroes counters and the PRNG state,
  /// as if the plan had just been constructed.
  void Reset();

  // --- Device hooks (called by simt::Device; return non-OK to inject) -------

  /// Consulted by Device::Alloc before the capacity check.
  Status OnAlloc(size_t bytes);
  /// Consulted by CopyToDevice / CopyToHost before the transfer happens.
  /// `readback` marks device->host transfers.
  Status OnTransfer(size_t bytes, bool readback);
  /// Consulted by Device::Launch before any block runs.
  Status OnLaunch(const char* kernel_name);
  /// Applied by CopyToHost after a successful transfer: flips one bit of
  /// `dst` when this readback is the configured corruption target.
  void CorruptReadback(void* dst, size_t bytes);

 private:
  uint64_t NextRand();  // xorshift64*, seeded from config_.seed

  FaultPlanConfig config_;
  FaultStats stats_;
  uint64_t rng_state_ = 0;
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_FAULT_INJECTION_H_
