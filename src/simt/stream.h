// Streams, events and memory arenas: the execution-context primitives the
// batched engine schedules on.
//
// A Stream is an ordered simulated timeline. Work submitted through an
// ExecCtx bound to a stream advances that stream's clock only; independent
// streams therefore overlap in simulated time, with the Device charging
// bandwidth contention when concurrent kernels oversubscribe it (see
// Device::LaunchOnStream). Events carry a ready-timestamp across streams:
// `consumer.Wait(producer.Record())` serializes the consumer behind
// everything the producer has issued so far.
//
// A MemoryArena is a passive accounting scope for pooled allocations: every
// DeviceBuffer carved out of an ExecCtx charges its arena, giving per-query
// live/peak byte counts even though all arenas share the device-wide pool.
#ifndef MPTOPK_SIMT_STREAM_H_
#define MPTOPK_SIMT_STREAM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mptopk::simt {

/// A point on a stream's timeline; produced by Stream::Record and consumed
/// by Stream::Wait on another stream.
struct Event {
  double ready_ms = 0.0;
  int stream_id = 0;
};

/// An ordered simulated timeline. Streams are created and owned by a Device
/// (Device::CreateStream); stream 0 is the device's default stream, used by
/// all legacy single-query entry points.
class Stream {
 public:
  Stream(int id, std::string name) : id_(id), name_(std::move(name)) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Current position of this stream's clock (simulated ms).
  double now_ms() const { return now_ms_; }

  /// Captures the stream's current position as a cross-stream dependency.
  Event Record() const { return Event{now_ms_, id_}; }

  /// Blocks (in simulated time) until `e` is ready: subsequent work on this
  /// stream starts no earlier than the event's timestamp.
  void Wait(const Event& e) { now_ms_ = std::max(now_ms_, e.ready_ms); }

  /// Advances the clock by `ms` (used by the device when committing work).
  void Advance(double ms) { now_ms_ += ms; }

  void Reset() { now_ms_ = 0.0; }

 private:
  int id_ = 0;
  std::string name_;
  double now_ms_ = 0.0;
};

/// Per-scope allocation accounting. Arenas do not own memory — the device's
/// pooled allocator does — they only observe the allocations charged to
/// them, so a batch executor can report each query's live/peak footprint.
struct MemoryArena {
  std::string name;
  size_t live_bytes = 0;
  size_t peak_bytes = 0;
  uint64_t alloc_count = 0;

  explicit MemoryArena(std::string n = "arena") : name(std::move(n)) {}

  void OnAlloc(size_t bytes) {
    live_bytes += bytes;
    peak_bytes = std::max(peak_bytes, live_bytes);
    ++alloc_count;
  }
  void OnFree(size_t bytes) {
    live_bytes -= std::min(live_bytes, bytes);
  }
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_STREAM_H_
