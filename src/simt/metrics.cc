#include "simt/metrics.h"

#include <cmath>
#include <cstdio>

namespace mptopk::simt {

namespace {
uint64_t ScaleU64(uint64_t v, double f) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(v) * f));
}
}  // namespace

void KernelMetrics::Scale(double factor) {
  global_transactions = ScaleU64(global_transactions, factor);
  global_bytes = ScaleU64(global_bytes, factor);
  global_useful_bytes = ScaleU64(global_useful_bytes, factor);
  local_bytes = ScaleU64(local_bytes, factor);
  shared_cycles = ScaleU64(shared_cycles, factor);
  shared_bytes = ScaleU64(shared_bytes, factor);
  shared_useful_bytes = ScaleU64(shared_useful_bytes, factor);
  bank_conflict_cycles = ScaleU64(bank_conflict_cycles, factor);
  shared_atomic_cycles = ScaleU64(shared_atomic_cycles, factor);
  dependent_stall_cycles = ScaleU64(dependent_stall_cycles, factor);
  global_atomics = ScaleU64(global_atomics, factor);
  warp_instructions = ScaleU64(warp_instructions, factor);
  divergent_lane_slots = ScaleU64(divergent_lane_slots, factor);
}

std::string KernelMetrics::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "global: %.2f MB moved (%.2f MB useful, %llu txns), local: %.2f MB, "
      "shared: %llu cycles (%llu conflict replays, %.2f MB useful), "
      "atomics: %llu shared-cycles / %llu global, "
      "warp-insns: %llu (%.1f%% divergent lanes), blocks %llu/%llu traced",
      global_bytes / 1e6, global_useful_bytes / 1e6,
      static_cast<unsigned long long>(global_transactions), local_bytes / 1e6,
      static_cast<unsigned long long>(shared_cycles),
      static_cast<unsigned long long>(bank_conflict_cycles),
      shared_useful_bytes / 1e6,
      static_cast<unsigned long long>(shared_atomic_cycles),
      static_cast<unsigned long long>(global_atomics),
      static_cast<unsigned long long>(warp_instructions),
      warp_instructions == 0
          ? 0.0
          : 100.0 * static_cast<double>(divergent_lane_slots) /
                (static_cast<double>(warp_instructions) * 32.0),
      static_cast<unsigned long long>(blocks_traced),
      static_cast<unsigned long long>(blocks_launched));
  return buf;
}

}  // namespace mptopk::simt
