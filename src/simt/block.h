// Block execution context: shared memory allocation, lane loops, barriers.
//
// Kernels are written block-synchronously: a kernel body is a function
// `void(Block&)` that alternates `Block::ForEachThread(lambda)` regions
// (straight-line SIMT code executed for every thread) with `Block::Sync()`
// barriers. This preserves the CUDA kernel structure — thread ids, warps,
// shared memory, __syncthreads — while executing as plain host loops.
#ifndef MPTOPK_SIMT_BLOCK_H_
#define MPTOPK_SIMT_BLOCK_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <vector>

#include "simt/device_spec.h"
#include "simt/memory.h"
#include "simt/thread.h"
#include "simt/trace.h"

namespace mptopk::simt {

class Block {
 public:
  Block(const DeviceSpec& spec, int grid_dim, int block_dim)
      : spec_(spec), grid_dim_(grid_dim), block_dim_(block_dim) {
    shared_arena_.resize(spec.shared_mem_per_block);
    threads_.resize(block_dim);
    ResetFor(0, nullptr);
  }

  int block_idx() const { return block_idx_; }
  int grid_dim() const { return grid_dim_; }
  int block_dim() const { return block_dim_; }
  const DeviceSpec& spec() const { return spec_; }

  /// Allocates `n` elements of shared memory (16-byte aligned). The total
  /// across a kernel must stay within DeviceSpec::shared_mem_per_block — the
  /// launcher validates this (kernels query shared_bytes_used()).
  /// Contents are NOT zeroed (as on real hardware).
  template <typename T>
  SharedSpan<T> AllocShared(size_t n) {
    size_t offset = (shared_used_ + 15) & ~size_t{15};
    size_t bytes = n * sizeof(T);
    shared_used_ = offset + bytes;
    if (shared_used_ > shared_arena_.size()) {
      // Over-allocation: the launcher reports kResourceExhausted as soon as
      // this block body returns. Serve the span from a stable overflow
      // buffer so the rest of the body stays memory-safe until then.
      overflow_.emplace_back(bytes + 16);
      auto raw = reinterpret_cast<uintptr_t>(overflow_.back().data());
      auto aligned = (raw + 15) & ~uintptr_t{15};
      return SharedSpan<T>(reinterpret_cast<T*>(aligned), offset, n);
    }
    return SharedSpan<T>(reinterpret_cast<T*>(shared_arena_.data() + offset),
                         offset, n);
  }

  size_t shared_bytes_used() const { return shared_used_; }

  /// Runs `fn(Thread&)` for every thread of the block (a SIMT region).
  /// Region boundaries re-align warp sequence counters, like a wavefront
  /// reconverging after divergence.
  template <typename Fn>
  void ForEachThread(Fn&& fn) {
    for (int t = 0; t < block_dim_; ++t) {
      fn(threads_[t]);
    }
    if (tracer_ != nullptr) AlignWarpSequences();
  }

  /// Runs `fn(Thread&)` for the first `count` threads only (used by the
  /// partition-reassignment optimization where half the threads idle).
  template <typename Fn>
  void ForEachThreadBelow(int count, Fn&& fn) {
    count = std::min(count, block_dim_);
    for (int t = 0; t < count; ++t) {
      fn(threads_[t]);
    }
    if (tracer_ != nullptr) AlignWarpSequences();
  }

  /// Block-wide barrier (`__syncthreads`). Execution is already sequential;
  /// this re-aligns warp sequence counters so accesses in different epochs
  /// never coalesce into one warp instruction, and advances the tracer's
  /// barrier epoch (the happens-before boundary simt::RaceChecker uses).
  void Sync() {
    if (tracer_ != nullptr) {
      AlignWarpSequences();
      tracer_->AdvanceEpoch();
    }
  }

  /// Thread-local scratch modeling registers: a per-thread array of `n` T
  /// elements, NOT traced (register file accesses are free in the memory
  /// model). Indexed as scratch[tid * n + j]. Contents persist across
  /// regions within one block execution, and pointers from earlier calls
  /// stay valid (each call owns a stable chunk, reused across blocks).
  template <typename T>
  T* ThreadScratch(size_t n) {
    size_t bytes = block_dim_ * n * sizeof(T);
    if (scratch_idx_ == scratch_chunks_.size()) {
      scratch_chunks_.emplace_back();
    }
    auto& chunk = scratch_chunks_[scratch_idx_++];
    if (chunk.size() < bytes) chunk.resize(bytes);
    return reinterpret_cast<T*>(chunk.data());
  }

  /// Records register-spill traffic for this block (Appendix A model): the
  /// timing model bills these bytes at global-memory bandwidth.
  void RecordLocalTraffic(uint64_t bytes) {
    if (tracer_ != nullptr) tracer_->RecordLocal(bytes);
  }

  // --- Launcher interface ---------------------------------------------------

  /// Re-targets this context at block `block_idx`, tracing into `tracer`
  /// (may be null). Under a parallel launch `order` carries the launch's
  /// block-completion turnstile (null on the sequential path). Resets
  /// shared/scratch arenas and thread state.
  void ResetFor(int block_idx, BlockTracer* tracer,
                LaunchOrder* order = nullptr) {
    block_idx_ = block_idx;
    tracer_ = tracer;
    shared_used_ = 0;
    scratch_idx_ = 0;
    overflow_.clear();
    for (int t = 0; t < block_dim_; ++t) {
      threads_[t].tid = t;
      threads_[t].lane = t % spec_.warp_size;
      threads_[t].warp = t / spec_.warp_size;
      threads_[t].tracer = tracer;
      threads_[t].global_seq = 0;
      threads_[t].shared_seq = 0;
      threads_[t].order = order;
      threads_[t].block_idx = block_idx;
    }
  }

 private:
  void AlignWarpSequences() {
    if (tracer_ == nullptr) return;
    const int ws = spec_.warp_size;
    for (int w = 0; w * ws < block_dim_; ++w) {
      int hi = std::min(block_dim_, (w + 1) * ws);
      uint32_t max_g = 0, max_s = 0;
      for (int t = w * ws; t < hi; ++t) {
        max_g = std::max(max_g, threads_[t].global_seq);
        max_s = std::max(max_s, threads_[t].shared_seq);
      }
      for (int t = w * ws; t < hi; ++t) {
        threads_[t].global_seq = max_g;
        threads_[t].shared_seq = max_s;
      }
    }
  }

  const DeviceSpec& spec_;
  int grid_dim_;
  int block_dim_;
  int block_idx_ = 0;
  BlockTracer* tracer_ = nullptr;

  std::vector<std::byte> shared_arena_;
  /// Backing for spans handed out past the shared-memory limit (the launch
  /// fails, but the block body that over-allocated still runs to the next
  /// check). Inner buffers never move once allocated.
  std::vector<std::vector<std::byte>> overflow_;
  size_t shared_used_ = 0;
  std::vector<std::vector<std::byte>> scratch_chunks_;
  size_t scratch_idx_ = 0;
  std::vector<Thread> threads_;
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_BLOCK_H_
