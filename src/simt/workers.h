// Host-side parallel block execution for the simulator.
//
// Device::LaunchOnStream shards the grid over W persistent host threads
// (`BlockWorkers`), worker w running blocks w, w+W, w+2W, ... in increasing
// order, each with its own Block / BlockTracer context. Simulated time is
// derived purely from traced metrics, so parallel execution must only keep
// the *traces* identical to the sequential loop — which it does:
//
//  * Per-block state (shared memory, scratch, tracer) is per-worker; traced
//    addresses and sequence numbers depend only on the block index.
//  * Plain global reads/writes of the library's kernels touch disjoint
//    per-block regions within a launch (CUDA forbids inter-block ordering
//    assumptions, and every such region is derived from the block index or
//    from a turnstiled atomic reservation, below).
//  * Value-returning global atomics (AtomicAdd/Max/Min/Cas) pass through a
//    `LaunchOrder` turnstile: block b's first such atomic waits until blocks
//    0..b-1 have completed, so every returned value — and therefore every
//    downstream address, trace and metric — is exactly the sequential one.
//  * Void-returning reduction atomics (ReduceAdd/Min/Max) are real relaxed
//    RMWs with no ordering wait; they are restricted to commutative
//    integer updates whose final value is interleaving-independent and
//    only read back after the launch joins (histogram flushes, min/max
//    merges). They trace identically to their value-returning siblings.
//
// Deadlock-freedom of the turnstile under round-robin sharding: each worker
// executes its blocks in increasing order, so when block m is the smallest
// unfinished block its worker is currently running it, and m's waits target
// only blocks < m, which are all done. Induction gives global progress.
#ifndef MPTOPK_SIMT_WORKERS_H_
#define MPTOPK_SIMT_WORKERS_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mptopk::simt {

/// Per-launch turnstile giving value-returning global atomics their
/// sequential block order. `AwaitTurn(b)` blocks until all blocks < b have
/// completed; `MarkDone(b)` is called by the launcher after each block body
/// returns (in increasing order per worker). The common case — a kernel
/// with no value-returning atomics — never touches the slow path.
class LaunchOrder {
 public:
  explicit LaunchOrder(int grid_dim) : done_(grid_dim, 0) {}

  /// Blocks until blocks [0, block_idx) have all completed. The fast path
  /// is one acquire load, which also publishes those blocks' plain writes
  /// to the caller.
  void AwaitTurn(int block_idx) {
    if (watermark_.load(std::memory_order_acquire) >= block_idx) return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return watermark_.load(std::memory_order_relaxed) >= block_idx;
    });
  }

  /// Marks block `block_idx` complete and advances the contiguous-prefix
  /// watermark. Release-publishes the block's writes to future waiters.
  void MarkDone(int block_idx) {
    std::lock_guard<std::mutex> lk(mu_);
    done_[block_idx] = 1;
    int w = watermark_.load(std::memory_order_relaxed);
    while (w < static_cast<int>(done_.size()) && done_[w] != 0) ++w;
    watermark_.store(w, std::memory_order_release);
    cv_.notify_all();
  }

 private:
  /// Number of contiguously completed blocks (== first not-done index).
  std::atomic<int> watermark_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> done_;
};

/// Process-wide persistent pool of host threads that executes one kernel
/// launch's grid at a time. Threads are created lazily up to the largest
/// worker count ever requested and parked on a condition variable between
/// launches; the calling thread participates as worker 0.
class BlockWorkers {
 public:
  static BlockWorkers& Instance();

  /// Runs `fn(worker, block)` for every block in [0, grid_dim): worker w
  /// executes blocks w, w+workers, ... in increasing order (required by
  /// LaunchOrder). Returns after all blocks complete. Launches from
  /// different host threads serialize on an internal mutex.
  void Run(int workers, int grid_dim,
           const std::function<void(int, int)>& fn);

  ~BlockWorkers();

 private:
  BlockWorkers() = default;
  void WorkerMain(int idx);
  void EnsureThreads(int count);  // pool threads, excluding the caller

  std::mutex launch_mu_;  // one launch at a time
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(int, int)>* task_fn_ = nullptr;
  int task_workers_ = 0;
  int task_grid_ = 0;
  int pending_ = 0;
  uint64_t gen_ = 0;
  bool stop_ = false;
};

/// Resolves the default worker count for a new Device when
/// DeviceSpec::host_workers == 0: the SetHostWorkersOverride value if set
/// (bench --workers), else the MPTOPK_WORKERS environment variable, else
/// min(hardware_concurrency, 8). Always >= 1.
int DefaultHostWorkers();

/// Process-wide override consulted by DefaultHostWorkers (0 clears it).
/// Used by the bench binaries' --workers flag so every Device they
/// construct picks it up.
void SetHostWorkersOverride(int workers);

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_WORKERS_H_
