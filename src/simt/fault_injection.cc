#include "simt/fault_injection.h"

namespace mptopk::simt {
namespace {

// SplitMix64 — decorrelates small user seeds before feeding xorshift64*.
uint64_t Mix(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan::FaultPlan(const FaultPlanConfig& config) : config_(config) {
  Reset();
}

void FaultPlan::Reset() {
  stats_ = FaultStats{};
  rng_state_ = Mix(config_.seed);
  if (rng_state_ == 0) rng_state_ = 0x2545F4914F6CDD1Dull;
}

uint64_t FaultPlan::NextRand() {
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

Status FaultPlan::OnAlloc(size_t bytes) {
  ++stats_.allocs_seen;
  if (config_.fail_alloc_index > 0 &&
      stats_.allocs_seen == config_.fail_alloc_index) {
    ++stats_.allocs_failed;
    return Status::ResourceExhausted(
        "injected allocation failure (alloc #" +
        std::to_string(stats_.allocs_seen) + ", " + std::to_string(bytes) +
        " bytes)");
  }
  if (config_.fail_alloc_above_bytes > 0 &&
      bytes > config_.fail_alloc_above_bytes) {
    ++stats_.allocs_failed;
    return Status::ResourceExhausted(
        "injected allocation failure (" + std::to_string(bytes) +
        " bytes exceeds injected limit " +
        std::to_string(config_.fail_alloc_above_bytes) + ")");
  }
  return Status::OK();
}

Status FaultPlan::OnTransfer(size_t bytes, bool readback) {
  ++stats_.transfers_seen;
  if (readback) ++stats_.readbacks_seen;
  if (config_.fail_transfer_index > 0 &&
      stats_.transfers_seen == config_.fail_transfer_index) {
    ++stats_.transfers_failed;
    return Status::Unavailable(
        "injected transient transfer fault (transfer #" +
        std::to_string(stats_.transfers_seen) + ", " + std::to_string(bytes) +
        " bytes)");
  }
  if (config_.transient_transfer_prob > 0.0) {
    // 53-bit uniform in [0, 1); deterministic given seed and op order.
    double u = static_cast<double>(NextRand() >> 11) * 0x1.0p-53;
    if (u < config_.transient_transfer_prob) {
      ++stats_.transfers_failed;
      return Status::Unavailable(
          "injected transient transfer fault (transfer #" +
          std::to_string(stats_.transfers_seen) + ", p=" +
          std::to_string(config_.transient_transfer_prob) + ")");
    }
  }
  return Status::OK();
}

Status FaultPlan::OnLaunch(const char* kernel_name) {
  ++stats_.launches_seen;
  if (config_.fail_launch_index > 0 &&
      stats_.launches_seen == config_.fail_launch_index) {
    ++stats_.launches_aborted;
    return Status::Unavailable(
        "injected kernel launch abort (launch #" +
        std::to_string(stats_.launches_seen) + ", kernel '" +
        std::string(kernel_name) + "')");
  }
  return Status::OK();
}

void FaultPlan::CorruptReadback(void* dst, size_t bytes) {
  if (config_.corrupt_readback_index <= 0 || bytes == 0) return;
  if (stats_.readbacks_seen != config_.corrupt_readback_index) return;
  ++stats_.corruptions;
  const uint64_t bit = NextRand() % (bytes * 8);
  static_cast<unsigned char*>(dst)[bit / 8] ^=
      static_cast<unsigned char>(1u << (bit % 8));
}

}  // namespace mptopk::simt
