// Converts traced kernel metrics into simulated execution time.
//
// The model follows the paper's Section 7 structure: a kernel's time is the
// maximum of its global-memory time and its shared-memory time (the GPU
// hides the cheaper one behind the more expensive one), plus a fixed launch
// overhead. On top of that it models two first-order effects the paper
// discusses qualitatively:
//
//  * Occupancy (Section 4.1): resident blocks per SM are limited by shared
//    memory, registers and thread slots. Below `warps_to_saturate_bw`
//    resident warps per SM, effective memory bandwidth degrades linearly —
//    this is what makes the per-thread heap approach fall off a cliff as k
//    grows.
//  * Grid underutilization: a grid smaller than the SM count leaves SMs idle
//    and scales achievable shared-memory bandwidth accordingly.
#ifndef MPTOPK_SIMT_TIMING_MODEL_H_
#define MPTOPK_SIMT_TIMING_MODEL_H_

#include "simt/device_spec.h"
#include "simt/metrics.h"

namespace mptopk::simt {

/// Static resource footprint of one kernel launch.
struct KernelResources {
  int grid_dim = 1;
  int block_dim = 1;
  int regs_per_thread = 32;
  size_t shared_bytes_per_block = 0;
};

/// Occupancy derived from a kernel's resource usage.
struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  /// Effective global-memory bandwidth fraction in [0, 1].
  double bw_efficiency = 0.0;
  /// Effective shared-memory bandwidth fraction in [0, 1] (saturates with
  /// fewer warps than global).
  double shared_efficiency = 0.0;
  /// Fraction of SMs with at least one resident block in [0, 1].
  double sm_utilization = 0.0;
  /// Warps actually resident per busy SM given the grid size.
  double resident_warps = 0.0;
};

Occupancy ComputeOccupancy(const DeviceSpec& spec, const KernelResources& res);

/// Simulated kernel time in milliseconds.
struct KernelTime {
  double global_ms = 0.0;
  double shared_ms = 0.0;
  double atomic_ms = 0.0;
  /// Exposed latency of dependent access chains (adds to, rather than
  /// overlapping with, the bandwidth terms).
  double dependent_ms = 0.0;
  double overhead_ms = 0.0;
  double total_ms = 0.0;
  Occupancy occupancy;
};

KernelTime EstimateKernelTime(const DeviceSpec& spec,
                              const KernelResources& res,
                              const KernelMetrics& metrics);

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_TIMING_MODEL_H_
