// Converts traced kernel metrics into simulated execution time.
//
// The model follows the paper's Section 7 structure: a kernel's time is the
// maximum of its global-memory time and its shared-memory time (the GPU
// hides the cheaper one behind the more expensive one), plus a fixed launch
// overhead. On top of that it models two first-order effects the paper
// discusses qualitatively:
//
//  * Occupancy (Section 4.1): resident blocks per SM are limited by shared
//    memory, registers and thread slots. Below `warps_to_saturate_bw`
//    resident warps per SM, effective memory bandwidth degrades linearly —
//    this is what makes the per-thread heap approach fall off a cliff as k
//    grows.
//  * Grid underutilization: a grid smaller than the SM count leaves SMs idle
//    and scales achievable shared-memory bandwidth accordingly.
//
// Concurrent streams (PR 2): kernels on different streams may overlap in
// simulated time. Each committed kernel occupies a StreamInterval with a
// device share (its SM utilization); a new kernel overlapping foreign
// intervals whose summed share exceeds the device is slowed by the
// oversubscription factor (ConcurrencyFactor / ApplyConcurrency). Low-share
// kernels overlap for free; two full-device kernels take as long together
// as they would back-to-back — the model conserves total work.
#ifndef MPTOPK_SIMT_TIMING_MODEL_H_
#define MPTOPK_SIMT_TIMING_MODEL_H_

#include <vector>

#include "simt/device_spec.h"
#include "simt/metrics.h"

namespace mptopk::simt {

/// Static resource footprint of one kernel launch.
struct KernelResources {
  int grid_dim = 1;
  int block_dim = 1;
  int regs_per_thread = 32;
  size_t shared_bytes_per_block = 0;
};

/// Occupancy derived from a kernel's resource usage.
struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  /// Effective global-memory bandwidth fraction in [0, 1].
  double bw_efficiency = 0.0;
  /// Effective shared-memory bandwidth fraction in [0, 1] (saturates with
  /// fewer warps than global).
  double shared_efficiency = 0.0;
  /// Fraction of SMs with at least one resident block in [0, 1].
  double sm_utilization = 0.0;
  /// Warps actually resident per busy SM given the grid size.
  double resident_warps = 0.0;
};

Occupancy ComputeOccupancy(const DeviceSpec& spec, const KernelResources& res);

/// Simulated kernel time in milliseconds.
struct KernelTime {
  double global_ms = 0.0;
  double shared_ms = 0.0;
  double atomic_ms = 0.0;
  /// Exposed latency of dependent access chains (adds to, rather than
  /// overlapping with, the bandwidth terms).
  double dependent_ms = 0.0;
  double overhead_ms = 0.0;
  double total_ms = 0.0;
  Occupancy occupancy;
};

KernelTime EstimateKernelTime(const DeviceSpec& spec,
                              const KernelResources& res,
                              const KernelMetrics& metrics);

/// A committed span of device occupancy on one stream's timeline.
struct StreamInterval {
  int stream_id = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  /// Fraction of the device this work occupies (its kernel's
  /// sm_utilization); transfers and delays commit with share 0.
  double device_share = 0.0;
};

/// Slowdown for a kernel of share `own_share` running on `stream_id` over
/// [start_ms, start_ms + duration_ms), given previously committed intervals.
/// Returns max(1, own_share + overlap-weighted foreign share): 1.0 while the
/// device is undersubscribed, the oversubscription ratio otherwise.
double ConcurrencyFactor(const std::vector<StreamInterval>& committed,
                         int stream_id, double start_ms, double duration_ms,
                         double own_share);

/// Stretches the bandwidth-bound portion of `t` by `factor`, leaving launch
/// overhead and dependent-chain latency unscaled (they are not bandwidth).
KernelTime ApplyConcurrency(const KernelTime& t, double factor);

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_TIMING_MODEL_H_
