#include "simt/racecheck.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mptopk::simt {
namespace {

// Flattened access with its owning thread, the unit the sweep sorts.
struct Rec {
  uint64_t addr;
  uint32_t epoch;
  uint32_t seq;
  uint32_t size;
  int tid;
  bool write;
  bool atomic;
};

bool Conflicts(const Rec& x, const Rec& y, int warp_size) {
  if (x.tid == y.tid) return false;
  if (!x.write && !y.write) return false;
  if (x.atomic && y.atomic) return false;
  // Lockstep exemption: lanes of one warp at the same sequence number are
  // one SIMT instruction; hardware executes it as a unit.
  if (x.tid / warp_size == y.tid / warp_size && x.seq == y.seq) return false;
  return true;
}

RaceHazard::Party MakeParty(const Rec& r, int warp_size) {
  RaceHazard::Party p;
  p.tid = r.tid;
  p.lane = r.tid % warp_size;
  p.warp = r.tid / warp_size;
  p.seq = r.seq;
  p.write = r.write;
  p.atomic = r.atomic;
  p.addr = r.addr;
  p.size = r.size;
  return p;
}

void MaybeHazard(const Rec& x, const Rec& y, int warp_size,
                 RaceHazard::Space space, const std::string& kernel,
                 int block_idx, RaceReport* report) {
  if (!Conflicts(x, y, warp_size)) return;
  ++report->hazard_count;
  if (report->hazards.size() >= RaceReport::kMaxRecordedHazards) return;
  RaceHazard h;
  h.kernel = kernel;
  h.space = space;
  h.block_idx = block_idx;
  h.epoch = x.epoch;
  h.a = MakeParty(x, warp_size);
  h.b = MakeParty(y, warp_size);
  h.addr = std::max(x.addr, y.addr);
  h.bytes = static_cast<uint32_t>(
      std::min(x.addr + x.size, y.addr + y.size) - h.addr);
  report->hazards.push_back(std::move(h));
}

// Checks one address space of one block. The sweep sorts all accesses by
// (epoch, addr) and walks runs of identical (epoch, addr); `active` carries
// earlier records of the epoch whose byte range still reaches the current
// run (only possible with mixed access sizes, so it is almost always empty).
// Runs without a write are skipped wholesale — that keeps the broadcast
// patterns (every thread reading one shared word) linear instead of
// quadratic.
void CheckSpace(const std::vector<std::vector<BlockTracer::Access>>& per_tid,
                int block_dim, int warp_size, RaceHazard::Space space,
                const std::string& kernel, int block_idx, RaceReport* report) {
  size_t total = 0;
  for (int t = 0; t < block_dim; ++t) total += per_tid[t].size();
  if (total < 2) return;

  std::vector<Rec> recs;
  recs.reserve(total);
  for (int t = 0; t < block_dim; ++t) {
    for (const BlockTracer::Access& a : per_tid[t]) {
      recs.push_back(Rec{a.addr, a.epoch, a.seq, a.size, t, a.write, a.atomic});
    }
  }
  std::sort(recs.begin(), recs.end(), [](const Rec& x, const Rec& y) {
    if (x.epoch != y.epoch) return x.epoch < y.epoch;
    if (x.addr != y.addr) return x.addr < y.addr;
    if (x.tid != y.tid) return x.tid < y.tid;
    return x.seq < y.seq;
  });

  std::vector<Rec> active;
  uint32_t cur_epoch = recs[0].epoch + 1;  // forces a clear on entry
  size_t i = 0;
  while (i < recs.size()) {
    if (recs[i].epoch != cur_epoch) {
      active.clear();
      cur_epoch = recs[i].epoch;
    }
    const uint64_t addr = recs[i].addr;
    size_t j = i;
    bool any_write = false;
    while (j < recs.size() && recs[j].epoch == cur_epoch &&
           recs[j].addr == addr) {
      any_write |= recs[j].write;
      ++j;
    }

    active.erase(std::remove_if(active.begin(), active.end(),
                                [addr](const Rec& r) {
                                  return r.addr + r.size <= addr;
                                }),
                 active.end());
    for (const Rec& a : active) {
      for (size_t k = i; k < j; ++k) {
        MaybeHazard(a, recs[k], warp_size, space, kernel, block_idx, report);
      }
    }
    if (any_write) {
      for (size_t p = i; p < j; ++p) {
        for (size_t q = p + 1; q < j; ++q) {
          if (!recs[p].write && !recs[q].write) continue;
          MaybeHazard(recs[p], recs[q], warp_size, space, kernel, block_idx,
                      report);
        }
      }
    }
    for (size_t k = i; k < j; ++k) active.push_back(recs[k]);
    i = j;
  }
}

}  // namespace

void RaceChecker::CheckBlock(const BlockTracer& tracer, const DeviceSpec& spec,
                             const std::string& kernel, int block_idx,
                             RaceReport* report) {
  CheckSpace(tracer.shared_accesses(), tracer.block_dim(), spec.warp_size,
             RaceHazard::Space::kShared, kernel, block_idx, report);
  CheckSpace(tracer.global_accesses(), tracer.block_dim(), spec.warp_size,
             RaceHazard::Space::kGlobal, kernel, block_idx, report);
  ++report->blocks_checked;
}

std::string RaceHazard::ToString() const {
  auto kind = [](const Party& p) {
    return p.atomic ? "atomic" : (p.write ? "write" : "read");
  };
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s%s %s hazard in %s block=%d epoch=%u bytes=[%llu,%llu): "
                "tid %d (w%d:l%d seq %u) %s vs tid %d (w%d:l%d seq %u) %s",
                a.write ? "W" : "R", b.write ? "W" : "R",
                space == Space::kShared ? "shared" : "global", kernel.c_str(),
                block_idx, epoch, static_cast<unsigned long long>(addr),
                static_cast<unsigned long long>(addr + bytes), a.tid, a.warp,
                a.lane, a.seq, kind(a), b.tid, b.warp, b.lane, b.seq, kind(b));
  return buf;
}

void RaceReport::Merge(const RaceReport& o) {
  hazard_count += o.hazard_count;
  blocks_checked += o.blocks_checked;
  for (const RaceHazard& h : o.hazards) {
    if (hazards.size() >= kMaxRecordedHazards) break;
    hazards.push_back(h);
  }
}

std::string RaceReport::Summary() const {
  char head[96];
  if (clean()) {
    std::snprintf(head, sizeof(head), "racecheck: clean (%llu blocks)",
                  static_cast<unsigned long long>(blocks_checked));
    return head;
  }
  std::snprintf(head, sizeof(head),
                "racecheck: %llu hazards across %llu blocks",
                static_cast<unsigned long long>(hazard_count),
                static_cast<unsigned long long>(blocks_checked));
  std::string s = head;
  const size_t show = std::min<size_t>(hazards.size(), 3);
  for (size_t i = 0; i < show; ++i) {
    s += "; ";
    s += hazards[i].ToString();
  }
  return s;
}

bool RacecheckEnvEnabled() {
  const char* v = std::getenv("MPTOPK_RACECHECK");
  if (v == nullptr || v[0] == '\0') return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "off") != 0;
}

}  // namespace mptopk::simt
