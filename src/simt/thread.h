// Per-thread execution context handed to kernel lane loops.
#ifndef MPTOPK_SIMT_THREAD_H_
#define MPTOPK_SIMT_THREAD_H_

#include <cstdint>

namespace mptopk::simt {

class BlockTracer;
class LaunchOrder;

/// Identity and tracing state of one simulated GPU thread. Kernels receive a
/// `Thread&` inside `Block::ForEachThread` and pass it to every traced memory
/// access so the tracer can attribute the access to the right warp lane and
/// SIMT instruction slot.
struct Thread {
  int tid = 0;   ///< Thread index within the block [0, block_dim).
  int lane = 0;  ///< Lane within the warp [0, 32).
  int warp = 0;  ///< Warp index within the block.

  // Tracing state (null when this block is not being traced).
  BlockTracer* tracer = nullptr;
  uint32_t global_seq = 0;
  uint32_t shared_seq = 0;

  // Parallel-launch state (null on the sequential workers=1 path). Set, the
  // global spans execute atomics as real RMWs, and value-returning ones
  // turnstile on `order` for sequential-equivalent results (simt/workers.h).
  LaunchOrder* order = nullptr;
  int block_idx = 0;  ///< Block this thread currently belongs to.
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_THREAD_H_
