// Device memory abstractions: owning global-memory buffers, traced global
// spans, and traced shared-memory spans.
//
// All kernel-visible loads and stores flow through GlobalSpan / SharedSpan
// with an explicit `Thread&` so the tracer can attribute them to warp lanes.
// Host-side code uses DeviceBuffer::host_data() directly (modeling
// cudaMemcpy-style staging; see Device::CopyToDevice / CopyToHost for the
// PCIe-accounted variants).
#ifndef MPTOPK_SIMT_MEMORY_H_
#define MPTOPK_SIMT_MEMORY_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "simt/thread.h"
#include "simt/trace.h"
#include "simt/workers.h"

namespace mptopk::simt {

class Device;
struct MemoryArena;

/// An owning allocation in simulated device global memory. Movable,
/// non-copyable; returns its block to the device pool (and credits its
/// accounting arena) on destruction.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* device, uint64_t device_addr, size_t n,
               MemoryArena* arena = nullptr);
  ~DeviceBuffer();

  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  uint64_t device_addr() const { return device_addr_; }

  /// Host-visible backing store (simulator-internal; use for staging data in
  /// tests and for result readback).
  T* host_data() { return storage_.data(); }
  const T* host_data() const { return storage_.data(); }

 private:
  Device* device_ = nullptr;
  uint64_t device_addr_ = 0;
  MemoryArena* arena_ = nullptr;
  std::vector<T> storage_;
};

/// A non-owning, traced view of device global memory handed to kernels.
template <typename T>
class GlobalSpan {
 public:
  GlobalSpan() = default;
  explicit GlobalSpan(DeviceBuffer<T>& buf)
      : data_(buf.host_data()), device_addr_(buf.device_addr()),
        size_(buf.size()) {}
  GlobalSpan(T* data, uint64_t device_addr, size_t size)
      : data_(data), device_addr_(device_addr), size_(size) {}

  size_t size() const { return size_; }

  /// Sub-view [offset, offset+count).
  GlobalSpan<T> subspan(size_t offset, size_t count) const {
    assert(offset + count <= size_);
    return GlobalSpan<T>(data_ + offset, device_addr_ + offset * sizeof(T),
                         count);
  }

  T Read(Thread& t, size_t i) const {
    assert(i < size_);
    if (t.tracer != nullptr) {
      t.tracer->RecordGlobal(t.tid, t.global_seq++,
                             device_addr_ + i * sizeof(T), sizeof(T), false);
    }
    return data_[i];
  }

  void Write(Thread& t, size_t i, const T& v) const {
    assert(i < size_);
    if (t.tracer != nullptr) {
      t.tracer->RecordGlobal(t.tid, t.global_seq++,
                             device_addr_ + i * sizeof(T), sizeof(T), true);
    }
    data_[i] = v;
  }

  /// Atomic read-modify-write add, returning the old value (CUDA atomicAdd,
  /// PTX `atom`). Under a parallel launch the return value is made
  /// sequential-equivalent by the LaunchOrder turnstile: block b's call
  /// waits until blocks 0..b-1 completed, so reserved offsets — and every
  /// address/trace derived from them — match the workers=1 run exactly.
  /// When the return value is not needed, use ReduceAdd, which stays fully
  /// concurrent.
  T AtomicAdd(Thread& t, size_t i, T v) const {
    assert(i < size_);
    Record(t, i);
    if (t.order != nullptr) {
      t.order->AwaitTurn(t.block_idx);
      return std::atomic_ref<T>(data_[i]).fetch_add(
          v, std::memory_order_relaxed);
    }
    T old = data_[i];
    data_[i] = old + v;
    return old;
  }

  T AtomicMax(Thread& t, size_t i, T v) const {
    assert(i < size_);
    Record(t, i);
    if (t.order != nullptr) {
      t.order->AwaitTurn(t.block_idx);
      std::atomic_ref<T> a(data_[i]);
      T old = a.load(std::memory_order_relaxed);
      while (v > old &&
             !a.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
      }
      return old;
    }
    T old = data_[i];
    if (v > old) data_[i] = v;
    return old;
  }

  /// Atomic compare-and-swap; returns the old value (equal to `expected` on
  /// success). Turnstiled under a parallel launch like AtomicAdd.
  T AtomicCas(Thread& t, size_t i, T expected, T desired) const {
    assert(i < size_);
    Record(t, i);
    if (t.order != nullptr) {
      t.order->AwaitTurn(t.block_idx);
      T old = expected;
      std::atomic_ref<T>(data_[i]).compare_exchange_strong(
          old, desired, std::memory_order_relaxed);
      return old;
    }
    T old = data_[i];
    if (old == expected) data_[i] = desired;
    return old;
  }

  T AtomicMin(Thread& t, size_t i, T v) const {
    assert(i < size_);
    Record(t, i);
    if (t.order != nullptr) {
      t.order->AwaitTurn(t.block_idx);
      std::atomic_ref<T> a(data_[i]);
      T old = a.load(std::memory_order_relaxed);
      while (v < old &&
             !a.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
      }
      return old;
    }
    T old = data_[i];
    if (v < old) data_[i] = v;
    return old;
  }

  /// Atomic add whose result is discarded (CUDA atomicAdd with unused
  /// return, PTX `red`). No cross-block ordering: concurrent blocks update
  /// freely and the final value is interleaving-independent, so the
  /// location must only be read back after the launch completes (histogram
  /// flushes, global counters). Integral T only — float addition would be
  /// order-dependent. Traced identically to AtomicAdd (same access record,
  /// hence bit-identical metrics).
  void ReduceAdd(Thread& t, size_t i, T v) const {
    static_assert(std::is_integral_v<T>,
                  "ReduceAdd requires a commutative-exact (integral) type");
    assert(i < size_);
    Record(t, i);
    if (t.order != nullptr) {
      std::atomic_ref<T>(data_[i]).fetch_add(v, std::memory_order_relaxed);
      return;
    }
    data_[i] += v;
  }

  /// Atomic max whose result is discarded; see ReduceAdd.
  void ReduceMax(Thread& t, size_t i, T v) const {
    assert(i < size_);
    Record(t, i);
    if (t.order != nullptr) {
      std::atomic_ref<T> a(data_[i]);
      T old = a.load(std::memory_order_relaxed);
      while (v > old &&
             !a.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
      }
      return;
    }
    if (v > data_[i]) data_[i] = v;
  }

  /// Atomic min whose result is discarded; see ReduceAdd.
  void ReduceMin(Thread& t, size_t i, T v) const {
    assert(i < size_);
    Record(t, i);
    if (t.order != nullptr) {
      std::atomic_ref<T> a(data_[i]);
      T old = a.load(std::memory_order_relaxed);
      while (v < old &&
             !a.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
      }
      return;
    }
    if (v < data_[i]) data_[i] = v;
  }

 private:
  /// The one trace record all six atomics share (write + atomic), so a
  /// Reduce* migration cannot change metrics.
  void Record(Thread& t, size_t i) const {
    if (t.tracer != nullptr) {
      t.tracer->RecordGlobal(t.tid, t.global_seq++,
                             device_addr_ + i * sizeof(T), sizeof(T), true,
                             /*atomic=*/true);
    }
  }

  T* data_ = nullptr;
  uint64_t device_addr_ = 0;
  size_t size_ = 0;
};

/// A traced view of a block's shared memory allocation. Obtained from
/// Block::AllocShared<T>(n); addresses are offsets within the block's shared
/// arena, which is how the bank analyzer maps words to banks.
template <typename T>
class SharedSpan {
 public:
  SharedSpan() = default;
  SharedSpan(T* data, uint64_t base_offset, size_t size)
      : data_(data), base_offset_(base_offset), size_(size) {}

  size_t size() const { return size_; }
  /// Offset of element 0 within the block's shared arena — what the bank
  /// analyzer maps to banks. Stays the pre-overflow bump-pointer offset even
  /// when the allocation was served from the overflow buffer.
  uint64_t base_offset() const { return base_offset_; }
  /// Untraced backing pointer — host-side inspection only (tests, dumps).
  /// In-kernel accesses must go through Read/Write so they are traced.
  T* data() const { return data_; }

  T Read(Thread& t, size_t i) const {
    assert(i < size_);
    if (t.tracer != nullptr) {
      t.tracer->RecordShared(t.tid, t.shared_seq++,
                             base_offset_ + i * sizeof(T), sizeof(T),
                             /*write=*/false, /*atomic=*/false);
    }
    return data_[i];
  }

  void Write(Thread& t, size_t i, const T& v) const {
    assert(i < size_);
    if (t.tracer != nullptr) {
      t.tracer->RecordShared(t.tid, t.shared_seq++,
                             base_offset_ + i * sizeof(T), sizeof(T),
                             /*write=*/true, /*atomic=*/false);
    }
    data_[i] = v;
  }

  T AtomicAdd(Thread& t, size_t i, T v) const {
    assert(i < size_);
    if (t.tracer != nullptr) {
      t.tracer->RecordShared(t.tid, t.shared_seq++,
                             base_offset_ + i * sizeof(T), sizeof(T),
                             /*write=*/true, /*atomic=*/true);
    }
    T old = data_[i];
    data_[i] = old + v;
    return old;
  }

 private:
  T* data_ = nullptr;
  uint64_t base_offset_ = 0;
  size_t size_ = 0;
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_MEMORY_H_
