#include "simt/workers.h"

#include <algorithm>
#include <cstdlib>

namespace mptopk::simt {
namespace {

// Sanity bound on pool size; worker counts above the grid size are clamped
// by the launcher anyway.
constexpr int kMaxWorkers = 256;

std::atomic<int> g_host_workers_override{0};

}  // namespace

BlockWorkers& BlockWorkers::Instance() {
  static BlockWorkers pool;
  return pool;
}

BlockWorkers::~BlockWorkers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void BlockWorkers::EnsureThreads(int count) {
  count = std::min(count, kMaxWorkers);
  while (static_cast<int>(threads_.size()) < count) {
    int idx = static_cast<int>(threads_.size());
    threads_.emplace_back([this, idx] { WorkerMain(idx); });
  }
}

void BlockWorkers::Run(int workers, int grid_dim,
                       const std::function<void(int, int)>& fn) {
  std::lock_guard<std::mutex> launch_lk(launch_mu_);
  workers = std::min(workers, grid_dim);
  if (workers <= 1) {
    for (int b = 0; b < grid_dim; ++b) fn(0, b);
    return;
  }
  EnsureThreads(workers - 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_fn_ = &fn;
    task_workers_ = workers;
    task_grid_ = grid_dim;
    pending_ = workers - 1;
    ++gen_;
  }
  cv_work_.notify_all();
  // The caller is worker 0.
  for (int b = 0; b < grid_dim; b += workers) fn(0, b);
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  task_fn_ = nullptr;
}

void BlockWorkers::WorkerMain(int idx) {
  const int w = idx + 1;  // pool thread idx serves worker id idx+1
  uint64_t seen_gen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_work_.wait(lk, [&] {
      return stop_ || (gen_ != seen_gen && w < task_workers_);
    });
    if (stop_) return;
    seen_gen = gen_;
    const std::function<void(int, int)>* fn = task_fn_;
    const int workers = task_workers_;
    const int grid = task_grid_;
    lk.unlock();
    for (int b = w; b < grid; b += workers) (*fn)(w, b);
    lk.lock();
    if (--pending_ == 0) cv_done_.notify_all();
  }
}

int DefaultHostWorkers() {
  int v = g_host_workers_override.load(std::memory_order_relaxed);
  if (v > 0) return std::min(v, kMaxWorkers);
  if (const char* env = std::getenv("MPTOPK_WORKERS")) {
    int e = std::atoi(env);
    if (e >= 1) return std::min(e, kMaxWorkers);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(std::min(hw, 8u));
}

void SetHostWorkersOverride(int workers) {
  g_host_workers_override.store(workers < 0 ? 0 : workers,
                                std::memory_order_relaxed);
}

}  // namespace mptopk::simt
