// Barrier-epoch race detection over the trace path (cuda-memcheck
// --tool racecheck, for the simulator).
//
// The sequential `ForEachThread` loops make every kernel produce the right
// answer regardless of barriers, so a missing `Block::Sync()` — a data race
// on real hardware — is invisible to the correctness tests. The checker
// closes that gap: `Block::Sync()` advances a barrier-epoch counter in the
// tracer, every traced access carries its epoch, and two accesses to
// overlapping bytes form a hazard when
//
//   * they happen in the same epoch (no barrier orders them),
//   * they come from different threads,
//   * at least one is a write,
//   * they are not both atomic (atomics serialize in hardware), and
//   * they are not the same warp instruction (same warp, same sequence
//     number: lanes of one warp executing one SIMT instruction in lockstep,
//     e.g. the classic `x[i] = x[i+1]`-style shuffle within a warp —
//     exempt exactly as racecheck's lockstep filter).
//
// Shared memory is always checked; global memory is checked per block
// (cross-block global ordering is out of scope, as on the real tool).
// Only traced blocks are checked — under trace sampling
// (Device::set_trace_sample_target) the untraced blocks are invisible,
// which is sound for this library's block-homogeneous kernels.
//
// Enabled per device (DeviceSpec::racecheck, Device::set_racecheck, or the
// MPTOPK_RACECHECK environment variable); when off, the only residue is the
// epoch stamp on traced accesses, which costs nothing when tracing is off
// and never feeds the timing model — simulated timings are bit-identical
// either way. See docs/racecheck.md.
#ifndef MPTOPK_SIMT_RACECHECK_H_
#define MPTOPK_SIMT_RACECHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simt/device_spec.h"
#include "simt/trace.h"

namespace mptopk::simt {

/// One conflicting access pair. `a` is the sorted-first access (lower
/// address, then earlier thread).
struct RaceHazard {
  enum class Space { kShared, kGlobal };

  struct Party {
    int tid = 0;
    int lane = 0;
    int warp = 0;
    uint32_t seq = 0;
    bool write = false;
    bool atomic = false;
    uint64_t addr = 0;
    uint32_t size = 0;
  };

  std::string kernel;
  Space space = Space::kShared;
  int block_idx = 0;
  uint32_t epoch = 0;
  Party a;
  Party b;
  /// The overlapping byte range [addr, addr + bytes).
  uint64_t addr = 0;
  uint32_t bytes = 0;

  /// e.g. "WW shared kernel=foo block=0 epoch=1 bytes=[64,68) tid 3 (w1:l3)
  /// wrote x tid 4 (w1:l4) wrote"
  std::string ToString() const;
};

/// Aggregated result of checking one or more launches.
struct RaceReport {
  /// Total conflicting pairs found (keeps counting past the record cap).
  uint64_t hazard_count = 0;
  uint64_t blocks_checked = 0;
  /// First kMaxRecordedHazards hazards, in detection order.
  std::vector<RaceHazard> hazards;

  static constexpr size_t kMaxRecordedHazards = 64;

  bool clean() const { return hazard_count == 0; }
  void Merge(const RaceReport& o);
  /// One line: "racecheck: N hazards across B blocks" plus up to three
  /// example hazards; "racecheck: clean (B blocks)" when none.
  std::string Summary() const;
};

/// Stateless analysis: checks one traced block's recorded accesses and
/// accumulates hazards into *report.
class RaceChecker {
 public:
  static void CheckBlock(const BlockTracer& tracer, const DeviceSpec& spec,
                         const std::string& kernel, int block_idx,
                         RaceReport* report);
};

/// True when the MPTOPK_RACECHECK environment variable enables checking
/// (set and not one of "0", "false", "off").
bool RacecheckEnvEnabled();

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_RACECHECK_H_
