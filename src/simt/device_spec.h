// Hardware description of the simulated massively parallel device.
//
// The defaults describe the Nvidia GTX Titan X (Maxwell) used throughout the
// paper's evaluation: 24 SMs, 32-wide warps, 32 shared-memory banks, 96 KiB
// shared memory per SM (48 KiB per block), 251 GB/s global and 2.9 TB/s
// shared-memory bandwidth (the paper's measured figures, Section 7).
#ifndef MPTOPK_SIMT_DEVICE_SPEC_H_
#define MPTOPK_SIMT_DEVICE_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace mptopk::simt {

struct DeviceSpec {
  std::string name = "Simulated GTX Titan X (Maxwell)";

  // --- Execution resources -------------------------------------------------
  int num_sms = 24;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  /// 32-bit registers per SM; a kernel's regs/thread and block size bound the
  /// number of resident blocks.
  int register_file_per_sm = 64 * 1024;
  /// Registers a single thread can use before the compiler spills to local
  /// memory (Maxwell: 255; practical budget before occupancy loss is lower —
  /// the timing model uses this for the Appendix A register-top-k variant).
  int max_registers_per_thread = 255;

  // --- Memory system -------------------------------------------------------
  size_t global_mem_bytes = 12ull * 1024 * 1024 * 1024;
  size_t shared_mem_per_block = 48 * 1024;
  size_t shared_mem_per_sm = 96 * 1024;
  int shared_mem_banks = 32;
  int bank_width_bytes = 4;
  /// Global memory transaction (sector) granularity in bytes.
  int sector_bytes = 32;

  // --- Bandwidths / overheads (paper Section 7 figures) --------------------
  double global_bw_gbps = 251.0;        // GB/s
  double shared_bw_gbps = 2900.0;       // GB/s aggregate across SMs
  double pcie_bw_gbps = 12.0;           // host <-> device staging
  double kernel_launch_overhead_us = 5.0;
  double clock_ghz = 1.1;
  /// Latency of one dependent shared-memory access (e.g. a heap sift level,
  /// where the next address depends on the loaded value). Kernels report
  /// such chains explicitly; the timing model exposes the latency divided
  /// by the resident warps that can hide it.
  int dependent_access_latency_cycles = 30;
  /// Resident warps per SM needed to saturate the global memory pipeline;
  /// below this, effective bandwidth degrades linearly (occupancy model).
  int warps_to_saturate_bw = 16;
  /// Shared memory has ~10x lower latency than global; a few resident warps
  /// already keep its pipeline busy.
  int warps_to_saturate_shared = 4;
  /// Cost multiplier of one atomic shared-memory cycle relative to a plain
  /// shared access cycle (read-modify-write turnaround).
  double shared_atomic_cost_factor = 2.0;
  /// Cost of one global atomic in nanoseconds (L2 round trip).
  double global_atomic_ns = 2.0;

  // --- Host execution ------------------------------------------------------
  /// Host worker threads per kernel launch (simulator performance only;
  /// simulated metrics and timings are bit-identical for every value — see
  /// docs/simulator.md). 0 = auto: the MPTOPK_WORKERS environment variable
  /// (or the bench --workers override) when set, else
  /// min(hardware_concurrency, 8). 1 = the legacy sequential loop.
  int host_workers = 0;

  // --- Debug tooling -------------------------------------------------------
  /// Launch every kernel under the barrier-epoch race checker
  /// (simt/racecheck.h). Also enabled at runtime by Device::set_racecheck or
  /// the MPTOPK_RACECHECK environment variable. Purely diagnostic: simulated
  /// timings are identical either way.
  bool racecheck = false;

  /// The configuration used throughout the paper's evaluation.
  static DeviceSpec TitanXMaxwell() { return DeviceSpec{}; }

  /// A Pascal-generation datacenter part (P100-class): more SMs, HBM2
  /// global bandwidth, larger shared memory per SM. Used to demonstrate the
  /// paper's Section 7 motivation — predicting algorithm choice on hardware
  /// other than the one measured.
  static DeviceSpec TeslaP100() {
    DeviceSpec spec;
    spec.name = "Simulated Tesla P100 (Pascal)";
    spec.num_sms = 56;
    spec.global_mem_bytes = 16ull * 1024 * 1024 * 1024;
    spec.shared_mem_per_sm = 64 * 1024;
    spec.global_bw_gbps = 732.0;   // HBM2
    spec.shared_bw_gbps = 9500.0;  // scales with SM count and clock
    spec.clock_ghz = 1.3;
    return spec;
  }

  int max_warps_per_sm() const { return max_threads_per_sm / warp_size; }
};

}  // namespace mptopk::simt

#endif  // MPTOPK_SIMT_DEVICE_SPEC_H_
