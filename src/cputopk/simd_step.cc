#include "cputopk/simd_step.h"

#include <utility>

#if defined(__SSE2__) || defined(__x86_64__)
#include <emmintrin.h>
#define MPTOPK_HAVE_SSE2 1
#endif

namespace mptopk::cpu {
namespace {

void StepFloatScalar(float* v, size_t m, uint32_t dir, uint32_t inc) {
  for (size_t p = 0; p < m / 2; ++p) {
    size_t low = p & (inc - 1);
    size_t i = (p << 1) - low;
    bool ascending = (i & dir) == 0;
    if (ascending != (v[i] < v[i + inc])) std::swap(v[i], v[i + inc]);
  }
}

#ifdef MPTOPK_HAVE_SSE2
void StepFloatSse(float* v, size_t m, uint32_t dir, uint32_t inc) {
  for (size_t block = 0; block < m; block += 2 * inc) {
    bool ascending = (block & dir) == 0;
    for (size_t i = block; i < block + inc; i += 4) {
      __m128 a = _mm_loadu_ps(v + i);
      __m128 b = _mm_loadu_ps(v + i + inc);
      __m128 lo = _mm_min_ps(a, b);
      __m128 hi = _mm_max_ps(a, b);
      _mm_storeu_ps(v + i, ascending ? lo : hi);
      _mm_storeu_ps(v + i + inc, ascending ? hi : lo);
    }
  }
}
#endif

}  // namespace

bool HasAvx2() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

void StepFloatSimd(float* v, size_t m, uint32_t dir, uint32_t inc) {
  static const bool avx2 = HasAvx2();
  if (avx2 && inc >= 8) {
    StepFloatAvx2(v, m, dir, inc);
    return;
  }
#ifdef MPTOPK_HAVE_SSE2
  if (inc >= 4) {
    StepFloatSse(v, m, dir, inc);
    return;
  }
#endif
  StepFloatScalar(v, m, dir, inc);
}

}  // namespace mptopk::cpu
