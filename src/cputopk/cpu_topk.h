// CPU top-k baselines (paper Section 6.7) and the CPU port of bitonic top-k
// (paper Appendix C).
//
// Three algorithms, all parallelized by partitioning the input across
// threads and reducing the per-thread top-k's in a final host step:
//
//  * kStlPq  : std::priority_queue as a size-k min-heap ("STL PQ").
//  * kHandPq : hand-rolled array min-heap with replace-min ("Hand PQ").
//  * kBitonic: Appendix C bitonic top-k — each partition is processed in
//    L1-resident vectors of 2048 elements through SortReducer /
//    BitonicReducer phases (16x reduction each); the step kernels use SSE
//    min/max when available. Unlike the heaps, its cost is data-independent,
//    which is why it wins on sorted (worst-case) inputs despite doing
//    O(n log^2 k) comparisons.
//
// Wall-clock timings are real host measurements (the GPU side reports
// simulated device time instead).
#ifndef MPTOPK_CPUTOPK_CPU_TOPK_H_
#define MPTOPK_CPUTOPK_CPU_TOPK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple_types.h"

namespace mptopk::cpu {

enum class CpuAlgorithm {
  kStlPq,
  kHandPq,
  kBitonic,
};

inline const char* CpuAlgorithmName(CpuAlgorithm a) {
  switch (a) {
    case CpuAlgorithm::kStlPq:
      return "STL PQ";
    case CpuAlgorithm::kHandPq:
      return "Hand PQ";
    case CpuAlgorithm::kBitonic:
      return "CPU Bitonic";
  }
  return "Unknown";
}

template <typename E>
struct CpuTopKResult {
  /// The k greatest elements, descending.
  std::vector<E> items;
  /// Wall-clock milliseconds (host).
  double wall_ms = 0.0;
  int threads_used = 1;
};

/// Computes the top-k of data[0, n) on the CPU. `threads` = 0 uses
/// std::thread::hardware_concurrency(). Requirements: 1 <= k <= n; the
/// bitonic variant additionally requires k to be a power of two <= 1024.
template <typename E>
StatusOr<CpuTopKResult<E>> CpuTopK(const E* data, size_t n, size_t k,
                                   CpuAlgorithm algo, int threads = 0);

}  // namespace mptopk::cpu

#endif  // MPTOPK_CPUTOPK_CPU_TOPK_H_
