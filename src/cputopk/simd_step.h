// Vectorized compare-exchange step kernels for the CPU bitonic top-k
// (paper Appendix C: "bitonic top-k could be better on platforms with
// wider vector instruction support ... we plan to explore this").
//
// Two float implementations behind one dispatch:
//   * SSE2 (4-wide), compiled unconditionally on x86-64;
//   * AVX2 (8-wide), compiled in a separate -mavx2 TU and selected at
//     runtime via cpuid, so the binary stays portable.
#ifndef MPTOPK_CPUTOPK_SIMD_STEP_H_
#define MPTOPK_CPUTOPK_SIMD_STEP_H_

#include <cstddef>
#include <cstdint>

namespace mptopk::cpu {

/// One bitonic compare-exchange step over v[0, m) with comparison distance
/// `inc` and direction mask `dir`, using the widest vector unit available
/// at runtime (AVX2 when the CPU has it and inc >= 8, else SSE2 when
/// inc >= 4, else scalar). Semantics identical to the scalar step.
void StepFloatSimd(float* v, size_t m, uint32_t dir, uint32_t inc);

/// True if the AVX2 path is compiled in and the CPU supports it.
bool HasAvx2();

// Internal: the AVX2 kernel (defined in simd_step_avx2.cc, only safe to
// call when HasAvx2()). Requires inc >= 8.
void StepFloatAvx2(float* v, size_t m, uint32_t dir, uint32_t inc);

}  // namespace mptopk::cpu

#endif  // MPTOPK_CPUTOPK_SIMD_STEP_H_
