// CPU top-k implementations (paper Section 6.7 + Appendix C).
#include "cputopk/cpu_topk.h"

#include <algorithm>
#include <queue>
#include <thread>

#include "common/bits.h"
#include "common/timer.h"
#include "cputopk/simd_step.h"


namespace mptopk::cpu {
namespace {

template <typename E>
struct DescendingByTraits {
  bool operator()(const E& a, const E& b) const {
    return ElementTraits<E>::Less(b, a);
  }
};

// --- Heap baselines ----------------------------------------------------------

// STL priority_queue as a size-k min-heap over one partition.
template <typename E>
std::vector<E> StlPqPartition(const E* data, size_t n, size_t k) {
  auto greater = [](const E& a, const E& b) {
    return ElementTraits<E>::Less(b, a);
  };
  std::priority_queue<E, std::vector<E>, decltype(greater)> pq(greater);
  size_t i = 0;
  for (; i < std::min(n, k); ++i) pq.push(data[i]);
  for (; i < n; ++i) {
    if (ElementTraits<E>::Less(pq.top(), data[i])) {
      pq.pop();
      pq.push(data[i]);
    }
  }
  std::vector<E> out;
  out.reserve(pq.size());
  while (!pq.empty()) {
    out.push_back(pq.top());
    pq.pop();
  }
  return out;
}

// Hand-rolled array min-heap with replace-min (avoids the pop+push double
// sift of the STL version; the paper's "Hand PQ").
template <typename E>
class HandMinHeap {
 public:
  explicit HandMinHeap(size_t k) { heap_.reserve(k); }

  size_t size() const { return heap_.size(); }
  const E& min() const { return heap_.front(); }
  const std::vector<E>& items() const { return heap_; }

  void Push(const E& x) {
    heap_.push_back(x);
    size_t j = heap_.size() - 1;
    while (j > 0) {
      size_t p = (j - 1) / 2;
      if (!ElementTraits<E>::Less(heap_[j], heap_[p])) break;
      std::swap(heap_[j], heap_[p]);
      j = p;
    }
  }

  void ReplaceMin(const E& x) {
    size_t j = 0;
    const size_t n = heap_.size();
    while (true) {
      size_t c = 2 * j + 1;
      if (c >= n) break;
      if (c + 1 < n && ElementTraits<E>::Less(heap_[c + 1], heap_[c])) ++c;
      if (!ElementTraits<E>::Less(heap_[c], x)) break;
      heap_[j] = heap_[c];
      j = c;
    }
    heap_[j] = x;
  }

 private:
  std::vector<E> heap_;
};

template <typename E>
std::vector<E> HandPqPartition(const E* data, size_t n, size_t k) {
  HandMinHeap<E> heap(k);
  size_t i = 0;
  for (; i < std::min(n, k); ++i) heap.Push(data[i]);
  for (; i < n; ++i) {
    if (ElementTraits<E>::Less(heap.min(), data[i])) {
      heap.ReplaceMin(data[i]);
    }
  }
  return heap.items();
}

// --- CPU bitonic top-k (Appendix C) -------------------------------------------

// The partition is processed in L1-resident vectors of kVectorSize elements.
// Each vector is reduced 16x by the SortReducer/BitonicReducer step
// sequences; the surviving bitonic k-runs accumulate in a temp buffer that
// feeds the next phase, exactly as in the paper's Algorithm 5.
constexpr size_t kVectorSize = 2048;

// One compare-exchange step over v[0, m): pairs (i, i+inc), ascending run
// polarity from (i & dir).
template <typename E>
void StepScalar(E* v, size_t m, uint32_t dir, uint32_t inc) {
  for (size_t p = 0; p < m / 2; ++p) {
    size_t low = p & (inc - 1);
    size_t i = (p << 1) - low;
    bool ascending = (i & dir) == 0;
    if (ascending != ElementTraits<E>::Less(v[i], v[i + inc])) {
      std::swap(v[i], v[i + inc]);
    }
  }
}

template <typename E>
void Step(E* v, size_t m, uint32_t dir, uint32_t inc) {
  if constexpr (std::is_same_v<E, float>) {
    StepFloatSimd(v, m, dir, inc);  // AVX2/SSE2/scalar runtime dispatch
  } else {
    StepScalar(v, m, dir, inc);
  }
}

// Sorted runs of length k, alternating direction (Algorithm 2).
template <typename E>
void LocalSort(E* v, size_t m, size_t k) {
  for (uint32_t len = 1; len < k; len <<= 1) {
    for (uint32_t inc = len; inc >= 1; inc >>= 1) {
      Step(v, m, len << 1, inc);
    }
  }
}

// Re-sorts bitonic k-runs (Algorithm 4).
template <typename E>
void Rebuild(E* v, size_t m, size_t k) {
  for (uint32_t inc = static_cast<uint32_t>(k) >> 1; inc >= 1; inc >>= 1) {
    Step(v, m, static_cast<uint32_t>(k), inc);
  }
}

// Pairwise-max merge (Algorithm 3): v[0, m) -> v[0, m/2).
template <typename E>
void Merge(E* v, size_t m, size_t k) {
  for (size_t j = 0; j < m / 2; ++j) {
    size_t i = (j / k) * 2 * k + (j % k);
    const E& a = v[i];
    const E& b = v[i + k];
    v[j] = ElementTraits<E>::Less(a, b) ? b : a;
  }
}

// SortReducer over one vector: unsorted 2048 elements -> 128 (bitonic
// k-runs appended to out).
template <typename E>
void SortReduceVector(const E* in, size_t count, E* out, size_t k) {
  E v[kVectorSize];
  std::copy(in, in + count, v);
  std::fill(v + count, v + kVectorSize,
            ElementTraits<E>::LowestSentinel());
  LocalSort(v, kVectorSize, k);
  size_t m = kVectorSize;
  const size_t target = std::max(kVectorSize / 16, 2 * k);
  while (m > target) {
    Merge(v, m, k);
    m >>= 1;
    if (m > target) Rebuild(v, m, k);
  }
  // Leave the output as bitonic runs (merge was last), matching the GPU
  // SortReducer contract.
  std::copy(v, v + m, out);
}

// BitonicReducer over one vector of bitonic k-runs.
template <typename E>
void BitonicReduceVector(const E* in, size_t count, E* out, size_t k) {
  E v[kVectorSize];
  std::copy(in, in + count, v);
  std::fill(v + count, v + kVectorSize,
            ElementTraits<E>::LowestSentinel());
  size_t m = kVectorSize;
  const size_t target = std::max(kVectorSize / 16, 2 * k);
  while (m > target) {
    Rebuild(v, m, k);
    Merge(v, m, k);
    m >>= 1;
  }
  std::copy(v, v + m, out);
}

// Appendix C Algorithm 5: one partition -> top-k.
template <typename E>
std::vector<E> BitonicPartition(const E* data, size_t n, size_t k) {
  const size_t out_per_vec =
      std::max(kVectorSize / 16, 2 * k);  // reducer output per vector
  std::vector<E> cur;
  cur.reserve(CeilDiv(n, kVectorSize) * out_per_vec);
  for (size_t base = 0; base < n; base += kVectorSize) {
    size_t count = std::min(kVectorSize, n - base);
    size_t old = cur.size();
    cur.resize(old + out_per_vec);
    SortReduceVector(data + base, count, cur.data() + old, k);
  }
  while (cur.size() > kVectorSize) {
    std::vector<E> next;
    next.reserve(CeilDiv(cur.size(), kVectorSize) * out_per_vec);
    for (size_t base = 0; base < cur.size(); base += kVectorSize) {
      size_t count = std::min(kVectorSize, cur.size() - base);
      size_t old = next.size();
      next.resize(old + out_per_vec);
      BitonicReduceVector(cur.data() + base, count, next.data() + old, k);
    }
    cur = std::move(next);
  }
  // Final: sort the remaining candidates and take k (paper line 8:
  // "O <- sort(temp[current], numElements)").
  std::sort(cur.begin(), cur.end(), DescendingByTraits<E>{});
  cur.resize(std::min(cur.size(), k));
  return cur;
}

template <typename E>
bool AnyNanKey(const E* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (IsNanKey(ElementTraits<E>::PrimaryKey(data[i]))) return true;
  }
  return false;
}

}  // namespace

template <typename E>
StatusOr<CpuTopKResult<E>> CpuTopK(const E* data, size_t n, size_t k,
                                   CpuAlgorithm algo, int threads) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  if (algo == CpuAlgorithm::kBitonic) {
    // The 2048-element L1 vectors must shrink by 16x per phase, so two
    // k-runs must fit in a sixteenth of a vector.
    if (!IsPowerOfTwo(k) || k > 256) {
      return Status::InvalidArgument(
          "CPU bitonic top-k requires power-of-two k <= 256");
    }
    // The float SIMD step kernels (SSE/AVX2 min/max) drop NaN operands
    // instead of propagating them, so NaN-keyed elements are peeled off
    // here and re-inserted as the greatest keys, preserving the canonical
    // NaN order of key_transform.h.
    if constexpr (std::is_floating_point_v<typename ElementTraits<E>::Key>) {
      if (AnyNanKey(data, n)) {
        Timer timer;
        std::vector<E> nans, rest;
        rest.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (IsNanKey(ElementTraits<E>::PrimaryKey(data[i]))) {
            nans.push_back(data[i]);
          } else {
            rest.push_back(data[i]);
          }
        }
        CpuTopKResult<E> result;
        result.items.assign(nans.begin(),
                            nans.begin() + std::min(k, nans.size()));
        const size_t rem = k - result.items.size();
        if (rem > 0) {
          if (k <= rest.size()) {
            MPTOPK_ASSIGN_OR_RETURN(
                auto sub, CpuTopK(rest.data(), rest.size(), k, algo, threads));
            result.items.insert(result.items.end(), sub.items.begin(),
                                sub.items.begin() + rem);
            result.threads_used = sub.threads_used;
          } else {
            std::sort(rest.begin(), rest.end(), DescendingByTraits<E>{});
            result.items.insert(result.items.end(), rest.begin(),
                                rest.begin() + rem);
          }
        }
        result.wall_ms = timer.ElapsedMs();
        return result;
      }
    }
  }
  int nthreads = threads > 0
                     ? threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  nthreads = std::max(1, nthreads);
  // Do not split below a sensible partition size.
  nthreads = static_cast<int>(
      std::min<size_t>(nthreads, std::max<size_t>(1, n / (4 * k + 1))));

  Timer timer;
  std::vector<std::vector<E>> partials(nthreads);
  auto run_partition = [&](int tid) {
    size_t chunk = n / nthreads;
    size_t begin = tid * chunk;
    size_t end = tid + 1 == nthreads ? n : begin + chunk;
    const E* p = data + begin;
    size_t len = end - begin;
    switch (algo) {
      case CpuAlgorithm::kStlPq:
        partials[tid] = StlPqPartition(p, len, k);
        break;
      case CpuAlgorithm::kHandPq:
        partials[tid] = HandPqPartition(p, len, k);
        break;
      case CpuAlgorithm::kBitonic:
        partials[tid] = BitonicPartition(p, len, k);
        break;
    }
  };
  if (nthreads == 1) {
    run_partition(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (int t = 0; t < nthreads; ++t) pool.emplace_back(run_partition, t);
    for (auto& th : pool) th.join();
  }

  // Global reduction of the per-partition top-k's.
  std::vector<E> all;
  for (auto& p : partials) {
    all.insert(all.end(), p.begin(), p.end());
  }
  std::sort(all.begin(), all.end(), DescendingByTraits<E>{});
  all.resize(std::min(all.size(), k));

  CpuTopKResult<E> result;
  result.items = std::move(all);
  result.wall_ms = timer.ElapsedMs();
  result.threads_used = nthreads;
  return result;
}

#define MPTOPK_INSTANTIATE_CPU(E)                                           \
  template StatusOr<CpuTopKResult<E>> CpuTopK<E>(const E*, size_t, size_t,  \
                                                 CpuAlgorithm, int);

MPTOPK_INSTANTIATE_CPU(float)
MPTOPK_INSTANTIATE_CPU(double)
MPTOPK_INSTANTIATE_CPU(uint32_t)
MPTOPK_INSTANTIATE_CPU(int32_t)
MPTOPK_INSTANTIATE_CPU(int64_t)
MPTOPK_INSTANTIATE_CPU(KV)

#undef MPTOPK_INSTANTIATE_CPU

}  // namespace mptopk::cpu
