// AVX2 (8-wide) bitonic compare-exchange step. This translation unit is the
// only one compiled with -mavx2; callers gate on HasAvx2().
#include "cputopk/simd_step.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mptopk::cpu {

#if defined(__AVX2__)
void StepFloatAvx2(float* v, size_t m, uint32_t dir, uint32_t inc) {
  for (size_t block = 0; block < m; block += 2 * inc) {
    bool ascending = (block & dir) == 0;
    for (size_t i = block; i < block + inc; i += 8) {
      __m256 a = _mm256_loadu_ps(v + i);
      __m256 b = _mm256_loadu_ps(v + i + inc);
      __m256 lo = _mm256_min_ps(a, b);
      __m256 hi = _mm256_max_ps(a, b);
      _mm256_storeu_ps(v + i, ascending ? lo : hi);
      _mm256_storeu_ps(v + i + inc, ascending ? hi : lo);
    }
  }
}
#else
void StepFloatAvx2(float* v, size_t m, uint32_t dir, uint32_t inc) {
  // Fallback when the TU is built without AVX2 (non-x86 targets); callers
  // gate on HasAvx2() so this is unreachable there.
  StepFloatSimd(v, m, dir, inc);
}
#endif

}  // namespace mptopk::cpu
