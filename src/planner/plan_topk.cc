#include "planner/plan_topk.h"

#include <algorithm>

namespace mptopk::planner {

StatusOr<Plan> PlanTopK(const simt::DeviceSpec& spec,
                        const cost::Workload& w,
                        bool include_extensions) {
  if (w.n == 0 || w.k == 0 || w.k > w.n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  Plan plan;
  for (const topk::TopKOperator* op : topk::Registry::Instance().All()) {
    if (op->caps().cost_ms == nullptr) continue;  // not planner-rankable
    if (op->caps().extension && !include_extensions) continue;
    const double ms = op->CostMs(spec, w);
    if (ms >= 0) plan.ranked.push_back({op, ms});
  }
  std::stable_sort(plan.ranked.begin(), plan.ranked.end(),
                   [](const OperatorEstimate& a, const OperatorEstimate& b) {
                     return a.predicted_ms < b.predicted_ms;
                   });
  if (plan.ranked.empty()) {
    return Status::Internal("no feasible top-k operator");
  }
  plan.best = plan.ranked.front().op;
  return plan;
}

}  // namespace mptopk::planner
