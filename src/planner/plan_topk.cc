#include "planner/plan_topk.h"

#include <algorithm>

namespace mptopk::planner {

StatusOr<Plan> PlanTopK(const simt::DeviceSpec& spec,
                        const cost::Workload& w,
                        bool include_extensions) {
  if (w.n == 0 || w.k == 0 || w.k > w.n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  Plan plan;
  auto add = [&](gpu::Algorithm a, double ms) {
    if (ms >= 0) plan.ranked.push_back({a, ms});
  };
  add(gpu::Algorithm::kSort, cost::SortCostMs(spec, w));
  add(gpu::Algorithm::kRadixSelect, cost::RadixSelectCostMs(spec, w));
  add(gpu::Algorithm::kBucketSelect, cost::BucketSelectCostMs(spec, w));
  add(gpu::Algorithm::kPerThread, cost::PerThreadCostMs(spec, w));
  if (include_extensions && NextPowerOfTwo(w.k) <= 1024) {
    cost::Workload w2 = w;
    w2.k = NextPowerOfTwo(w.k);
    add(gpu::Algorithm::kHybrid, cost::HybridCostMs(spec, w2));
  }
  // Bitonic feasibility: two k-runs per tile (same rule as the kernels).
  size_t tile_limit = 4096 / 2;
  if (w.elem_size > 8) tile_limit = 2048 / 2;
  if (NextPowerOfTwo(w.k) <= tile_limit) {
    cost::Workload w2 = w;
    w2.k = NextPowerOfTwo(w.k);
    add(gpu::Algorithm::kBitonic, cost::BitonicTopKCostMs(spec, w2));
  }
  std::sort(plan.ranked.begin(), plan.ranked.end(),
            [](const AlgorithmEstimate& a, const AlgorithmEstimate& b) {
              return a.predicted_ms < b.predicted_ms;
            });
  if (plan.ranked.empty()) {
    return Status::Internal("no feasible top-k algorithm");
  }
  plan.algorithm = plan.ranked.front().algorithm;
  return plan;
}

}  // namespace mptopk::planner
