// Resilient top-k execution (see resilient.h for the contract).
#include "planner/resilient.h"

#include <algorithm>
#include <sstream>

#include "topk/registry.h"

namespace mptopk::planner {

std::string ExecutionReport::Summary() const {
  std::ostringstream os;
  os << (final_algorithm.empty() ? "<failed>" : final_algorithm) << " after "
     << attempts.size() << (attempts.size() == 1 ? " attempt" : " attempts")
     << " (" << retries << (retries == 1 ? " retry" : " retries") << ", "
     << fallbacks << (fallbacks == 1 ? " fallback" : " fallbacks");
  if (corruption_reruns > 0) {
    os << ", " << corruption_reruns << " corruption rerun"
       << (corruption_reruns == 1 ? "" : "s");
  }
  if (degraded_to_chunked) os << ", degraded to chunked";
  if (used_cpu) os << ", ran on CPU";
  os << ", " << backoff_ms << " ms backoff)";
  return os.str();
}

namespace {

uint64_t NextRand(uint64_t* s) {
  uint64_t x = *s;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *s = x;
  return x * 0x2545F4914F6CDD1Dull;
}

/// Simulated device clock: kernel time + charged backoff + PCIe staging.
double DeviceClockMs(const simt::ExecCtx& dev) {
  return dev.total_sim_ms() + dev.pcie_ms();
}

/// Primary-key equality through ordered bits (NaN-safe for float keys: all
/// NaNs canonicalize to the same greatest key).
template <typename E>
bool SameKey(const E& a, const E& b) {
  using K = typename ElementTraits<E>::Key;
  return KeyTraits<K>::ToOrderedBits(ElementTraits<E>::PrimaryKey(a)) ==
         KeyTraits<K>::ToOrderedBits(ElementTraits<E>::PrimaryKey(b));
}

// The cheap result invariant check: exactly k items, descending, boundary
// counts against the input (at most k-1 input elements may outrank the k-th
// result element, at least k must reach it), plus deterministic membership
// spot-checks. One O(n) pass over the input — far cheaper than re-running
// any of the algorithms, yet it catches truncation, ordering violations and
// single-bit key corruption.
template <typename E>
Status VerifyTopK(const E* input, size_t n, const std::vector<E>& items,
                  size_t k, const ResilienceOptions& opts) {
  if (items.size() != k) {
    return Status::Internal(
        "verification: result has " + std::to_string(items.size()) +
        " items, expected " + std::to_string(k));
  }
  for (size_t i = 1; i < items.size(); ++i) {
    if (ElementTraits<E>::Less(items[i - 1], items[i])) {
      return Status::Internal("verification: result not descending at index " +
                              std::to_string(i));
    }
  }
  if (k == 0) return Status::OK();

  const size_t samples = std::min<size_t>(
      static_cast<size_t>(std::max(opts.verify_samples, 0)), k);
  std::vector<size_t> sample_idx(samples);
  uint64_t rng =
      opts.verify_seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  for (size_t j = 0; j < samples; ++j) {
    sample_idx[j] = static_cast<size_t>(NextRand(&rng) % k);
  }
  std::vector<char> found(samples, 0);

  const E& kth = items.back();
  size_t outrank = 0;  // input elements strictly greater than the k-th result
  size_t reach = 0;    // input elements >= the k-th result
  for (size_t i = 0; i < n; ++i) {
    const E& e = input[i];
    if (ElementTraits<E>::Less(kth, e)) ++outrank;
    if (!ElementTraits<E>::Less(e, kth)) ++reach;
    for (size_t j = 0; j < samples; ++j) {
      if (!found[j] && SameKey(e, items[sample_idx[j]])) found[j] = 1;
    }
  }
  if (outrank > k - 1) {
    return Status::Internal(
        "verification: " + std::to_string(outrank) +
        " input elements outrank the k-th result element (max " +
        std::to_string(k - 1) + ")");
  }
  if (reach < k) {
    return Status::Internal(
        "verification: only " + std::to_string(reach) +
        " input elements reach the k-th result element (need " +
        std::to_string(k) + ")");
  }
  for (size_t j = 0; j < samples; ++j) {
    if (!found[j]) {
      return Status::Internal("verification: result element " +
                              std::to_string(sample_idx[j]) +
                              " has no matching key in the input");
    }
  }
  return Status::OK();
}

/// Charges exponential backoff before retry number `retries` (0-based) to
/// the device clock and the report, and records it on the attempt.
void ChargeBackoff(const simt::ExecCtx& dev, const ResilienceOptions& opts,
                   int retries, AttemptRecord* rec, ExecutionReport* rep) {
  const double backoff =
      opts.backoff_base_ms * static_cast<double>(uint64_t{1} << retries);
  dev.AddSimulatedDelayMs(backoff);
  rec->backoff_ms = backoff;
  rep->backoff_ms += backoff;
  ++rep->retries;
}

/// Runs one stage with bounded retry of retryable faults (exponential
/// simulated backoff) and one re-execution on a failed invariant check.
/// Failed attempts charge their device time (plus backoff) to the report's
/// added_latency_ms; on success stores the verified items.
template <typename E, typename F>
Status RunStage(const simt::ExecCtx& dev, const ResilienceOptions& opts,
                const std::string& stage, const E* verify_input, size_t n,
                size_t k, F&& fn, ExecutionReport* rep,
                std::vector<E>* items) {
  int retries = 0;
  int reruns = 0;
  Status last;
  while (true) {
    const double t0 = DeviceClockMs(dev);
    StatusOr<std::vector<E>> r = fn();
    AttemptRecord rec;
    rec.stage = stage;
    if (r.ok()) {
      Status v = (opts.verify && verify_input != nullptr)
                     ? VerifyTopK(verify_input, n, r.value(), k, opts)
                     : Status::OK();
      if (v.ok()) {
        rep->attempts.push_back(std::move(rec));
        *items = std::move(r).value();
        return Status::OK();
      }
      rec.code = v.code();
      rec.detail = v.message();
      rep->attempts.push_back(std::move(rec));
      ++rep->faults_seen;
      rep->added_latency_ms += DeviceClockMs(dev) - t0;
      last = v;
      if (reruns == 0) {  // one re-execution on corruption
        ++reruns;
        ++rep->corruption_reruns;
        continue;
      }
      return last.WithContext(stage + " (corrupt after re-execution)");
    }
    last = r.status();
    rec.code = last.code();
    rec.detail = last.message();
    ++rep->faults_seen;
    if (last.IsRetryable() && retries < opts.max_retries) {
      ChargeBackoff(dev, opts, retries, &rec, rep);
      ++retries;
      rep->attempts.push_back(std::move(rec));
      rep->added_latency_ms += DeviceClockMs(dev) - t0;
      continue;
    }
    rep->attempts.push_back(std::move(rec));
    rep->added_latency_ms += DeviceClockMs(dev) - t0;
    return last.WithContext(stage);
  }
}

/// Retries a plain transfer (no result to verify) under the same bounded
/// backoff policy. `stage` labels the attempt records.
template <typename F>
Status RunTransfer(const simt::ExecCtx& dev, const ResilienceOptions& opts,
                   const std::string& stage, F&& fn, ExecutionReport* rep) {
  int retries = 0;
  while (true) {
    const double t0 = DeviceClockMs(dev);
    Status st = fn();
    AttemptRecord rec;
    rec.stage = stage;
    rec.code = st.code();
    if (st.ok()) {
      rep->attempts.push_back(std::move(rec));
      return st;
    }
    rec.detail = st.message();
    ++rep->faults_seen;
    if (st.IsRetryable() && retries < opts.max_retries) {
      ChargeBackoff(dev, opts, retries, &rec, rep);
      ++retries;
      rep->attempts.push_back(std::move(rec));
      rep->added_latency_ms += DeviceClockMs(dev) - t0;
      continue;
    }
    rep->attempts.push_back(std::move(rec));
    rep->added_latency_ms += DeviceClockMs(dev) - t0;
    return st.WithContext(stage);
  }
}

/// Walks the planner-ranked GPU operators (topk/registry.h) over
/// device-resident data, retrying within a stage and falling back across
/// stages. No chunked/CPU degrade here — callers layer those on.
template <typename E>
Status RunGpuStages(const simt::ExecCtx& dev, simt::DeviceBuffer<E>& data, size_t n,
                    size_t k, const ResilienceOptions& opts,
                    ExecutionReport* rep, std::vector<E>* items) {
  cost::Workload w;
  w.n = n;
  w.k = k;
  w.elem_size = sizeof(E);
  w.key_size =
      sizeof(typename KeyTraits<typename ElementTraits<E>::Key>::Unsigned);
  w.dist = opts.hint;
  w.concurrent_streams = dev.concurrency_hint();
  auto plan = PlanTopK(dev.spec(), w, opts.include_extensions);
  if (!plan.ok()) {
    rep->attempts.push_back(
        {"planner", plan.status().code(), plan.status().message(), 0.0});
    ++rep->faults_seen;
    return plan.status().WithContext("planner");
  }
  Status last = Status::Internal("planner returned no feasible operator");
  bool first = true;
  for (const OperatorEstimate& est : plan.value().ranked) {
    if (!first) ++rep->fallbacks;  // reached only after the previous failed
    first = false;
    const std::string& name = est.op->name();
    Status st = RunStage<E>(
        dev, opts, name, data.host_data(), n, k,
        [&]() -> StatusOr<std::vector<E>> {
          auto r = est.op->TopKDevice(dev, data, n, k);
          if (!r.ok()) return r.status();
          return std::move(r.value().items);
        },
        rep, items);
    if (st.ok()) {
      rep->final_algorithm = name;
      return Status::OK();
    }
    last = st;
  }
  return last;
}

/// The final CPU stage over host-resident input: the registry's CPU
/// operators in caps fallback order (hand-rolled heap first), skipping any
/// whose caps reject this (element type, n, k) request.
template <typename E>
Status RunCpuStage(const simt::ExecCtx& dev, const E* data, size_t n, size_t k,
                   const ResilienceOptions& opts, ExecutionReport* rep,
                   std::vector<E>* items) {
  Status last = Status::Internal("no CPU operator registered");
  bool first = true;
  for (const topk::TopKOperator* op : topk::CpuFallbackChain()) {
    if (!op->CheckCaps(topk::ElemTypeOf<E>::value, n, k).ok()) continue;
    if (!first) ++rep->fallbacks;
    first = false;
    Status st = RunStage<E>(
        dev, opts, op->name(), data, n, k,
        [&]() -> StatusOr<std::vector<E>> {
          auto r = op->TopKHost(dev, data, n, k);
          if (!r.ok()) return r.status();
          return std::move(r.value().items);
        },
        rep, items);
    if (st.ok()) {
      rep->used_cpu = true;
      rep->final_algorithm = op->name();
      return st;
    }
    last = st;
  }
  return last;
}

}  // namespace

template <typename E>
StatusOr<ResilientResult<E>> ResilientTopKDevice(
    const simt::ExecCtx& dev, simt::DeviceBuffer<E>& data, size_t n, size_t k,
    const ResilienceOptions& opts) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("ResilientTopKDevice: require 1 <= k <= n");
  }
  if (n > data.size()) {
    return Status::InvalidArgument(
        "ResilientTopKDevice: n exceeds device buffer size");
  }
  ResilientResult<E> out;
  const double t_begin = DeviceClockMs(dev);

  Status st = RunGpuStages(dev, data, n, k, opts, &out.report, &out.items);
  if (!st.ok() && opts.allow_cpu_fallback) {
    ++out.report.fallbacks;
    // Accounted readback of the input (itself subject to transient faults).
    std::vector<E> host(n);
    Status rb = RunTransfer(
        dev, opts, "cpu-readback",
        [&]() { return dev.CopyToHost(host.data(), data, n); }, &out.report);
    if (!rb.ok()) {
      return rb.WithContext("ResilientTopKDevice: input readback failed");
    }
    st = RunCpuStage(dev, host.data(), n, k, opts, &out.report, &out.items);
  }
  if (!st.ok()) {
    return st.WithContext("ResilientTopKDevice: all stages failed");
  }
  out.report.total_device_ms = DeviceClockMs(dev) - t_begin;
  return out;
}

template <typename E>
StatusOr<ResilientResult<E>> ResilientTopK(const simt::ExecCtx& dev, const E* data,
                                           size_t n, size_t k,
                                           const ResilienceOptions& opts) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("ResilientTopK: require 1 <= k <= n");
  }
  ResilientResult<E> out;
  const double t_begin = DeviceClockMs(dev);
  Status last = Status::OK();
  bool done = false;

  const size_t bytes = n * sizeof(E);
  const size_t used = dev.allocated_bytes();
  const size_t free_bytes =
      dev.spec().global_mem_bytes > used ? dev.spec().global_mem_bytes - used
                                         : 0;
  // The resident path needs the input plus algorithm scratch; require modest
  // headroom before attempting it, else degrade to streaming immediately.
  if (bytes + bytes / 8 <= free_bytes) {
    // Stage the input. An allocation failure (device full / injected)
    // degrades to chunked; transient copy faults retry like any stage.
    auto buf = dev.Alloc<E>(n);
    if (!buf.ok()) {
      out.report.attempts.push_back({"stage-input", buf.status().code(),
                                     buf.status().message(), 0.0});
      ++out.report.faults_seen;
      last = buf.status();
    } else {
      Status cp = RunTransfer(
          dev, opts, "stage-input",
          [&]() { return dev.CopyToDevice(buf.value(), data, n); },
          &out.report);
      if (cp.ok()) {
        Status st = RunGpuStages(dev, buf.value(), n, k, opts, &out.report,
                                 &out.items);
        if (st.ok()) done = true;
        else last = st;
      } else {
        last = cp;
      }
    }
  } else {
    out.report.attempts.push_back(
        {"resident", StatusCode::kResourceExhausted,
         "input (" + std::to_string(bytes) +
             " bytes) exceeds free device memory (" +
             std::to_string(free_bytes) + " bytes)",
         0.0});
    last = Status::ResourceExhausted(
        "ResilientTopK: input does not fit device memory");
  }

  const topk::TopKOperator* streaming = topk::StreamingFallback();
  if (!done && opts.allow_chunked_degrade && streaming != nullptr &&
      streaming->CheckCaps(topk::ElemTypeOf<E>::value, n, k).ok()) {
    ++out.report.fallbacks;
    out.report.degraded_to_chunked = true;
    Status st = RunStage<E>(
        dev, opts, streaming->name(), data, n, k,
        [&]() -> StatusOr<std::vector<E>> {
          auto r = streaming->TopKHost(dev, data, n, k);
          if (!r.ok()) return r.status();
          return std::move(r.value().items);
        },
        &out.report, &out.items);
    if (st.ok()) {
      out.report.final_algorithm = streaming->name();
      done = true;
    } else {
      last = st;
    }
  }
  if (!done && opts.allow_cpu_fallback) {
    ++out.report.fallbacks;
    Status st = RunCpuStage(dev, data, n, k, opts, &out.report, &out.items);
    if (st.ok()) done = true;
    else last = st;
  }
  if (!done) {
    if (last.ok()) last = Status::Internal("no execution path permitted");
    return last.WithContext("ResilientTopK: all stages failed");
  }
  out.report.total_device_ms = DeviceClockMs(dev) - t_begin;
  return out;
}

#define MPTOPK_INSTANTIATE_RESILIENT(E)                          \
  template StatusOr<ResilientResult<E>> ResilientTopKDevice<E>(  \
      const simt::ExecCtx&, simt::DeviceBuffer<E>&, size_t, size_t,     \
      const ResilienceOptions&);                                 \
  template StatusOr<ResilientResult<E>> ResilientTopK<E>(        \
      const simt::ExecCtx&, const E*, size_t, size_t, const ResilienceOptions&);

MPTOPK_INSTANTIATE_RESILIENT(float)
MPTOPK_INSTANTIATE_RESILIENT(double)
MPTOPK_INSTANTIATE_RESILIENT(uint32_t)
MPTOPK_INSTANTIATE_RESILIENT(int32_t)
MPTOPK_INSTANTIATE_RESILIENT(KV)

#undef MPTOPK_INSTANTIATE_RESILIENT

}  // namespace mptopk::planner
