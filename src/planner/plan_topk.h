// Cost-based top-k operator selection — the query-optimizer use case the
// paper motivates in its conclusion ("allowing a query optimizer to choose
// the best top-k implementation for a particular query") and lists as future
// work ("hybrid and adaptive solutions").
//
// PlanTopK ranks the registered operators (topk/registry.h) by their
// OperatorCaps cost hooks (the Section 7 models) under the given workload.
// Infeasible operators (per-thread heaps beyond shared memory, bitonic
// beyond k = tile/2) price themselves out with a negative cost; operators
// without a cost hook (CPU backends, the streaming executor) don't compete.
// A newly registered operator with a cost hook joins the ranking with no
// planner edits.
#ifndef MPTOPK_PLANNER_PLAN_TOPK_H_
#define MPTOPK_PLANNER_PLAN_TOPK_H_

#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "topk/registry.h"

namespace mptopk::planner {

struct OperatorEstimate {
  const topk::TopKOperator* op = nullptr;
  double predicted_ms = 0.0;
};

struct Plan {
  /// The chosen (cheapest feasible) operator.
  const topk::TopKOperator* best = nullptr;
  /// All feasible operators, cheapest first.
  std::vector<OperatorEstimate> ranked;
};

/// Ranks the registered operators by predicted cost for the workload. By
/// default only the paper's core algorithms compete (reproducing its planner
/// study); with include_extensions the sampling-based hybrid (Section 8
/// future work) joins, and typically wins on distributions its pivot can
/// discriminate.
StatusOr<Plan> PlanTopK(const simt::DeviceSpec& spec,
                        const cost::Workload& workload,
                        bool include_extensions = false);

/// Convenience: plan, then run the chosen operator on device data.
template <typename E>
StatusOr<gpu::TopKResult<E>> PlannedTopKDevice(const simt::ExecCtx& dev,
                                               simt::DeviceBuffer<E>& data,
                                               size_t n, size_t k,
                                               Distribution hint =
                                                   Distribution::kUniform) {
  cost::Workload w;
  w.n = n;
  w.k = k;
  w.elem_size = sizeof(E);
  w.key_size = sizeof(typename KeyTraits<
                      typename ElementTraits<E>::Key>::Unsigned);
  w.dist = hint;
  w.concurrent_streams = dev.concurrency_hint();
  MPTOPK_ASSIGN_OR_RETURN(Plan plan, PlanTopK(dev.spec(), w));
  return plan.best->TopKDevice(dev, data, n, k);
}

}  // namespace mptopk::planner

#endif  // MPTOPK_PLANNER_PLAN_TOPK_H_
