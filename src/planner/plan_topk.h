// Cost-based top-k algorithm selection — the query-optimizer use case the
// paper motivates in its conclusion ("allowing a query optimizer to choose
// the best top-k implementation for a particular query") and lists as future
// work ("hybrid and adaptive solutions").
//
// PlanTopK evaluates the Section 7 cost models for every candidate
// algorithm under the given workload and returns them ranked. Infeasible
// algorithms (per-thread heaps beyond shared memory, bitonic beyond
// k = tile/2) are excluded.
#ifndef MPTOPK_PLANNER_PLAN_TOPK_H_
#define MPTOPK_PLANNER_PLAN_TOPK_H_

#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "gputopk/topk.h"

namespace mptopk::planner {

struct AlgorithmEstimate {
  gpu::Algorithm algorithm;
  double predicted_ms;
};

struct Plan {
  /// The chosen (cheapest feasible) algorithm.
  gpu::Algorithm algorithm;
  /// All feasible algorithms, cheapest first.
  std::vector<AlgorithmEstimate> ranked;
};

/// Ranks the algorithms by predicted cost for the workload. By default only
/// the paper's five algorithms compete (reproducing its planner study); with
/// include_extensions the sampling-based hybrid (Section 8 future work)
/// joins, and typically wins on distributions its pivot can discriminate.
StatusOr<Plan> PlanTopK(const simt::DeviceSpec& spec,
                        const cost::Workload& workload,
                        bool include_extensions = false);

/// Convenience: plan, then run the chosen algorithm on device data.
template <typename E>
StatusOr<gpu::TopKResult<E>> PlannedTopKDevice(const simt::ExecCtx& dev,
                                               simt::DeviceBuffer<E>& data,
                                               size_t n, size_t k,
                                               Distribution hint =
                                                   Distribution::kUniform) {
  cost::Workload w;
  w.n = n;
  w.k = k;
  w.elem_size = sizeof(E);
  w.key_size = sizeof(typename KeyTraits<
                      typename ElementTraits<E>::Key>::Unsigned);
  w.dist = hint;
  w.concurrent_streams = dev.concurrency_hint();
  MPTOPK_ASSIGN_OR_RETURN(Plan plan, PlanTopK(dev.spec(), w));
  return gpu::TopKDevice(dev, data, n, k, plan.algorithm);
}

}  // namespace mptopk::planner

#endif  // MPTOPK_PLANNER_PLAN_TOPK_H_
