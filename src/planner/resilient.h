// Resilient top-k execution: planner-ranked algorithm choice with bounded
// retry, fallback and degradation — the layer that turns the library's
// errors-are-values contract into answers that survive device faults.
//
// ResilientTopK walks the cost-based ranked list from PlanTopK and applies,
// in order:
//
//   retry    — kUnavailable failures (transient transfer faults, aborted
//              launches) are retried on the same algorithm with bounded
//              exponential backoff, charged to the device's simulated clock;
//   fallback — kResourceExhausted (and any other non-retryable failure)
//              moves on to the next-cheapest feasible algorithm;
//   degrade  — input that does not fit device memory (or exhausts it across
//              every algorithm) is streamed through gpu::ChunkedTopK; as the
//              last resort the computation runs on the CPU (cpu::CpuTopK).
//
// Every successful attempt passes a cheap invariant check — exactly k items,
// descending, boundary counts against the input, membership spot-checks —
// and is re-executed once if the check fails (corrupted readback). The call
// returns the items plus an ExecutionReport describing exactly what happened;
// given the same fault-plan seed the decisions and reported latency are
// bit-for-bit deterministic. See docs/robustness.md.
#ifndef MPTOPK_PLANNER_RESILIENT_H_
#define MPTOPK_PLANNER_RESILIENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cputopk/cpu_topk.h"
#include "gputopk/chunked.h"
#include "gputopk/topk.h"
#include "planner/plan_topk.h"

namespace mptopk::planner {

struct ResilienceOptions {
  /// Retries of a retryable (kUnavailable) failure per stage before falling
  /// back to the next stage.
  int max_retries = 3;
  /// Simulated backoff before retry r is base * 2^r milliseconds, charged to
  /// the device clock (Device::AddSimulatedDelayMs) and to the report.
  double backoff_base_ms = 0.25;
  /// Run the result invariant check after every successful attempt.
  bool verify = true;
  /// Membership spot-checks per verification (result items sampled
  /// deterministically from verify_seed; clamped to k).
  int verify_samples = 3;
  uint64_t verify_seed = 1;
  /// Allow streaming through gpu::ChunkedTopK when the input does not fit
  /// (host-input ResilientTopK only).
  bool allow_chunked_degrade = true;
  /// Allow the final CPU fallback.
  bool allow_cpu_fallback = true;
  /// Forwarded to PlanTopK (adds the sampling hybrid to the ranked list).
  bool include_extensions = false;
  /// Distribution hint for the cost models.
  Distribution hint = Distribution::kUniform;
};

/// One execution attempt of one stage, in order.
struct AttemptRecord {
  std::string stage;            ///< "BitonicTopK", "ChunkedTopK", "cpu:HandPq"...
  StatusCode code = StatusCode::kOk;
  std::string detail;           ///< failure / corruption description
  double backoff_ms = 0.0;      ///< simulated backoff charged after this attempt
};

/// What ResilientTopK did to produce the answer.
struct ExecutionReport {
  std::vector<AttemptRecord> attempts;
  int faults_seen = 0;          ///< attempts that failed or verified corrupt
  int retries = 0;              ///< same-stage retries of retryable faults
  int fallbacks = 0;            ///< moves to the next stage in the chain
  int corruption_reruns = 0;    ///< re-executions after a failed invariant check
  bool degraded_to_chunked = false;
  bool used_cpu = false;
  std::string final_algorithm;  ///< stage that produced the returned result
  double backoff_ms = 0.0;      ///< total simulated backoff added
  /// Simulated device milliseconds (kernels + PCIe + backoff) consumed by
  /// the whole call. CPU-fallback wall time is intentionally excluded so the
  /// number stays deterministic.
  double total_device_ms = 0.0;
  /// Simulated device time consumed by failed attempts plus retry backoff —
  /// the latency added by faults. Exactly 0.0 on a fault-free run.
  double added_latency_ms = 0.0;

  /// One-line human-readable account, e.g.
  /// "BitonicTopK ok after 3 attempts (1 retry, 1 fallback, 0.75 ms backoff)".
  std::string Summary() const;
};

template <typename E>
struct ResilientResult {
  std::vector<E> items;  ///< the k greatest elements, descending
  ExecutionReport report;
};

/// Resilient top-k over device-resident data: planner-ranked GPU algorithms
/// with retry/fallback, then CPU fallback via an accounted device->host
/// readback. (No chunked degrade: the data already fits on the device.)
template <typename E>
StatusOr<ResilientResult<E>> ResilientTopKDevice(
    const simt::ExecCtx& dev, simt::DeviceBuffer<E>& data, size_t n, size_t k,
    const ResilienceOptions& opts = {});

/// Resilient top-k over host data: stages the input (with retry), walks the
/// GPU chain, degrades to gpu::ChunkedTopK when the input does not fit (or
/// exhausts device memory everywhere), and finally runs on the CPU.
template <typename E>
StatusOr<ResilientResult<E>> ResilientTopK(const simt::ExecCtx& dev, const E* data,
                                           size_t n, size_t k,
                                           const ResilienceOptions& opts = {});

}  // namespace mptopk::planner

#endif  // MPTOPK_PLANNER_RESILIENT_H_
