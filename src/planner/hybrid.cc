#include "planner/hybrid.h"

#include <algorithm>
#include <cmath>

namespace mptopk::planner {

double CpuTopKCostMs(const CpuSpec& cpu, const cost::Workload& w,
                     cpu::CpuAlgorithm* best) {
  const double n = static_cast<double>(w.n);
  const double per_core = n / std::max(1, cpu.cores);

  // Heap methods: a streaming read plus data-dependent replace-min calls
  // (paper Section 6.7: ~500 insertions per 67k elements at k=32 uniform).
  double inserts_per_core;
  switch (w.dist) {
    case Distribution::kIncreasing:
      inserts_per_core = per_core;
      break;
    case Distribution::kDecreasing:
      inserts_per_core = static_cast<double>(w.k);
      break;
    default:
      inserts_per_core =
          w.k * (std::log(std::max(1.0, per_core / w.k)) + 1.0);
  }
  const double stream_s =
      per_core * w.elem_size / (cpu.mem_bw_gbps * 1e9);
  const double heap_s = stream_s + inserts_per_core *
                                       std::max(1, Log2Ceil(w.k)) *
                                       cpu.heap_insert_ns * 1e-9;

  // CPU bitonic (Appendix C): data-independent n * (log^2 k)-ish compares,
  // SIMD-accelerated; wins when the heaps degrade to insert-per-element.
  const int lk = std::max(1, Log2Ceil(std::max<size_t>(2, w.k)));
  const double compares_per_elem = 0.5 * lk * (lk + 3);  // local sort+rebuilds
  const double bitonic_s =
      std::max(stream_s,
               per_core * compares_per_elem * cpu.compare_ns * 1e-9);

  if (heap_s <= bitonic_s) {
    if (best != nullptr) *best = cpu::CpuAlgorithm::kHandPq;
    return heap_s * 1e3;
  }
  if (best != nullptr) *best = cpu::CpuAlgorithm::kBitonic;
  return bitonic_s * 1e3;
}

StatusOr<HybridChoice> PlanHybridTopK(const simt::DeviceSpec& gpu_spec,
                                      const CpuSpec& cpu_spec,
                                      const cost::Workload& w,
                                      PlacementInput placement) {
  MPTOPK_ASSIGN_OR_RETURN(Plan gpu_plan, PlanTopK(gpu_spec, w));
  HybridChoice choice;
  choice.gpu_kernel_ms = gpu_plan.ranked.front().predicted_ms;
  choice.gpu_op = gpu_plan.best;
  choice.transfer_ms =
      placement == PlacementInput::kHostResident
          ? static_cast<double>(w.n) * w.elem_size /
                (gpu_spec.pcie_bw_gbps * 1e9) * 1e3
          : 0.0;
  choice.cpu_ms = CpuTopKCostMs(cpu_spec, w, &choice.cpu_algorithm);

  const double gpu_total = choice.gpu_kernel_ms + choice.transfer_ms;
  choice.use_gpu = gpu_total <= choice.cpu_ms;
  choice.predicted_ms = choice.use_gpu ? gpu_total : choice.cpu_ms;
  return choice;
}

}  // namespace mptopk::planner
