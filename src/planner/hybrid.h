// Hybrid device selection — the paper's conclusion sketches "hybrid
// solutions [that] could either involve multiple devices (CPUs and GPUs) as
// well as hybrids of the presented algorithms". This planner extends the
// Section 7 cost models with a CPU-side model and the PCIe transfer cost,
// choosing where a top-k should run given where the data currently lives.
//
// The decision captures the paper's Section 1 observation: when data is
// host-resident and used once, shipping it over PCIe can cost more than the
// entire (memory-bound) CPU computation; once data is device-resident, the
// GPU wins by the bandwidth ratio.
#ifndef MPTOPK_PLANNER_HYBRID_H_
#define MPTOPK_PLANNER_HYBRID_H_

#include "cputopk/cpu_topk.h"
#include "planner/plan_topk.h"

namespace mptopk::planner {

/// Host-side execution resources for the CPU cost model.
struct CpuSpec {
  int cores = 8;                    // the paper's i7-6900
  double mem_bw_gbps = 20.0;        // per-core effective stream bandwidth
  double heap_insert_ns = 12.0;     // amortized replace-min cost
  double compare_ns = 0.35;         // vectorized bitonic compare-exchange

  static CpuSpec PaperXeon() { return CpuSpec{}; }
};

enum class PlacementInput { kHostResident, kDeviceResident };

struct HybridChoice {
  bool use_gpu = true;
  /// Set when use_gpu: the registry operator the GPU-side plan chose.
  const topk::TopKOperator* gpu_op = nullptr;
  /// Set when !use_gpu.
  cpu::CpuAlgorithm cpu_algorithm = cpu::CpuAlgorithm::kHandPq;
  double predicted_ms = 0.0;
  /// Component costs for explanation.
  double cpu_ms = 0.0;
  double gpu_kernel_ms = 0.0;
  double transfer_ms = 0.0;
};

/// Predicted CPU milliseconds for the best CPU algorithm (heaps on friendly
/// distributions, bitonic when every element updates the heap).
double CpuTopKCostMs(const CpuSpec& cpu, const cost::Workload& w,
                     cpu::CpuAlgorithm* best = nullptr);

/// Chooses CPU vs GPU (and the algorithm) for the workload, accounting for
/// a PCIe staging transfer when the data is host-resident.
StatusOr<HybridChoice> PlanHybridTopK(const simt::DeviceSpec& gpu_spec,
                                      const CpuSpec& cpu_spec,
                                      const cost::Workload& workload,
                                      PlacementInput placement);

}  // namespace mptopk::planner

#endif  // MPTOPK_PLANNER_HYBRID_H_
