// LSD radix sort implementation. Per 8-bit digit pass:
//
//   1. histogram kernel: per-block shared 256-bin histogram of the digit,
//      written to global as hist[bin * grid + block] (bin-major so the scan
//      yields per-block scatter bases directly);
//   2. scan kernel: exclusive prefix sum over the 256*grid table (single
//      block, chunked through shared memory with a running carry);
//   3. scatter kernel: re-reads the tile, ranks elements per digit in
//      element order (stable), reorders the tile in shared memory by digit,
//      and writes each digit's run to its global base -- consecutive shared
//      slots land in consecutive global slots, keeping writes coalesced.
#include "gputopk/radix_sort.h"

#include <algorithm>

#include "common/bits.h"
#include "common/key_transform.h"
#include "gputopk/kernel_util.h"

namespace mptopk::gpu {
namespace {

using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::Thread;

constexpr int kRadixBits = 8;
constexpr int kRadix = 1 << kRadixBits;
constexpr int kBlockDim = 256;
constexpr int kMaxGrid = 128;  // bounded grid; blocks cover contiguous tile ranges

// Tile size per block, chosen so the scatter kernel's shared footprint
// (tile + reorder buffer + ranks + histograms) fits in 48 KiB for the
// element width.
template <typename E>
constexpr size_t RadixTile() {
  return sizeof(E) <= 8 ? 2048 : 1024;
}

template <typename E>
using KeyBits = typename KeyTraits<typename ElementTraits<E>::Key>::Unsigned;

template <typename E>
KeyBits<E> OrderedBits(const E& e) {
  using Key = typename ElementTraits<E>::Key;
  return KeyTraits<Key>::ToOrderedBits(ElementTraits<E>::PrimaryKey(e));
}

template <typename E>
uint32_t DigitOf(const E& e, int pass) {
  return ExtractDigitLsd(OrderedBits<E>(e), pass, kRadixBits);
}

// Pass 1: per-block digit histogram into hist[bin * grid + block]. Each
// block covers a contiguous range of tiles (bounded grid), which both
// amortizes the flush and keeps the later scatter stable.
template <typename E>
Status LaunchHistogram(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                       GlobalSpan<uint32_t> hist, int pass, int grid,
                       size_t per_block) {
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "radix_histogram"},
      [&](Block& blk) {
        auto counts = blk.AllocShared<uint32_t>(kRadix);
        blk.ForEachThread([&](Thread& t) {
          for (int b = t.tid; b < kRadix; b += kBlockDim) {
            counts.Write(t, b, 0);
          }
        });
        blk.Sync();
        size_t base = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t end = std::min(base + per_block, n);
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = base + t.tid; i < end; i += kBlockDim) {
            counts.AtomicAdd(t, DigitOf(in.Read(t, i), pass), 1u);
          }
        });
        blk.Sync();
        blk.ForEachThread([&](Thread& t) {
          for (int b = t.tid; b < kRadix; b += kBlockDim) {
            hist.Write(t,
                       static_cast<size_t>(b) * grid + blk.block_idx(),
                       counts.Read(t, b));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Pass 2: exclusive scan over hist[0, count) with one block, chunking
// through shared memory with a running carry.
Status LaunchScan(const simt::ExecCtx& dev, GlobalSpan<uint32_t> hist, size_t count) {
  constexpr size_t kChunk = 2048;
  auto st = dev.Launch(
      {.grid_dim = 1, .block_dim = kBlockDim, .name = "radix_scan"},
      [&](Block& blk) {
        auto data = blk.AllocShared<uint32_t>(kChunk);
        auto scratch = blk.AllocShared<uint32_t>(kChunk);
        uint32_t carry = 0;
        for (size_t base = 0; base < count; base += kChunk) {
          size_t len = std::min(kChunk, count - base);
          blk.ForEachThread([&](Thread& t) {
            for (size_t i = t.tid; i < len; i += kBlockDim) {
              data.Write(t, i, hist.Read(t, base + i));
            }
          });
          blk.Sync();
          uint32_t total = 0;
          BlockExclusiveScan(blk, data, len, scratch, &total);
          blk.ForEachThread([&](Thread& t) {
            for (size_t i = t.tid; i < len; i += kBlockDim) {
              hist.Write(t, base + i, data.Read(t, i) + carry);
            }
          });
          blk.Sync();
          carry += total;
        }
      });
  return st.ok() ? Status::OK() : st.status();
}

// Pass 3: stable scatter through a shared reorder buffer. Each block walks
// its contiguous tile range in order, maintaining cumulative per-digit
// offsets (emitted[]) so ranks stay stable across tiles; global bases come
// from the scanned per-block histogram.
template <typename E>
Status LaunchScatter(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                     GlobalSpan<E> out, GlobalSpan<uint32_t> hist_scanned,
                     int pass, int grid, size_t per_block) {
  const size_t tile_n = RadixTile<E>();
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "radix_scatter"},
      [&](Block& blk) {
        auto tile = blk.AllocShared<E>(tile_n);
        auto reorder = blk.AllocShared<E>(tile_n);
        auto rank = blk.AllocShared<uint32_t>(tile_n);
        auto cnt = blk.AllocShared<uint32_t>(kRadix);
        auto bin_start = blk.AllocShared<uint32_t>(kRadix);
        auto scratch = blk.AllocShared<uint32_t>(kRadix);
        auto emitted = blk.AllocShared<uint32_t>(kRadix);

        blk.ForEachThread([&](Thread& t) {
          for (int b = t.tid; b < kRadix; b += kBlockDim) {
            emitted.Write(t, b, 0);
          }
        });
        blk.Sync();

        size_t range_lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t range_hi = std::min(range_lo + per_block, n);
        for (size_t base = range_lo; base < range_hi; base += tile_n) {
          size_t count = std::min(tile_n, range_hi - base);

          // Coalesced load of the tile; zero the per-tile digit counters.
          blk.ForEachThread([&](Thread& t) {
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              tile.Write(t, i, in.Read(t, base + i));
            }
            for (int b = t.tid; b < kRadix; b += kBlockDim) {
              cnt.Write(t, b, 0);
            }
          });
          blk.Sync();

          // Rank in element order: each thread owns a contiguous slice and
          // threads execute in order, so AtomicAdd assigns stable ranks
          // (mirrors per-thread-histogram + hierarchical scan of real GPU
          // radix sorts at equivalent shared traffic).
          size_t per_thread = CeilDiv(count, kBlockDim);
          blk.ForEachThread([&](Thread& t) {
            size_t lo = t.tid * per_thread;
            size_t hi = std::min(count, lo + per_thread);
            for (size_t i = lo; i < hi; ++i) {
              uint32_t d = DigitOf(tile.Read(t, i), pass);
              rank.Write(t, i, cnt.AtomicAdd(t, d, 1u));
            }
          });
          blk.Sync();

          // Local exclusive scan of the digit counts.
          blk.ForEachThread([&](Thread& t) {
            for (int b = t.tid; b < kRadix; b += kBlockDim) {
              bin_start.Write(t, b, cnt.Read(t, b));
            }
          });
          blk.Sync();
          BlockExclusiveScan(blk, bin_start, kRadix, scratch, nullptr);

          // Reorder the tile by (digit, rank).
          blk.ForEachThread([&](Thread& t) {
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              E e = tile.Read(t, i);
              uint32_t d = DigitOf(e, pass);
              uint32_t pos = bin_start.Read(t, d) + rank.Read(t, i);
              reorder.Write(t, pos, e);
            }
          });
          blk.Sync();

          // Coalesced write-out: consecutive reorder slots of one digit land
          // in consecutive global positions.
          blk.ForEachThread([&](Thread& t) {
            for (size_t i = t.tid; i < count; i += kBlockDim) {
              E e = reorder.Read(t, i);
              uint32_t d = DigitOf(e, pass);
              uint32_t global_base = hist_scanned.Read(
                  t, static_cast<size_t>(d) * grid + blk.block_idx());
              uint32_t local_rank = static_cast<uint32_t>(i) -
                                    bin_start.Read(t, d) +
                                    emitted.Read(t, d);
              out.Write(t, global_base + local_rank, e);
            }
          });
          blk.Sync();

          // Advance the cumulative per-digit offsets.
          blk.ForEachThread([&](Thread& t) {
            for (int b = t.tid; b < kRadix; b += kBlockDim) {
              emitted.Write(t, b, emitted.Read(t, b) + cnt.Read(t, b));
            }
          });
          blk.Sync();
        }
      });
  return st.ok() ? Status::OK() : st.status();
}

}  // namespace

template <typename E>
Status RadixSortDevice(const simt::ExecCtx& dev, DeviceBuffer<E>& data, size_t n,
                       DeviceBuffer<E>* out) {
  if (n == 0) return Status::OK();
  if (out->size() < n) {
    return Status::InvalidArgument("output buffer too small");
  }
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, RadixTile<E>())));
  const size_t per_block =
      RoundUp(CeilDiv(n, grid), RadixTile<E>());
  const int passes = static_cast<int>(sizeof(KeyBits<E>));
  MPTOPK_ASSIGN_OR_RETURN(auto ping, dev.Alloc<E>(n));
  MPTOPK_ASSIGN_OR_RETURN(
      auto hist, dev.Alloc<uint32_t>(static_cast<size_t>(kRadix) * grid));

  GlobalSpan<E> src(data);
  GlobalSpan<E> a(ping), b(*out);
  // Arrange ping-pong so the final pass lands in *out (passes is even for
  // all supported key widths).
  GlobalSpan<E> cur = src, dst = (passes % 2 == 0) ? a : b;
  GlobalSpan<uint32_t> h(hist);
  for (int pass = 0; pass < passes; ++pass) {
    MPTOPK_RETURN_NOT_OK(
        LaunchHistogram(dev, cur, n, h, pass, grid, per_block));
    MPTOPK_RETURN_NOT_OK(
        LaunchScan(dev, h, static_cast<size_t>(kRadix) * grid));
    MPTOPK_RETURN_NOT_OK(
        LaunchScatter(dev, cur, n, dst, h, pass, grid, per_block));
    cur = dst;
    dst = (pass % 2 == 0) == (passes % 2 == 0) ? b : a;
  }
  return Status::OK();
}

template <typename E>
StatusOr<TopKResult<E>> SortTopKDevice(const simt::ExecCtx& dev,
                                       DeviceBuffer<E>& data, size_t n,
                                       size_t k) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  DeviceTimeTracker tracker(dev);
  MPTOPK_ASSIGN_OR_RETURN(auto sorted, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(RadixSortDevice(dev, data, n, &sorted));
  // The array is ascending; emit the last k reversed (descending).
  MPTOPK_ASSIGN_OR_RETURN(auto out_k, dev.Alloc<E>(k));
  GlobalSpan<E> s(sorted), o(out_k);
  auto st = dev.Launch(
      {.grid_dim = 1, .block_dim = kBlockDim, .name = "sort_emit_topk"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = t.tid; i < k; i += kBlockDim) {
            o.Write(t, i, s.Read(t, n - 1 - i));
          }
        });
      });
  if (!st.ok()) return st.status();

  TopKResult<E> result;
  result.items.resize(k);
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(result.items.data(), out_k, k));
  result.kernel_ms = tracker.ElapsedMs();
  result.kernels_launched = tracker.Launches();
  return result;
}

template <typename E>
StatusOr<TopKResult<E>> SortTopK(const simt::ExecCtx& dev, const E* data, size_t n,
                                 size_t k) {
  MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
  return SortTopKDevice(dev, buf, n, k);
}

#define MPTOPK_INSTANTIATE_SORT(E)                                          \
  template Status RadixSortDevice<E>(const simt::ExecCtx&, DeviceBuffer<E>&,        \
                                     size_t, DeviceBuffer<E>*);              \
  template StatusOr<TopKResult<E>> SortTopKDevice<E>(                        \
      const simt::ExecCtx&, DeviceBuffer<E>&, size_t, size_t);                      \
  template StatusOr<TopKResult<E>> SortTopK<E>(const simt::ExecCtx&, const E*,      \
                                               size_t, size_t);

MPTOPK_INSTANTIATE_SORT(float)
MPTOPK_INSTANTIATE_SORT(double)
MPTOPK_INSTANTIATE_SORT(uint32_t)
MPTOPK_INSTANTIATE_SORT(int32_t)
MPTOPK_INSTANTIATE_SORT(uint64_t)
MPTOPK_INSTANTIATE_SORT(int64_t)
MPTOPK_INSTANTIATE_SORT(KV)
MPTOPK_INSTANTIATE_SORT(KV64)
MPTOPK_INSTANTIATE_SORT(KKV)
MPTOPK_INSTANTIATE_SORT(KKKV)

#undef MPTOPK_INSTANTIATE_SORT

}  // namespace mptopk::gpu
