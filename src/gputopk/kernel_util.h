// Small device-side helpers shared by the top-k kernels: buffer fill,
// block-level exclusive prefix sum, and a tracking wrapper that measures the
// simulated time consumed by a sequence of launches.
#ifndef MPTOPK_GPUTOPK_KERNEL_UTIL_H_
#define MPTOPK_GPUTOPK_KERNEL_UTIL_H_

#include <cstddef>

#include "common/bits.h"
#include "common/status.h"
#include "simt/device.h"
#include "simt/exec_ctx.h"

namespace mptopk::gpu {

/// Fills buf[offset, offset+count) with `value` using a grid-stride kernel
/// (counted traffic, like cudaMemset).
template <typename T>
Status FillDevice(const simt::ExecCtx& dev, simt::DeviceBuffer<T>& buf,
                  size_t offset, size_t count, T value) {
  if (count == 0) return Status::OK();
  simt::GlobalSpan<T> g(buf);
  const int block = 256;
  const int grid = static_cast<int>(
      std::min<uint64_t>(1024, CeilDiv(count, block)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = block, .name = "fill"},
      [&](simt::Block& blk) {
        blk.ForEachThread([&](simt::Thread& t) {
          size_t stride = static_cast<size_t>(grid) * block;
          for (size_t i = static_cast<size_t>(blk.block_idx()) * block + t.tid;
               i < count; i += stride) {
            g.Write(t, offset + i, value);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

template <typename T>
Status FillDevice(simt::Device& dev, simt::DeviceBuffer<T>& buf, size_t offset,
                  size_t count, T value) {
  return FillDevice(simt::ExecCtx(dev), buf, offset, count, value);
}

/// Block-scope exclusive prefix sum over `count` uint32 values living in
/// shared memory (Hillis-Steele over a power-of-two padded range). Must be
/// called from kernel (block) scope. On return, data[i] holds the exclusive
/// prefix sum of the original values and the block-wide total is stored in
/// *total_out (host-visible; the caller's kernel logic may use it in
/// subsequent regions).
///
/// Traffic note: this is the textbook O(n log n)-access scan GPU kernels use
/// inside a block; its shared traffic is counted like any other access.
inline void BlockExclusiveScan(simt::Block& blk,
                               simt::SharedSpan<uint32_t> data, size_t count,
                               simt::SharedSpan<uint32_t> scratch,
                               uint32_t* total_out) {
  // scratch must have >= count entries.
  const size_t n = count;
  // Hillis-Steele inclusive scan, ping-ponging between data and scratch.
  simt::SharedSpan<uint32_t> src = data;
  simt::SharedSpan<uint32_t> dst = scratch;
  for (size_t offset = 1; offset < n; offset <<= 1) {
    blk.ForEachThread([&](simt::Thread& t) {
      for (size_t i = t.tid; i < n; i += blk.block_dim()) {
        uint32_t v = src.Read(t, i);
        if (i >= offset) v += src.Read(t, i - offset);
        dst.Write(t, i, v);
      }
    });
    blk.Sync();
    std::swap(src, dst);
  }
  // The exclusive shift below writes into `data` while reading src[i-1];
  // if the ping-pong left the inclusive scan in `data` itself, lane order
  // would overwrite values before they are read. Bounce to scratch first.
  bool src_is_data = true;
  for (size_t offset = 1; offset < n; offset <<= 1) src_is_data = !src_is_data;
  if (src_is_data && n > 1) {
    blk.ForEachThread([&](simt::Thread& t) {
      for (size_t i = t.tid; i < n; i += blk.block_dim()) {
        scratch.Write(t, i, data.Read(t, i));
      }
    });
    blk.Sync();
    src = scratch;
  }
  // src now holds the inclusive scan; shift right by one into `data` to make
  // it exclusive, capturing the block-wide total from the last element.
  uint32_t total = 0;
  blk.ForEachThread([&](simt::Thread& t) {
    for (size_t i = t.tid; i < n; i += blk.block_dim()) {
      if (i == n - 1) total = src.Read(t, i);
      uint32_t prev = i == 0 ? 0u : src.Read(t, i - 1);
      data.Write(t, i, prev);
    }
  });
  blk.Sync();
  if (total_out != nullptr) *total_out = total;
}

/// RAII-style tracker: captures the device's simulated-time and launch
/// counters so an algorithm can report exactly what it consumed.
class DeviceTimeTracker {
 public:
  explicit DeviceTimeTracker(simt::Device& dev)
      : dev_(dev), start_ms_(dev.total_sim_ms()),
        start_launches_(dev.kernel_log().size()) {}
  explicit DeviceTimeTracker(const simt::ExecCtx& ctx)
      : DeviceTimeTracker(ctx.device()) {}

  double ElapsedMs() const { return dev_.total_sim_ms() - start_ms_; }
  int Launches() const {
    return static_cast<int>(dev_.kernel_log().size() - start_launches_);
  }

 private:
  simt::Device& dev_;
  double start_ms_;
  size_t start_launches_;
};


/// Workspace for TwoWayCompactTile: shared buffers allocated once per block
/// and reused across the block's tiles (AllocShared must not be called in a
/// loop).
template <typename E>
struct TwoWayCompactWorkspace {
  simt::SharedSpan<E> tile;
  simt::SharedSpan<E> hi_stage;
  simt::SharedSpan<E> eq_stage;
  simt::SharedSpan<uint32_t> th_hi;    // per-thread hi counts -> offsets
  simt::SharedSpan<uint32_t> th_eq;    // per-thread eq counts -> offsets
  simt::SharedSpan<uint32_t> scratch;  // scan scratch
  simt::SharedSpan<uint32_t> meta;     // totals + reserved global bases

  static TwoWayCompactWorkspace Alloc(simt::Block& blk, size_t tile_cap) {
    TwoWayCompactWorkspace w;
    w.tile = blk.AllocShared<E>(tile_cap);
    w.hi_stage = blk.AllocShared<E>(tile_cap);
    w.eq_stage = blk.AllocShared<E>(tile_cap);
    w.th_hi = blk.AllocShared<uint32_t>(blk.block_dim());
    w.th_eq = blk.AllocShared<uint32_t>(blk.block_dim());
    w.scratch = blk.AllocShared<uint32_t>(blk.block_dim());
    w.meta = blk.AllocShared<uint32_t>(4);
    return w;
  }
};

/// Scan-based two-way compaction of one tile (no same-word atomic storms):
/// classify(e) returns +1 for the "hi" stream, 0 for the "eq" stream, -1 to
/// drop. Hi elements are appended (via one global counter reservation per
/// tile) to out_hi[out_hi_offset + counters[0]...], eq elements to
/// out_eq[counters[1]...]. Must be called from block scope with a workspace
/// allocated once per block.
template <typename E, typename ClassifyFn>
void TwoWayCompactTile(simt::Block& blk, TwoWayCompactWorkspace<E>& w,
                       simt::GlobalSpan<E> in, size_t base, size_t end,
                       ClassifyFn classify, simt::GlobalSpan<E> out_hi,
                       size_t out_hi_offset, simt::GlobalSpan<E> out_eq,
                       simt::GlobalSpan<uint32_t> counters) {
  const int nt = blk.block_dim();
  const size_t count = end - base;

  // Stage the tile and count each thread's strided share (strided walks are
  // bank-conflict-free; selection does not need stable order).
  blk.ForEachThread([&](simt::Thread& t) {
    for (size_t i = t.tid; i < count; i += nt) {
      w.tile.Write(t, i, in.Read(t, base + i));
    }
  });
  blk.Sync();
  blk.ForEachThread([&](simt::Thread& t) {
    uint32_t n_hi = 0, n_eq = 0;
    for (size_t i = t.tid; i < count; i += nt) {
      int c = classify(w.tile.Read(t, i));
      n_hi += c > 0;
      n_eq += c == 0;
    }
    w.th_hi.Write(t, t.tid, n_hi);
    w.th_eq.Write(t, t.tid, n_eq);
  });
  blk.Sync();

  uint32_t hi_total = 0, eq_total = 0;
  BlockExclusiveScan(blk, w.th_hi, nt, w.scratch, &hi_total);
  BlockExclusiveScan(blk, w.th_eq, nt, w.scratch, &eq_total);

  // One global range reservation per stream per tile.
  blk.ForEachThread([&](simt::Thread& t) {
    if (t.tid == 0) {
      w.meta.Write(t, 0, hi_total);
      w.meta.Write(t, 1, eq_total);
      w.meta.Write(t, 2, counters.AtomicAdd(t, 0, hi_total));
      w.meta.Write(t, 3, counters.AtomicAdd(t, 1, eq_total));
    }
  });
  blk.Sync();

  // Place each thread's matches at its scanned offsets, then copy out
  // coalesced.
  blk.ForEachThread([&](simt::Thread& t) {
    uint32_t hi_pos = w.th_hi.Read(t, t.tid);
    uint32_t eq_pos = w.th_eq.Read(t, t.tid);
    for (size_t i = t.tid; i < count; i += nt) {
      E e = w.tile.Read(t, i);
      int c = classify(e);
      if (c > 0) {
        w.hi_stage.Write(t, hi_pos++, e);
      } else if (c == 0) {
        w.eq_stage.Write(t, eq_pos++, e);
      }
    }
  });
  blk.Sync();
  blk.ForEachThread([&](simt::Thread& t) {
    uint32_t hi_n = w.meta.Read(t, 0);
    uint32_t hi_base = w.meta.Read(t, 2);
    for (uint32_t i = t.tid; i < hi_n; i += nt) {
      out_hi.Write(t, out_hi_offset + hi_base + i, w.hi_stage.Read(t, i));
    }
    uint32_t eq_n = w.meta.Read(t, 1);
    uint32_t eq_base = w.meta.Read(t, 3);
    for (uint32_t i = t.tid; i < eq_n; i += nt) {
      out_eq.Write(t, eq_base + i, w.eq_stage.Read(t, i));
    }
  });
  blk.Sync();
}

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_KERNEL_UTIL_H_
