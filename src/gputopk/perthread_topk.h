// Per-Thread Top-K (paper Sections 3.1, 4.1, Appendix A): every thread
// maintains its own k-element min-heap over a strided (coalesced) slice of
// the input; per-thread results are reduced recursively, ending in a
// single-block merge.
//
// Two variants:
//  * shared-memory heaps (default): heap slot j of thread t lives at
//    smem[j*nt + t] (interleaved, bank-conflict-free for uniform access).
//    Shared usage k * sizeof(E) * nt limits the block size and, through
//    occupancy, memory bandwidth — the paper's k >= 32 slowdown and the
//    hard failure at k=512 (floats) / k=256 (doubles) both fall out of the
//    resource model.
//  * register buffers (Appendix A): an unordered buffer scanned linearly on
//    every insert; entries beyond the register budget spill to local
//    memory, billed at global bandwidth.
//
// Performance is data dependent: sorted-ascending input forces a heap
// update per element (worst case, paper Figure 12a / 18).
#ifndef MPTOPK_GPUTOPK_PERTHREAD_TOPK_H_
#define MPTOPK_GPUTOPK_PERTHREAD_TOPK_H_

#include <cstddef>

#include "common/status.h"
#include "common/tuple_types.h"
#include "gputopk/topk_result.h"
#include "simt/device.h"
#include "simt/exec_ctx.h"

namespace mptopk::gpu {

struct PerThreadOptions {
  /// Use the Appendix A register-buffer variant instead of shared-memory
  /// heaps.
  bool use_registers = false;
  /// Registers available per thread before spilling to local memory
  /// (Appendix A model; roughly the occupancy-neutral budget).
  int register_budget = 64;
  /// Total threads launched. 0 = auto (enough to cover the device, capped
  /// so every thread sees a few k's worth of elements).
  int total_threads = 0;
};

/// Computes the top-k of device-resident data[0, n). Any 1 <= k <= n.
/// Fails with ResourceExhausted when k * sizeof(E) * 32 exceeds shared
/// memory per block (paper Section 4.1).
template <typename E>
StatusOr<TopKResult<E>> PerThreadTopKDevice(const simt::ExecCtx& dev,
                                            simt::DeviceBuffer<E>& data,
                                            size_t n, size_t k,
                                            const PerThreadOptions& opts = {});

/// Host-staging convenience wrapper.
template <typename E>
StatusOr<TopKResult<E>> PerThreadTopK(const simt::ExecCtx& dev, const E* data,
                                      size_t n, size_t k,
                                      const PerThreadOptions& opts = {});

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_PERTHREAD_TOPK_H_
