// Sampling-based hybrid top-k — an implementation of the paper's
// future-work direction ("hybrids of the presented algorithms ... as well
// as hybrid and adaptive solutions", Section 8).
//
// A small strided sample is read (one sector per element, ~free), its exact
// top-m computed with bitonic top-k (tiny), and the m-th sampled key used
// as a selection pivot: one threshold-filter pass compacts the few
// elements >= pivot (warp-ballot compaction: ~one coalesced read plus the
// matched writes), and bitonic top-k finishes on the survivors. Expected
// cost ~1.05 input reads — below optimized bitonic's shared-memory-bound
// ~1.5-2x-of-read cost at every size, for any key distribution the sample
// can discriminate.
//
// Correctness never depends on sampling luck: if fewer than k elements
// reach the pivot, or ties/adversarial data overflow the candidate cap
// (e.g. bucket-killer inputs where almost all keys are equal), the
// algorithm falls back to plain bitonic over everything, inheriting its
// robustness at the price of the wasted sample pass.
#ifndef MPTOPK_GPUTOPK_HYBRID_TOPK_H_
#define MPTOPK_GPUTOPK_HYBRID_TOPK_H_

#include <cstddef>

#include "common/status.h"
#include "common/tuple_types.h"
#include "gputopk/topk_result.h"
#include "simt/device.h"
#include "simt/exec_ctx.h"

namespace mptopk::gpu {

struct HybridOptions {
  /// Fall back to plain bitonic when the threshold filter would keep more
  /// than this fraction of the input (non-discriminating pivot).
  double max_candidate_fraction = 0.25;
};

/// Top-k of device-resident data[0, n) via the sampled-pivot + bitonic
/// pipeline. Requires power-of-two k (like bitonic; the TopK dispatcher's
/// round-up applies if you need arbitrary k). Input is not modified.
template <typename E>
StatusOr<TopKResult<E>> HybridTopKDevice(const simt::ExecCtx& dev,
                                         simt::DeviceBuffer<E>& data,
                                         size_t n, size_t k,
                                         const HybridOptions& opts = {});

/// Host-staging convenience wrapper.
template <typename E>
StatusOr<TopKResult<E>> HybridTopK(const simt::ExecCtx& dev, const E* data, size_t n,
                                   size_t k, const HybridOptions& opts = {});

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_HYBRID_TOPK_H_
