// Larger-than-GPU-memory top-k (paper Section 4.3, "Data larger than GPU
// memory"): the input is streamed through the device in memory-sized
// chunks; each chunk's top-k candidates are retained on-device and reduced
// at the end. The reductive nature of top-k makes the final reduction
// negligible (c * k elements for c chunks), and transfer can overlap with
// compute on real hardware — here PCIe staging is accounted separately so
// both the overlapped and serialized costs can be reported.
#ifndef MPTOPK_GPUTOPK_CHUNKED_H_
#define MPTOPK_GPUTOPK_CHUNKED_H_

#include <cstddef>

#include "common/status.h"
#include "gputopk/topk.h"

namespace mptopk::gpu {

template <typename E>
struct ChunkedTopKResult {
  std::vector<E> items;  ///< top-k, descending
  double kernel_ms = 0.0;
  double pcie_ms = 0.0;
  /// Time if transfer overlaps compute (max) vs fully serialized (sum).
  double overlapped_ms = 0.0;
  double serialized_ms = 0.0;
  int chunks = 0;
};

/// Streams data[0, n) through the device in chunks of `chunk_elems`
/// (0 = auto: an eighth of device memory), computing the global top-k.
/// Requirements follow the underlying algorithm (default bitonic:
/// power-of-two k handled via the dispatcher's round-up).
template <typename E>
StatusOr<ChunkedTopKResult<E>> ChunkedTopK(const simt::ExecCtx& dev, const E* data,
                                           size_t n, size_t k,
                                           size_t chunk_elems = 0,
                                           Algorithm algo =
                                               Algorithm::kBitonic);

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_CHUNKED_H_
