// Bucket Select implementation. See bucket_select.h for the algorithm
// outline. All range arithmetic happens in the order-preserving unsigned
// key-bit domain: bucket widths are integral, the range shrinks 16x per
// pass, and float/int keys share the machinery.
#include "gputopk/bucket_select.h"

#include <algorithm>

#include "common/bits.h"
#include "common/key_transform.h"
#include "gputopk/kernel_util.h"

namespace mptopk::gpu {
namespace {

using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::Thread;

constexpr int kBuckets = 16;
constexpr int kBlockDim = 256;
constexpr int kMaxPasses = 64;
constexpr int kMaxGrid = 128;  // bounded grid; blocks cover element ranges

// Sized so the scan-based compaction workspace (3 staged tiles + per-thread
// counters) fits 48 KiB shared memory.
template <typename E>
constexpr size_t BucketTile() {
  return sizeof(E) <= 4 ? 2048 : (sizeof(E) <= 12 ? 1024 : 512);
}

template <typename E>
using KeyBits = typename KeyTraits<typename ElementTraits<E>::Key>::Unsigned;

template <typename E>
KeyBits<E> BitsOf(const E& e) {
  using Key = typename ElementTraits<E>::Key;
  return KeyTraits<Key>::ToOrderedBits(ElementTraits<E>::PrimaryKey(e));
}

// Bucket of value v within [lo, hi]: equi-width over the unsigned domain.
template <typename U>
uint32_t BucketOf(U v, U lo, U width) {
  U idx = (v - lo) / width;
  return static_cast<uint32_t>(
      std::min<U>(idx, static_cast<U>(kBuckets - 1)));
}

// First pass: min/max of the key bits (shared tree reduction per block, one
// global atomic pair per block).
template <typename E>
Status LaunchMinMax(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                    GlobalSpan<uint64_t> minmax) {
  const size_t tile = BucketTile<E>();
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, tile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), tile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "bucket_minmax"},
      [&](Block& blk) {
        auto mn = blk.AllocShared<uint64_t>(kBlockDim);
        auto mx = blk.AllocShared<uint64_t>(kBlockDim);
        size_t base = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t end = std::min(base + per_block, n);
        blk.ForEachThread([&](Thread& t) {
          uint64_t lo = UINT64_MAX, hi = 0;
          for (size_t i = base + t.tid; i < end; i += kBlockDim) {
            uint64_t v = static_cast<uint64_t>(BitsOf(in.Read(t, i)));
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
          mn.Write(t, t.tid, lo);
          mx.Write(t, t.tid, hi);
        });
        blk.Sync();
        for (int stride = kBlockDim / 2; stride > 0; stride >>= 1) {
          blk.ForEachThread([&](Thread& t) {
            if (t.tid < stride) {
              mn.Write(t, t.tid,
                       std::min(mn.Read(t, t.tid), mn.Read(t, t.tid + stride)));
              mx.Write(t, t.tid,
                       std::max(mx.Read(t, t.tid), mx.Read(t, t.tid + stride)));
            }
          });
          blk.Sync();
        }
        blk.ForEachThread([&](Thread& t) {
          if (t.tid == 0) {
            minmax.ReduceMin(t, 0, mn.Read(t, 0));
            minmax.ReduceMax(t, 1, mx.Read(t, 0));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// k == 1 fast path: one more scan to fetch (any) element matching the max.
template <typename E>
Status LaunchGatherMax(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                       uint64_t max_bits, GlobalSpan<E> result,
                       GlobalSpan<uint32_t> flag) {
  const size_t tile = BucketTile<E>();
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, tile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), tile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "bucket_gather_max"},
      [&](Block& blk) {
        size_t base = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t end = std::min(base + per_block, n);
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = base + t.tid; i < end; i += kBlockDim) {
            E e = in.Read(t, i);
            if (static_cast<uint64_t>(BitsOf(e)) == max_bits) {
              if (flag.AtomicAdd(t, 0, 1u) == 0) {
                result.Write(t, 0, e);
              }
            }
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// 16-bin histogram over the current range.
template <typename E>
Status LaunchBucketHistogram(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                             KeyBits<E> lo, KeyBits<E> width,
                             GlobalSpan<uint32_t> hist) {
  const size_t tile = BucketTile<E>();
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, tile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), tile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "bucket_histogram"},
      [&](Block& blk) {
        auto counts = blk.AllocShared<uint32_t>(kBuckets);
        blk.ForEachThread([&](Thread& t) {
          if (t.tid < kBuckets) counts.Write(t, t.tid, 0);
        });
        blk.Sync();
        size_t base = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t end = std::min(base + per_block, n);
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = base + t.tid; i < end; i += kBlockDim) {
            counts.AtomicAdd(t, BucketOf(BitsOf(in.Read(t, i)), lo, width),
                             1u);
          }
        });
        blk.Sync();
        blk.ForEachThread([&](Thread& t) {
          if (t.tid < kBuckets) {
            uint32_t c = counts.Read(t, t.tid);
            if (c != 0) hist.ReduceAdd(t, t.tid, c);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Emits elements above the pivot bucket into the result and pivot-bucket
// elements into next_cand via scan-based per-tile compaction.
template <typename E>
Status LaunchBucketCluster(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                           KeyBits<E> lo, KeyBits<E> width, uint32_t pivot,
                           GlobalSpan<E> result, size_t emitted,
                           GlobalSpan<E> next_cand,
                           GlobalSpan<uint32_t> counters) {
  const size_t tile = BucketTile<E>();
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, tile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), tile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "bucket_cluster"},
      [&](Block& blk) {
        auto w = TwoWayCompactWorkspace<E>::Alloc(blk, tile);
        size_t range_lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t range_hi = std::min(range_lo + per_block, n);
        for (size_t base = range_lo; base < range_hi; base += tile) {
          size_t end = std::min(base + tile, range_hi);
          TwoWayCompactTile<E>(
              blk, w, in, base, end,
              [&](const E& e) {
                uint32_t b = BucketOf(BitsOf(e), lo, width);
                return b > pivot ? 1 : (b == pivot ? 0 : -1);
              },
              result, emitted, next_cand, counters);
        }
      });
  return st.ok() ? Status::OK() : st.status();
}

template <typename E>
Status LaunchCopyOut(const simt::ExecCtx& dev, GlobalSpan<E> src, size_t count,
                     GlobalSpan<E> result, size_t emitted) {
  const int grid =
      static_cast<int>(std::min<uint64_t>(256, CeilDiv(count, kBlockDim)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "bucket_copy_out"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          size_t stride = static_cast<size_t>(grid) * kBlockDim;
          for (size_t i =
                   static_cast<size_t>(blk.block_idx()) * kBlockDim + t.tid;
               i < count; i += stride) {
            result.Write(t, emitted + i, src.Read(t, i));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

}  // namespace

template <typename E>
StatusOr<TopKResult<E>> BucketSelectTopKDevice(const simt::ExecCtx& dev,
                                               DeviceBuffer<E>& data,
                                               size_t n, size_t k) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  using U = KeyBits<E>;
  DeviceTimeTracker tracker(dev);
  MPTOPK_ASSIGN_OR_RETURN(auto result_buf, dev.Alloc<E>(k));
  MPTOPK_ASSIGN_OR_RETURN(auto minmax_buf, dev.Alloc<uint64_t>(2));
  minmax_buf.host_data()[0] = UINT64_MAX;
  minmax_buf.host_data()[1] = 0;

  GlobalSpan<E> input(data);
  GlobalSpan<E> result(result_buf);
  GlobalSpan<uint64_t> minmax(minmax_buf);
  MPTOPK_RETURN_NOT_OK(LaunchMinMax(dev, input, n, minmax));
  uint64_t mm[2];
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(mm, minmax_buf, 2));
  U lo = static_cast<U>(mm[0]);
  U hi = static_cast<U>(mm[1]);

  auto finish = [&](int launches_unused) -> StatusOr<TopKResult<E>> {
    (void)launches_unused;
    TopKResult<E> out;
    out.items.resize(k);
    MPTOPK_RETURN_NOT_OK(dev.CopyToHost(out.items.data(), result_buf, k));
    SortDescending(&out.items);
    out.kernel_ms = tracker.ElapsedMs();
    out.kernels_launched = tracker.Launches();
    return out;
  };

  if (k == 1) {
    // Paper: at k=1 bucket select terminates right after min/max.
    MPTOPK_ASSIGN_OR_RETURN(auto flag, dev.Alloc<uint32_t>(1));
    flag.host_data()[0] = 0;
    GlobalSpan<uint32_t> f(flag);
    MPTOPK_RETURN_NOT_OK(LaunchGatherMax(dev, input, n, mm[1], result, f));
    return finish(0);
  }

  MPTOPK_ASSIGN_OR_RETURN(auto cand_a, dev.Alloc<E>(n));
  MPTOPK_ASSIGN_OR_RETURN(auto cand_b, dev.Alloc<E>(n));
  MPTOPK_ASSIGN_OR_RETURN(auto hist_buf, dev.Alloc<uint32_t>(kBuckets));
  MPTOPK_ASSIGN_OR_RETURN(auto counters, dev.Alloc<uint32_t>(2));
  GlobalSpan<E> candidates = input;
  GlobalSpan<E> next(cand_a), spare(cand_b);
  GlobalSpan<uint32_t> histspan(hist_buf);
  GlobalSpan<uint32_t> cnts(counters);

  size_t cand_count = n;
  size_t emitted = 0;
  size_t k_rem = k;
  for (int pass = 0; pass < kMaxPasses && k_rem > 0; ++pass) {
    if (lo == hi || cand_count == k_rem) {
      // Degenerate range (all candidates tie) or exact fit: flush.
      MPTOPK_RETURN_NOT_OK(
          LaunchCopyOut(dev, candidates, k_rem, result, emitted));
      k_rem = 0;
      break;
    }
    U width = static_cast<U>((hi - lo) / kBuckets + 1);
    MPTOPK_RETURN_NOT_OK(FillDevice<uint32_t>(dev, hist_buf, 0, kBuckets, 0));
    MPTOPK_RETURN_NOT_OK(
        LaunchBucketHistogram(dev, candidates, cand_count, lo, width,
                              histspan));
    uint32_t h[kBuckets];
    MPTOPK_RETURN_NOT_OK(dev.CopyToHost(h, hist_buf, kBuckets));

    size_t cum = 0;
    int pivot = kBuckets - 1;
    for (int b = kBuckets - 1; b >= 0; --b) {
      cum += h[b];
      if (cum >= k_rem) {
        pivot = b;
        break;
      }
    }
    const size_t hi_count = cum - h[pivot];

    MPTOPK_RETURN_NOT_OK(FillDevice<uint32_t>(dev, counters, 0, 2, 0));
    MPTOPK_RETURN_NOT_OK(LaunchBucketCluster(
        dev, candidates, cand_count, lo, width,
        static_cast<uint32_t>(pivot), result, emitted, next, cnts));
    emitted += hi_count;
    k_rem -= hi_count;
    cand_count = h[pivot];
    candidates = next;
    std::swap(next, spare);

    // Narrow the range to the pivot bucket (overflow-safe at the top of the
    // unsigned domain).
    U new_lo = static_cast<U>(lo + width * static_cast<U>(pivot));
    U new_hi = static_cast<U>(new_lo + (width - 1));
    if (new_hi < new_lo || new_hi > hi) new_hi = hi;
    lo = new_lo;
    hi = new_hi;
  }
  if (k_rem > 0) {
    return Status::Internal("bucket select failed to converge");
  }
  return finish(0);
}

template <typename E>
StatusOr<TopKResult<E>> BucketSelectTopK(const simt::ExecCtx& dev, const E* data,
                                         size_t n, size_t k) {
  MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
  return BucketSelectTopKDevice(dev, buf, n, k);
}

#define MPTOPK_INSTANTIATE_BSELECT(E)                                       \
  template StatusOr<TopKResult<E>> BucketSelectTopKDevice<E>(               \
      const simt::ExecCtx&, DeviceBuffer<E>&, size_t, size_t);                     \
  template StatusOr<TopKResult<E>> BucketSelectTopK<E>(                     \
      const simt::ExecCtx&, const E*, size_t, size_t);

MPTOPK_INSTANTIATE_BSELECT(float)
MPTOPK_INSTANTIATE_BSELECT(double)
MPTOPK_INSTANTIATE_BSELECT(uint32_t)
MPTOPK_INSTANTIATE_BSELECT(int32_t)
MPTOPK_INSTANTIATE_BSELECT(uint64_t)
MPTOPK_INSTANTIATE_BSELECT(int64_t)
MPTOPK_INSTANTIATE_BSELECT(KV)
MPTOPK_INSTANTIATE_BSELECT(KV64)
MPTOPK_INSTANTIATE_BSELECT(KKV)
MPTOPK_INSTANTIATE_BSELECT(KKKV)

#undef MPTOPK_INSTANTIATE_BSELECT

}  // namespace mptopk::gpu
