#include "gputopk/bitonic_plan.h"

#include <algorithm>

namespace mptopk::gpu {

std::vector<BitonicWindow> PlanBitonicWindows(
    const std::vector<BitonicStep>& steps, int width_budget_bits) {
  const int wb = std::max(1, width_budget_bits);
  std::vector<BitonicWindow> windows;
  size_t i = 0;
  while (i < steps.size()) {
    // Maximal run with comparison-distance bit decreasing by exactly one.
    size_t j = i;
    while (j + 1 < steps.size() &&
           Log2Floor(steps[j + 1].inc) + 1 ==
               static_cast<uint64_t>(Log2Floor(steps[j].inc))) {
      ++j;
    }
    const int run_hi = Log2Floor(steps[i].inc);
    const int run_lo = Log2Floor(steps[j].inc);
    // Absorb the whole run into the previous window if it fits the budget.
    if (!windows.empty()) {
      BitonicWindow& prev = windows.back();
      int lo = std::min(prev.lo_bit, run_lo);
      int hi = std::max(prev.hi_bit, run_hi);
      if (hi - lo + 1 <= wb) {
        prev.lo_bit = lo;
        prev.hi_bit = hi;
        for (size_t s = i; s <= j; ++s) prev.steps.push_back(steps[s]);
        i = j + 1;
        continue;
      }
    }
    // Low-aligned split: a short leading remainder window (strided), then
    // full-width windows ending at distance 1 (contiguous chunks,
    // conflict-free under padding).
    size_t len = j - i + 1;
    size_t lead = len % wb;
    size_t pos = i;
    auto emit = [&](size_t count) {
      BitonicWindow w{Log2Floor(steps[pos + count - 1].inc),
                      Log2Floor(steps[pos].inc),
                      {}};
      for (size_t s = pos; s < pos + count; ++s) w.steps.push_back(steps[s]);
      windows.push_back(std::move(w));
      pos += count;
    };
    if (lead > 0) emit(lead);
    while (pos <= j) emit(wb);
    i = j + 1;
  }
  return windows;
}

}  // namespace mptopk::gpu
