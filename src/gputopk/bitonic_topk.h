// Bitonic Top-K: the paper's core contribution (Sections 3.2 and 4.3).
//
// The algorithm decomposes bitonic sort into three operators —
//
//   local sort : build sorted runs of length k (alternating direction),
//   merge      : pairwise max of adjacent runs; the k greatest survive as a
//                bitonic sequence and the problem size halves,
//   rebuild    : re-sort the bitonic k-runs in log(k) steps,
//
// — and repeats merge+rebuild until k elements remain. Unlike a full bitonic
// sort it performs no unnecessary work, yet keeps the data-independent,
// massively parallel structure (no adversarial input distribution exists).
//
// The six optimizations of Section 4.3 are individually toggleable through
// BitonicOptions so the ablation study (paper's 521ms -> 15.4ms ladder and
// Figure 8) can be replayed and each variant can be tested for correctness:
//
//   1. use_shared_memory    stage each operator's tile in shared memory
//   2. fuse_kernels         fuse operators into SortReducer/BitonicReducer
//   3. combine_steps        run windows of steps in registers, sharing loads
//   4. pad_shared           pad shared arrays (i + i/32) to break conflicts
//   5. chunk_permute        rotate per-lane access order inside combined
//                           steps to break residual bank conflicts
//   6. reassign_partitions  after a reduction, give half the threads all the
//                           work so combined steps stay maximal
//
// Results are returned in descending primary-key order. The input buffer is
// not modified (out-of-place; auxiliary memory ~ n/8, paper Section 4.3).
#ifndef MPTOPK_GPUTOPK_BITONIC_TOPK_H_
#define MPTOPK_GPUTOPK_BITONIC_TOPK_H_

#include <cstddef>

#include "common/status.h"
#include "common/tuple_types.h"
#include "gputopk/topk_result.h"
#include "simt/device.h"
#include "simt/exec_ctx.h"

namespace mptopk::gpu {

struct BitonicOptions {
  bool use_shared_memory = true;
  bool fuse_kernels = true;
  bool combine_steps = true;
  bool pad_shared = true;
  bool chunk_permute = true;
  bool reassign_partitions = true;
  /// Elements processed per thread in fused kernels (the paper's B, Figure
  /// 8). 0 = auto: 16 with padding, 8 without (beyond 8, unpadded combined
  /// steps double bank conflicts, Section 4.3).
  int elems_per_thread = 0;
  /// Threads per block. 0 = auto: 256, halved until the tile fits in shared
  /// memory for the element type.
  int block_dim = 0;

  /// All optimizations disabled: one kernel per bitonic step, operating
  /// directly on global memory (the 521ms baseline of Section 4.3).
  static BitonicOptions Naive() {
    return BitonicOptions{false, false, false, false, false, false, 0, 0};
  }
  /// Everything enabled (default).
  static BitonicOptions AllOptimizations() { return BitonicOptions{}; }
};

/// Computes the top-k (greatest by ElementTraits ordering) of the
/// device-resident `data[0, n)`. Requirements: 1 <= k <= n, k a power of
/// two, and k small enough that two runs fit a tile (k <= 1024 for all
/// supported element types at default settings).
///
/// Instantiated for: float, double, uint32_t, int32_t, uint64_t, int64_t,
/// KV, KV64, KKV, KKKV.
template <typename E>
StatusOr<TopKResult<E>> BitonicTopKDevice(const simt::ExecCtx& dev,
                                          simt::DeviceBuffer<E>& data,
                                          size_t n, size_t k,
                                          const BitonicOptions& opts = {});

/// Reduces a buffer that already consists of bitonic runs of length k (the
/// output contract of a SortReducer-style kernel, e.g. the query engine's
/// fused filter+top-k kernel) down to the sorted top-k. m must be a
/// multiple of k.
template <typename E>
StatusOr<TopKResult<E>> BitonicReduceRuns(const simt::ExecCtx& dev,
                                          simt::DeviceBuffer<E>& runs,
                                          size_t m, size_t k,
                                          const BitonicOptions& opts = {});

/// Convenience wrapper: stages `data` host->device (PCIe-accounted), runs
/// BitonicTopKDevice, reads back the k results.
template <typename E>
StatusOr<TopKResult<E>> BitonicTopK(const simt::ExecCtx& dev, const E* data,
                                    size_t n, size_t k,
                                    const BitonicOptions& opts = {});

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_BITONIC_TOPK_H_
