// INTERNAL: shared-memory building blocks of the bitonic top-k kernels --
// geometry resolution, combined-step window execution, in-shared merge, and
// the fused SortReducer/BitonicReducer/FinalReduce kernel launchers. Shared
// between gputopk/bitonic_topk.cc and the query engine's fused
// filter+top-k kernel (engine/, paper Section 5). Not a stable public API.
#ifndef MPTOPK_GPUTOPK_BITONIC_KERNELS_H_
#define MPTOPK_GPUTOPK_BITONIC_KERNELS_H_

#include <algorithm>
#include <vector>

#include "common/bits.h"
#include "gputopk/bitonic_plan.h"
#include "gputopk/bitonic_topk.h"
#include "gputopk/kernel_util.h"

namespace mptopk::gpu::bitonic {

using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::SharedSpan;
using simt::Thread;

using Step = BitonicStep;
using Window = BitonicWindow;

inline std::vector<Step> LocalSortSteps(uint32_t k) {
  return BitonicLocalSortSteps(k);
}
inline std::vector<Step> RebuildSteps(uint32_t k) {
  return BitonicRebuildSteps(k);
}
inline std::vector<Window> PlanWindows(const std::vector<Step>& steps,
                                       int width_budget_bits) {
  return PlanBitonicWindows(steps, width_budget_bits);
}

constexpr int kMaxElemsPerThread = 64;

// Resolved kernel geometry for one (element type, k, options) combination.
template <typename E>
struct Geometry {
  int nt = 256;          // threads per block
  int B = 16;            // elements per thread in fused kernels
  size_t tile = 4096;    // elements staged per block
  int merges = 1;        // merge (halving) rounds per fused kernel
  bool pad = true;
  bool permute = true;
  bool combine = true;
  bool reassign = true;

  size_t PadIdx(size_t i) const { return pad ? i + (i >> 5) : i; }
  size_t SharedElems(size_t logical) const {
    return pad ? logical + (logical >> 5) + 1 : logical;
  }
  int WindowBudget(size_t elems_per_thread) const {
    if (!combine) return 1;
    size_t cap = std::min<size_t>(elems_per_thread, B);
    return std::max(1, Log2Floor(std::max<size_t>(2, NextPowerOfTwo(cap))));
  }
};

template <typename E>
StatusOr<Geometry<E>> ResolveGeometry(const simt::DeviceSpec& spec, size_t k,
                                      const BitonicOptions& opts) {
  Geometry<E> g;
  g.pad = opts.pad_shared;
  g.permute = opts.chunk_permute;
  g.combine = opts.combine_steps;
  g.reassign = opts.reassign_partitions;
  g.B = opts.elems_per_thread > 0 ? opts.elems_per_thread
                                  : (opts.pad_shared ? 16 : 8);
  if (!IsPowerOfTwo(g.B) || g.B < 2 || g.B > kMaxElemsPerThread) {
    return Status::InvalidArgument("elems_per_thread must be a power of two "
                                   "in [2, 64]");
  }
  g.nt = opts.block_dim > 0 ? opts.block_dim : 256;
  if (!IsPowerOfTwo(g.nt) || g.nt < 32 ||
      g.nt > spec.max_threads_per_block) {
    return Status::InvalidArgument("block_dim must be a power of two in "
                                   "[32, max_threads_per_block]");
  }
  // Shrink the block until the (padded) tile fits in shared memory.
  while (g.nt > 32) {
    g.tile = static_cast<size_t>(g.nt) * g.B;
    if (g.SharedElems(g.tile) * sizeof(E) <= spec.shared_mem_per_block) break;
    g.nt >>= 1;
  }
  g.tile = static_cast<size_t>(g.nt) * g.B;
  if (g.SharedElems(g.tile) * sizeof(E) > spec.shared_mem_per_block) {
    return Status::ResourceExhausted(
        "bitonic tile does not fit in shared memory even at block_dim=32");
  }
  if (k * 2 > g.tile) {
    return Status::InvalidArgument(
        "k too large: two sorted runs of length k must fit one tile (k <= " +
        std::to_string(g.tile / 2) + " for this element type)");
  }
  // Each merge halves the tile; stop while at least one k-run pair remains.
  g.merges = std::min(Log2Floor(static_cast<uint64_t>(g.B)),
                      Log2Floor(g.tile / k));
  return g;
}

// ---------------------------------------------------------------------------
// Shared-memory building blocks (called from kernel/block scope).
// ---------------------------------------------------------------------------

// Executes one window of compare-exchange steps over the logical array
// s[0, m) staged in shared memory. `active_threads` threads each stage
// gpt * 2^w elements in registers. `permute` rotates each lane's group and
// intra-group access order (the paper's chunk permutation).
template <typename E>
void RunWindowShared(Block& blk, SharedSpan<E> s, size_t m, const Window& w,
                     int active_threads, const Geometry<E>& g) {
  const int lo = w.lo_bit;
  const int G = w.group_size();
  const size_t groups = m >> (w.hi_bit - w.lo_bit + 1);
  const int at = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(active_threads), groups));
  const size_t gpt = CeilDiv(groups, at);
  // Chunk permutation only matters for strided windows (comparison distance
  // > 1, paper Figure 10); contiguous windows (lo == 0) are conflict-free
  // under padding and are left untouched.
  const bool permute = g.permute && lo > 0;
  blk.ForEachThreadBelow(at, [&](Thread& t) {
    E regs[kMaxElemsPerThread];
    for (size_t gj = 0; gj < gpt; ++gj) {
      size_t order = (permute && gpt > 1)
                         ? (gj + static_cast<size_t>(t.lane)) % gpt
                         : gj;
      size_t grp = static_cast<size_t>(t.tid) * gpt + order;
      if (grp >= groups) continue;
      size_t base = ((grp >> lo) << (w.hi_bit + 1)) |
                    (grp & ((size_t{1} << lo) - 1));
      int rot = permute ? (t.lane % G) : 0;
      for (int jj = 0; jj < G; ++jj) {
        int j = (jj + rot) % G;
        regs[j] = s.Read(t, g.PadIdx(base + (static_cast<size_t>(j) << lo)));
      }
      for (const Step& st : w.steps) {
        int relbit = Log2Floor(st.inc) - lo;
        int rel = 1 << relbit;
        for (int j = 0; j < G; ++j) {
          if ((j >> relbit) & 1) continue;
          size_t gi = base + (static_cast<size_t>(j) << lo);
          bool ascending = (gi & st.dir) == 0;
          bool a_less = ElementTraits<E>::Less(regs[j], regs[j + rel]);
          // paper: swap = reverse XOR (x0 < x1); 'reverse' is the ascending
          // branch of the direction bit.
          if (ascending != a_less) std::swap(regs[j], regs[j + rel]);
        }
      }
      for (int jj = 0; jj < G; ++jj) {
        int j = (jj + rot) % G;
        s.Write(t, g.PadIdx(base + (static_cast<size_t>(j) << lo)), regs[j]);
      }
    }
  });
  blk.Sync();
}

template <typename E>
void RunStepsShared(Block& blk, SharedSpan<E> s, size_t m,
                    const std::vector<Step>& steps, int active_threads,
                    const Geometry<E>& g) {
  size_t ept = m / std::max(1, active_threads);
  const auto windows = PlanWindows(steps, g.WindowBudget(ept));
  for (const Window& w : windows) {
    RunWindowShared(blk, s, m, w, active_threads, g);
  }
}

// Pairwise-max merge of adjacent k-runs: s[0, m) -> s[0, m/2). Two regions
// (read into registers, barrier, write) because reads and writes overlap
// across threads.
template <typename E>
void MergeShared(Block& blk, SharedSpan<E> s, size_t m, size_t k,
                 const Geometry<E>& g) {
  const size_t outs = m / 2;
  const int at = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(blk.block_dim()), outs));
  const size_t opt = CeilDiv(outs, at);
  E* scratch = blk.ThreadScratch<E>(opt);
  // Outputs are assigned round-robin (j = jj*at + tid) so each warp touches
  // contiguous shared words -- conflict-free under padding.
  blk.ForEachThreadBelow(at, [&](Thread& t) {
    for (size_t jj = 0; jj < opt; ++jj) {
      size_t j = jj * at + t.tid;
      if (j >= outs) continue;
      size_t i = (j / k) * 2 * k + (j % k);
      E a = s.Read(t, g.PadIdx(i));
      E b = s.Read(t, g.PadIdx(i + k));
      scratch[static_cast<size_t>(t.tid) * opt + jj] =
          ElementTraits<E>::Less(a, b) ? b : a;
    }
  });
  blk.Sync();
  blk.ForEachThreadBelow(at, [&](Thread& t) {
    for (size_t jj = 0; jj < opt; ++jj) {
      size_t j = jj * at + t.tid;
      if (j >= outs) continue;
      s.Write(t, g.PadIdx(j), scratch[static_cast<size_t>(t.tid) * opt + jj]);
    }
  });
  blk.Sync();
}

// Threads to use for a rebuild over m elements: with partition reassignment
// only m/B threads work (keeping B elements each, maximal combined steps);
// without it all block threads share the m elements.
template <typename E>
int RebuildThreads(const Geometry<E>& g, size_t m) {
  if (!g.reassign) return g.nt;
  return static_cast<int>(std::max<size_t>(
      32, std::min<size_t>(g.nt, m / g.B > 0 ? m / g.B : 1)));
}

// ---------------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------------

// Coalesced tile load: global[in_base, in_base+count) -> shared (padded),
// sentinel-filling shared positions [count, tile).
template <typename E>
void LoadTile(Block& blk, GlobalSpan<E> in, size_t in_base, size_t count,
              SharedSpan<E> s, size_t tile, const Geometry<E>& g) {
  const E sentinel = ElementTraits<E>::LowestSentinel();
  blk.ForEachThread([&](Thread& t) {
    for (size_t i = t.tid; i < tile; i += blk.block_dim()) {
      E v = i < count ? in.Read(t, in_base + i) : sentinel;
      s.Write(t, g.PadIdx(i), v);
    }
  });
  blk.Sync();
}

template <typename E>
void StoreTile(Block& blk, SharedSpan<E> s, GlobalSpan<E> out, size_t out_base,
               size_t count, const Geometry<E>& g) {
  blk.ForEachThread([&](Thread& t) {
    for (size_t i = t.tid; i < count; i += blk.block_dim()) {
      out.Write(t, out_base + i, s.Read(t, g.PadIdx(i)));
    }
  });
  blk.Sync();
}

// Fused kernel 1 (SortReducer): local sort + (merge, rebuild)*(r-1) + merge.
// Reduces each tile of `tile` elements to tile >> merges outputs (bitonic
// k-runs).
template <typename E>
Status LaunchSortReducer(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                         GlobalSpan<E> out, size_t k, const Geometry<E>& g) {
  const int grid = static_cast<int>(CeilDiv(n, g.tile));
  const size_t opb = g.tile >> g.merges;  // outputs per block
  const auto local_steps = LocalSortSteps(static_cast<uint32_t>(k));
  const auto rebuild_steps = RebuildSteps(static_cast<uint32_t>(k));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = g.nt,
       .regs_per_thread = g.B + 16, .name = "bitonic_sort_reducer"},
      [&](Block& blk) {
        auto s = blk.AllocShared<E>(g.SharedElems(g.tile));
        size_t base = static_cast<size_t>(blk.block_idx()) * g.tile;
        size_t count = std::min(g.tile, n - std::min(n, base));
        LoadTile(blk, in, base, count, s, g.tile, g);
        RunStepsShared(blk, s, g.tile, local_steps, g.nt, g);
        size_t m = g.tile;
        for (int mg = 0; mg < g.merges; ++mg) {
          MergeShared(blk, s, m, k, g);
          m >>= 1;
          if (mg + 1 < g.merges) {
            RunStepsShared(blk, s, m, rebuild_steps, RebuildThreads(g, m), g);
          }
        }
        StoreTile(blk, s, out, static_cast<size_t>(blk.block_idx()) * opb, opb,
                  g);
      });
  return st.ok() ? Status::OK() : st.status();
}

// Fused kernel 2 (BitonicReducer): (rebuild, merge)*r on bitonic k-runs.
template <typename E>
Status LaunchBitonicReducer(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t m_in,
                            GlobalSpan<E> out, size_t k,
                            const Geometry<E>& g) {
  const int grid = static_cast<int>(CeilDiv(m_in, g.tile));
  const size_t opb = g.tile >> g.merges;
  const auto rebuild_steps = RebuildSteps(static_cast<uint32_t>(k));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = g.nt,
       .regs_per_thread = g.B + 16, .name = "bitonic_reducer"},
      [&](Block& blk) {
        auto s = blk.AllocShared<E>(g.SharedElems(g.tile));
        size_t base = static_cast<size_t>(blk.block_idx()) * g.tile;
        size_t count = std::min(g.tile, m_in - std::min(m_in, base));
        LoadTile(blk, in, base, count, s, g.tile, g);
        size_t m = g.tile;
        for (int mg = 0; mg < g.merges; ++mg) {
          RunStepsShared(blk, s, m, rebuild_steps, RebuildThreads(g, m), g);
          MergeShared(blk, s, m, k, g);
          m >>= 1;
        }
        StoreTile(blk, s, out, static_cast<size_t>(blk.block_idx()) * opb, opb,
                  g);
      });
  return st.ok() ? Status::OK() : st.status();
}

// Final single-block kernel: reduces m_in <= tile elements to the sorted
// top-k, written descending. `unsorted` selects whether the input still
// needs the initial local sort (small-n fast path) or consists of bitonic
// k-runs (reducer pipeline output).
template <typename E>
Status LaunchFinalReduce(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t m_in,
                         GlobalSpan<E> out_k, size_t k, bool unsorted,
                         const Geometry<E>& g) {
  const size_t p2 = NextPowerOfTwo(std::max(m_in, k));
  const auto local_steps = LocalSortSteps(static_cast<uint32_t>(k));
  const auto rebuild_steps = RebuildSteps(static_cast<uint32_t>(k));
  auto st = dev.Launch(
      {.grid_dim = 1, .block_dim = g.nt, .regs_per_thread = g.B + 16,
       .name = "bitonic_final_reduce"},
      [&](Block& blk) {
        auto s = blk.AllocShared<E>(g.SharedElems(p2));
        LoadTile(blk, in, 0, m_in, s, p2, g);
        size_t m = p2;
        if (unsorted) {
          RunStepsShared(blk, s, m, local_steps, g.nt, g);
          while (m > k) {
            MergeShared(blk, s, m, k, g);
            m >>= 1;
            if (m > k) {
              RunStepsShared(blk, s, m, rebuild_steps, RebuildThreads(g, m),
                             g);
            }
          }
        } else {
          while (m > k) {
            RunStepsShared(blk, s, m, rebuild_steps, RebuildThreads(g, m), g);
            MergeShared(blk, s, m, k, g);
            m >>= 1;
          }
        }
        // Sort the final (bitonic or already-sorted) k-run ascending, then
        // emit descending.
        RunStepsShared(blk, s, m, rebuild_steps, RebuildThreads(g, m), g);
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = t.tid; i < k; i += blk.block_dim()) {
            out_k.Write(t, i, s.Read(t, g.PadIdx(k - 1 - i)));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}


}  // namespace mptopk::gpu::bitonic

#endif  // MPTOPK_GPUTOPK_BITONIC_KERNELS_H_
