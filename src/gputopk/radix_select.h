// Radix Select top-k (paper Sections 2.3, 4.2): MSD-radix k-selection with
// 8-bit digits, revised as in the paper to
//   * emit elements from buckets above the pivot bucket directly into the
//     result during the clustering pass (no extra final pass),
//   * skip the clustering write when a pass achieves no reduction (the
//     bucket-killer defense that keeps worst case at sort cost),
//   * write out only the matched bucket rather than all buckets.
//
// Runtime is essentially independent of k but depends on the distribution:
// uniform integer keys shed a factor 256 per pass; adversarial inputs
// (bucket killer) degrade to full-scan cost per pass.
#ifndef MPTOPK_GPUTOPK_RADIX_SELECT_H_
#define MPTOPK_GPUTOPK_RADIX_SELECT_H_

#include <cstddef>

#include "common/status.h"
#include "common/tuple_types.h"
#include "gputopk/topk_result.h"
#include "simt/device.h"
#include "simt/exec_ctx.h"

namespace mptopk::gpu {

/// Computes the top-k of device-resident data[0, n) via MSD radix selection.
/// Any 1 <= k <= n is supported (k need not be a power of two). Ties at the
/// k-th value are broken arbitrarily. Input is not modified.
template <typename E>
StatusOr<TopKResult<E>> RadixSelectTopKDevice(const simt::ExecCtx& dev,
                                              simt::DeviceBuffer<E>& data,
                                              size_t n, size_t k);

/// Host-staging convenience wrapper.
template <typename E>
StatusOr<TopKResult<E>> RadixSelectTopK(const simt::ExecCtx& dev, const E* data,
                                        size_t n, size_t k);

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_RADIX_SELECT_H_
