// Implementation of bitonic top-k (see bitonic_topk.h for the algorithm
// description). The same step machinery drives every optimization level:
//
//  * a Step {dir, inc} is one compare-exchange round of the bitonic network
//    (paper Algorithms 2 and 4): pairs (i, i+inc) with (i & inc) == 0,
//    ascending when (i & dir) == 0;
//  * consecutive steps whose comparison distances fit a bit-window of width
//    w are executed as one "combined step": each thread stages 2^w elements
//    in registers, applies all comparisons, and writes once (Section 4.3,
//    "Combining/Sequentializing Multiple Steps");
//  * merge is the pairwise-max reduction that halves the candidate set
//    (Algorithm 3) — the surviving half is bitonic, which is the paper's key
//    insight.
#include "gputopk/bitonic_topk.h"

#include <algorithm>
#include <vector>

#include "common/bits.h"
#include "gputopk/bitonic_kernels.h"
#include "gputopk/kernel_util.h"

namespace mptopk::gpu {
namespace {

using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::SharedSpan;
using simt::Thread;

using namespace bitonic;

// --- Non-fused variants -----------------------------------------------------

// One bitonic step over global memory (the fully naive baseline: one kernel
// launch per step).
template <typename E>
Status LaunchGlobalStep(const simt::ExecCtx& dev, GlobalSpan<E> data, size_t m,
                        Step step, const Geometry<E>& g) {
  const size_t pairs = m / 2;
  const int block = g.nt;
  const int grid = static_cast<int>(
      std::min<uint64_t>(4096, CeilDiv(pairs, block)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = block, .name = "bitonic_global_step"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          size_t stride = static_cast<size_t>(grid) * block;
          for (size_t p = static_cast<size_t>(blk.block_idx()) * block + t.tid;
               p < pairs; p += stride) {
            size_t low = p & (step.inc - 1);
            size_t i = (p << 1) - low;
            E a = data.Read(t, i);
            E b = data.Read(t, i + step.inc);
            bool ascending = (i & step.dir) == 0;
            bool a_less = ElementTraits<E>::Less(a, b);
            if (ascending != a_less) std::swap(a, b);
            data.Write(t, i, a);
            data.Write(t, i + step.inc, b);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Merge over global memory: out[j] = max(in[i], in[i+k]) (ping-pong).
template <typename E>
Status LaunchGlobalMerge(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t m,
                         GlobalSpan<E> out, size_t k, const Geometry<E>& g) {
  const size_t outs = m / 2;
  const int block = g.nt;
  const int grid = static_cast<int>(
      std::min<uint64_t>(4096, CeilDiv(outs, block)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = block, .name = "bitonic_global_merge"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          size_t stride = static_cast<size_t>(grid) * block;
          for (size_t j = static_cast<size_t>(blk.block_idx()) * block + t.tid;
               j < outs; j += stride) {
            size_t i = (j / k) * 2 * k + (j % k);
            E a = in.Read(t, i);
            E b = in.Read(t, i + k);
            out.Write(t, j, ElementTraits<E>::Less(a, b) ? b : a);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Shared-memory staged (but unfused) operator: runs `steps` over tiles of
// `data[0, m)`, staging each tile in shared memory. Valid only while every
// step's comparison distance stays within a tile (true for local sort and
// rebuild, whose distances are < k <= tile/2).
template <typename E>
Status LaunchStagedSteps(const simt::ExecCtx& dev, GlobalSpan<E> data, size_t m,
                         const std::vector<Step>& steps, const char* name,
                         const Geometry<E>& g) {
  const size_t tile = std::min(g.tile, m);
  const int grid = static_cast<int>(CeilDiv(m, tile));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = g.nt, .regs_per_thread = g.B + 16,
       .name = name},
      [&](Block& blk) {
        auto s = blk.AllocShared<E>(g.SharedElems(tile));
        size_t base = static_cast<size_t>(blk.block_idx()) * tile;
        size_t count = std::min(tile, m - std::min(m, base));
        LoadTile(blk, data, base, count, s, tile, g);
        RunStepsShared(blk, s, tile, steps, g.nt, g);
        StoreTile(blk, s, data, base, count, g);
      });
  return st.ok() ? Status::OK() : st.status();
}

// Copies in[0,n) into work[0,p2), sentinel-padding the tail.
template <typename E>
Status LaunchCopyPad(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                     GlobalSpan<E> work, size_t p2, const Geometry<E>& g) {
  const E sentinel = ElementTraits<E>::LowestSentinel();
  const int block = g.nt;
  const int grid =
      static_cast<int>(std::min<uint64_t>(4096, CeilDiv(p2, block)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = block, .name = "bitonic_copy_pad"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          size_t stride = static_cast<size_t>(grid) * block;
          for (size_t i = static_cast<size_t>(blk.block_idx()) * block + t.tid;
               i < p2; i += stride) {
            work.Write(t, i, i < n ? in.Read(t, i) : sentinel);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// The global-memory pipeline used by both the fully naive variant and the
// shared-staged (unfused) variant.
template <typename E>
Status RunUnfused(const simt::ExecCtx& dev, DeviceBuffer<E>& data, size_t n, size_t k,
                  const BitonicOptions& opts, const Geometry<E>& g,
                  DeviceBuffer<E>* out_k) {
  const size_t p2 = NextPowerOfTwo(std::max(n, 2 * k));
  MPTOPK_ASSIGN_OR_RETURN(auto work_buf, dev.Alloc<E>(p2));
  MPTOPK_ASSIGN_OR_RETURN(auto aux_buf, dev.Alloc<E>(p2 / 2));
  GlobalSpan<E> in(data);
  GlobalSpan<E> work(work_buf);
  GlobalSpan<E> aux(aux_buf);
  MPTOPK_RETURN_NOT_OK(LaunchCopyPad(dev, in, n, work, p2, g));

  const auto local_steps = LocalSortSteps(static_cast<uint32_t>(k));
  const auto rebuild_steps = RebuildSteps(static_cast<uint32_t>(k));
  if (opts.use_shared_memory) {
    MPTOPK_RETURN_NOT_OK(
        LaunchStagedSteps(dev, work, p2, local_steps, "bitonic_local_sort", g));
  } else {
    for (const Step& st : local_steps) {
      MPTOPK_RETURN_NOT_OK(LaunchGlobalStep(dev, work, p2, st, g));
    }
  }
  size_t m = p2;
  GlobalSpan<E> cur = work, other = aux;
  while (m > k) {
    MPTOPK_RETURN_NOT_OK(LaunchGlobalMerge(dev, cur, m, other, k, g));
    std::swap(cur, other);
    m >>= 1;
    const bool last = m == k;
    // Rebuild the bitonic runs (always needed before output; mid-pipeline it
    // restores sorted runs for the next merge).
    if (opts.use_shared_memory) {
      MPTOPK_RETURN_NOT_OK(LaunchStagedSteps(dev, cur, m, rebuild_steps,
                                             "bitonic_rebuild", g));
    } else {
      for (const Step& st : rebuild_steps) {
        MPTOPK_RETURN_NOT_OK(LaunchGlobalStep(dev, cur, m, st, g));
      }
    }
    if (last) break;
  }
  // cur[0, k) now holds the ascending top-k run; emit descending.
  GlobalSpan<E> out(*out_k);
  auto st = dev.Launch(
      {.grid_dim = 1, .block_dim = g.nt, .name = "bitonic_emit"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = t.tid; i < k; i += blk.block_dim()) {
            out.Write(t, i, cur.Read(t, k - 1 - i));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// The fused pipeline: SortReducer, BitonicReducer*, FinalReduce.
template <typename E>
Status RunFused(const simt::ExecCtx& dev, DeviceBuffer<E>& data, size_t n, size_t k,
                const Geometry<E>& g, DeviceBuffer<E>* out_k) {
  GlobalSpan<E> in(data);
  GlobalSpan<E> out(*out_k);
  if (n <= g.tile) {
    return LaunchFinalReduce(dev, in, n, out, k, /*unsorted=*/true, g);
  }
  const size_t opb = g.tile >> g.merges;
  const size_t m1 = CeilDiv(n, g.tile) * opb;
  const size_t m2 = CeilDiv(m1, g.tile) * opb;
  MPTOPK_ASSIGN_OR_RETURN(auto buf_a, dev.Alloc<E>(m1));
  MPTOPK_ASSIGN_OR_RETURN(auto buf_b, dev.Alloc<E>(std::max<size_t>(m2, 1)));
  GlobalSpan<E> a(buf_a), b(buf_b);

  MPTOPK_RETURN_NOT_OK(LaunchSortReducer(dev, in, n, a, k, g));
  size_t m = m1;
  while (m > g.tile) {
    size_t next = CeilDiv(m, g.tile) * opb;
    MPTOPK_RETURN_NOT_OK(LaunchBitonicReducer(dev, a, m, b, k, g));
    std::swap(a, b);
    m = next;
  }
  return LaunchFinalReduce(dev, a, m, out, k, /*unsorted=*/false, g);
}

}  // namespace

template <typename E>
StatusOr<TopKResult<E>> BitonicTopKDevice(const simt::ExecCtx& dev,
                                          DeviceBuffer<E>& data, size_t n,
                                          size_t k,
                                          const BitonicOptions& opts) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  if (!IsPowerOfTwo(k)) {
    return Status::InvalidArgument(
        "bitonic top-k requires k to be a power of two (use the TopK "
        "dispatcher to round up)");
  }
  if (n > data.size()) {
    return Status::InvalidArgument("n exceeds buffer size");
  }
  MPTOPK_ASSIGN_OR_RETURN(Geometry<E> g,
                          ResolveGeometry<E>(dev.spec(), k, opts));

  DeviceTimeTracker tracker(dev);
  MPTOPK_ASSIGN_OR_RETURN(auto out_k, dev.Alloc<E>(k));
  if (opts.fuse_kernels) {
    MPTOPK_RETURN_NOT_OK(RunFused(dev, data, n, k, g, &out_k));
  } else {
    MPTOPK_RETURN_NOT_OK(RunUnfused(dev, data, n, k, opts, g, &out_k));
  }

  TopKResult<E> result;
  result.items.resize(k);
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(result.items.data(), out_k, k));
  result.kernel_ms = tracker.ElapsedMs();
  result.kernels_launched = tracker.Launches();
  return result;
}

template <typename E>
StatusOr<TopKResult<E>> BitonicReduceRuns(const simt::ExecCtx& dev,
                                          DeviceBuffer<E>& runs, size_t m,
                                          size_t k,
                                          const BitonicOptions& opts) {
  if (k == 0 || m < k || m % k != 0) {
    return Status::InvalidArgument(
        "BitonicReduceRuns requires m to be a positive multiple of k");
  }
  if (!IsPowerOfTwo(k)) {
    return Status::InvalidArgument("k must be a power of two");
  }
  MPTOPK_ASSIGN_OR_RETURN(Geometry<E> g,
                          ResolveGeometry<E>(dev.spec(), k, opts));
  DeviceTimeTracker tracker(dev);
  MPTOPK_ASSIGN_OR_RETURN(auto out_k, dev.Alloc<E>(k));
  GlobalSpan<E> out(out_k);
  GlobalSpan<E> a(runs);
  const size_t opb = g.tile >> g.merges;
  DeviceBuffer<E> aux_a, aux_b;
  bool aux_ready = false;
  bool write_to_a = true;  // ping-pong parity
  size_t cur = m;
  while (cur > g.tile) {
    size_t next = CeilDiv(cur, g.tile) * opb;
    if (!aux_ready) {
      MPTOPK_ASSIGN_OR_RETURN(aux_a, dev.Alloc<E>(next));
      MPTOPK_ASSIGN_OR_RETURN(aux_b, dev.Alloc<E>(next));
      aux_ready = true;
    }
    GlobalSpan<E> dst =
        write_to_a ? GlobalSpan<E>(aux_a) : GlobalSpan<E>(aux_b);
    MPTOPK_RETURN_NOT_OK(LaunchBitonicReducer(dev, a, cur, dst, k, g));
    a = dst;
    write_to_a = !write_to_a;
    cur = next;
  }
  MPTOPK_RETURN_NOT_OK(
      LaunchFinalReduce(dev, a, cur, out, k, /*unsorted=*/false, g));
  TopKResult<E> result;
  result.items.resize(k);
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(result.items.data(), out_k, k));
  result.kernel_ms = tracker.ElapsedMs();
  result.kernels_launched = tracker.Launches();
  return result;
}

template <typename E>
StatusOr<TopKResult<E>> BitonicTopK(const simt::ExecCtx& dev, const E* data, size_t n,
                                    size_t k, const BitonicOptions& opts) {
  MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
  return BitonicTopKDevice(dev, buf, n, k, opts);
}

#define MPTOPK_INSTANTIATE_BITONIC(E)                                        \
  template StatusOr<TopKResult<E>> BitonicTopKDevice<E>(                     \
      const simt::ExecCtx&, DeviceBuffer<E>&, size_t, size_t,                       \
      const BitonicOptions&);                                                \
  template StatusOr<TopKResult<E>> BitonicTopK<E>(                           \
      const simt::ExecCtx&, const E*, size_t, size_t, const BitonicOptions&);       \
  template StatusOr<TopKResult<E>> BitonicReduceRuns<E>(                     \
      const simt::ExecCtx&, DeviceBuffer<E>&, size_t, size_t,                       \
      const BitonicOptions&);

MPTOPK_INSTANTIATE_BITONIC(float)
MPTOPK_INSTANTIATE_BITONIC(double)
MPTOPK_INSTANTIATE_BITONIC(uint32_t)
MPTOPK_INSTANTIATE_BITONIC(int32_t)
MPTOPK_INSTANTIATE_BITONIC(uint64_t)
MPTOPK_INSTANTIATE_BITONIC(int64_t)
MPTOPK_INSTANTIATE_BITONIC(KV)
MPTOPK_INSTANTIATE_BITONIC(KV64)
MPTOPK_INSTANTIATE_BITONIC(KKV)
MPTOPK_INSTANTIATE_BITONIC(KKKV)

#undef MPTOPK_INSTANTIATE_BITONIC

}  // namespace mptopk::gpu
