// Result type shared by all GPU top-k algorithms.
#ifndef MPTOPK_GPUTOPK_TOPK_RESULT_H_
#define MPTOPK_GPUTOPK_TOPK_RESULT_H_

#include <algorithm>
#include <vector>

#include "common/tuple_types.h"

namespace mptopk::gpu {

/// Output of a top-k computation: the k greatest elements in descending
/// order of primary key (ties broken arbitrarily, like SQL ORDER BY ...
/// LIMIT K), plus the simulated device time spent.
template <typename E>
struct TopKResult {
  std::vector<E> items;
  /// Simulated kernel milliseconds consumed by this call (excludes PCIe
  /// staging of the input, matching the paper's measurement methodology).
  double kernel_ms = 0.0;
  /// Number of kernel launches performed.
  int kernels_launched = 0;
  /// Host wall-clock milliseconds, populated by CPU-backend operators in
  /// the unified registry (topk/registry.h); 0 for simulated GPU runs.
  double host_ms = 0.0;
};

/// Sorts a small result vector descending by the element ordering (used to
/// canonicalize the k returned items; k is tiny so this is host-side).
template <typename E>
void SortDescending(std::vector<E>* items) {
  std::sort(items->begin(), items->end(),
            [](const E& a, const E& b) { return ElementTraits<E>::Less(b, a); });
}

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_TOPK_RESULT_H_
