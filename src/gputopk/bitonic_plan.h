// Bitonic network step sequences and register-window planning, shared by the
// bitonic top-k kernels (gputopk/bitonic_topk.cc) and the analytical cost
// model (cost/cost_model.cc). Keeping one planner guarantees the model and
// the implementation count the same combined steps.
#ifndef MPTOPK_GPUTOPK_BITONIC_PLAN_H_
#define MPTOPK_GPUTOPK_BITONIC_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/bits.h"

namespace mptopk::gpu {

/// One compare-exchange round of the bitonic network: pairs (i, i+inc) with
/// (i & inc) == 0, ascending when (i & dir) == 0 (paper Algorithms 2/4).
struct BitonicStep {
  uint32_t dir;
  uint32_t inc;
};

/// Steps that turn an unsorted array into sorted runs of length k,
/// alternating ascending/descending (paper Algorithm 2).
inline std::vector<BitonicStep> BitonicLocalSortSteps(uint32_t k) {
  std::vector<BitonicStep> steps;
  for (uint32_t len = 1; len < k; len <<= 1) {
    for (uint32_t inc = len; inc >= 1; inc >>= 1) {
      steps.push_back(BitonicStep{len << 1, inc});
    }
  }
  return steps;
}

/// Steps that re-sort bitonic runs of length k (paper Algorithm 4).
inline std::vector<BitonicStep> BitonicRebuildSteps(uint32_t k) {
  std::vector<BitonicStep> steps;
  for (uint32_t inc = k >> 1; inc >= 1; inc >>= 1) {
    steps.push_back(BitonicStep{k, inc});
  }
  return steps;
}

/// A window of consecutive steps whose comparison distances span bits
/// [lo_bit, hi_bit]; the coupled elements form groups of 2^(hi-lo+1) at
/// stride 2^lo that one thread holds in registers (paper "combined steps").
struct BitonicWindow {
  int lo_bit;
  int hi_bit;
  std::vector<BitonicStep> steps;
  int group_size() const { return 1 << (hi_bit - lo_bit + 1); }
  /// Strided windows (lo > 0) are the bank-conflicting "comparison distance
  /// > 1" cases of paper Figures 9/10.
  bool strided() const { return lo_bit > 0; }
};

/// Splits a step sequence into register windows of width <=
/// width_budget_bits. Maximal descending-distance runs are split
/// low-aligned (short strided lead window, then full windows ending at
/// distance 1); whole runs that fit are absorbed into the previous window.
std::vector<BitonicWindow> PlanBitonicWindows(
    const std::vector<BitonicStep>& steps, int width_budget_bits);

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_BITONIC_PLAN_H_
