// LSD radix sort on the simulated device (the paper's "Sort and Choose"
// baseline, Section 2.2 / 3): 8-bit digits over the order-preserving bit
// pattern of the primary key, one histogram + scan + stable scatter pass per
// digit. Runtime is independent of k — the whole input is sorted.
#ifndef MPTOPK_GPUTOPK_RADIX_SORT_H_
#define MPTOPK_GPUTOPK_RADIX_SORT_H_

#include <cstddef>

#include "common/status.h"
#include "common/tuple_types.h"
#include "gputopk/topk_result.h"
#include "simt/device.h"
#include "simt/exec_ctx.h"

namespace mptopk::gpu {

/// Sorts `data[0, n)` ascending by primary key into `out` (which must have
/// size >= n). The input buffer is left unmodified.
template <typename E>
Status RadixSortDevice(const simt::ExecCtx& dev, simt::DeviceBuffer<E>& data,
                       size_t n, simt::DeviceBuffer<E>* out);

/// Top-k via full sort: sorts everything, returns the k greatest descending
/// (paper algorithm "Sort").
template <typename E>
StatusOr<TopKResult<E>> SortTopKDevice(const simt::ExecCtx& dev,
                                       simt::DeviceBuffer<E>& data, size_t n,
                                       size_t k);

/// Host-staging convenience wrapper.
template <typename E>
StatusOr<TopKResult<E>> SortTopK(const simt::ExecCtx& dev, const E* data, size_t n,
                                 size_t k);

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_RADIX_SORT_H_
