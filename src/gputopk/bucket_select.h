// Bucket Select top-k (paper Sections 2.3, 4.2): a min/max pass followed by
// repeated 16-way equi-width bucketing passes over the candidate range.
// Bucketing happens in the order-preserving unsigned key domain, so the
// range provably shrinks by 16x per pass regardless of the float/int value
// distribution of the *range*; the *candidate count* reduction remains data
// dependent (value-clustered inputs degrade it, paper Section 6.4).
//
// Matches the paper's observations: heavy use of atomics makes it slower
// than radix select, except at k == 1 where it returns straight after the
// min/max pass.
#ifndef MPTOPK_GPUTOPK_BUCKET_SELECT_H_
#define MPTOPK_GPUTOPK_BUCKET_SELECT_H_

#include <cstddef>

#include "common/status.h"
#include "common/tuple_types.h"
#include "gputopk/topk_result.h"
#include "simt/device.h"
#include "simt/exec_ctx.h"

namespace mptopk::gpu {

/// Computes the top-k of device-resident data[0, n) via bucket selection.
/// Any 1 <= k <= n. Ties at the k-th value broken arbitrarily. Input is not
/// modified.
template <typename E>
StatusOr<TopKResult<E>> BucketSelectTopKDevice(const simt::ExecCtx& dev,
                                               simt::DeviceBuffer<E>& data,
                                               size_t n, size_t k);

/// Host-staging convenience wrapper.
template <typename E>
StatusOr<TopKResult<E>> BucketSelectTopK(const simt::ExecCtx& dev, const E* data,
                                         size_t n, size_t k);

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_BUCKET_SELECT_H_
