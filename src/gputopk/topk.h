// DEPRECATED enum-based top-k dispatch, kept as thin shims over the unified
// operator registry (topk/registry.h). New code should resolve operators by
// name via topk::FindOperator / topk::Registry and call their caps-checked
// entry points; the Algorithm enum only addresses the six legacy GPU
// algorithms and cannot see registered extensions.
//
// All algorithms share the same contract: the k greatest elements by
// ElementTraits ordering, returned in descending order, input unmodified,
// simulated kernel time in TopKResult::kernel_ms.
#ifndef MPTOPK_GPUTOPK_TOPK_H_
#define MPTOPK_GPUTOPK_TOPK_H_

#include <string>

#include "common/bits.h"
#include "common/status.h"
#include "gputopk/bitonic_topk.h"
#include "gputopk/bucket_select.h"
#include "gputopk/hybrid_topk.h"
#include "gputopk/perthread_topk.h"
#include "gputopk/radix_select.h"
#include "gputopk/radix_sort.h"
#include "topk/registry.h"

namespace mptopk::gpu {

enum class Algorithm {
  kSort,         // full radix sort, take k  (paper "Sort")
  kPerThread,    // per-thread heaps          (paper "PerThread TopK")
  kRadixSelect,  // MSD radix selection       (paper "Radix Select")
  kBucketSelect, // min/max bucket selection  (paper "Bucket Select")
  kBitonic,      // bitonic top-k             (paper "Bitonic TopK")
  kHybrid,       // radix prefilter + bitonic (paper future work, Section 8)
};

inline const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSort:
      return "Sort";
    case Algorithm::kPerThread:
      return "PerThreadTopK";
    case Algorithm::kRadixSelect:
      return "RadixSelect";
    case Algorithm::kBucketSelect:
      return "BucketSelect";
    case Algorithm::kBitonic:
      return "BitonicTopK";
    case Algorithm::kHybrid:
      return "HybridTopK";
  }
  return "Unknown";
}

/// Parses a legacy algorithm spelling (or any registry name/alias) to the
/// deprecated enum via the one registry name table; unknown names report
/// the full registered-operator list.
inline StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  MPTOPK_ASSIGN_OR_RETURN(const topk::TopKOperator* op,
                          topk::FindOperator(name));
  for (Algorithm a : {Algorithm::kSort, Algorithm::kPerThread,
                      Algorithm::kRadixSelect, Algorithm::kBucketSelect,
                      Algorithm::kBitonic, Algorithm::kHybrid}) {
    if (op->name() == AlgorithmName(a)) return a;
  }
  return Status::InvalidArgument(
      "operator '" + op->name() +
      "' is not addressable through the deprecated gpu::Algorithm enum; "
      "use topk::FindOperator");
}

/// Direction of the selection: the k greatest (descending result, the
/// paper's setting) or the k smallest (ascending result).
enum class SortOrder { kLargest, kSmallest };

/// DEPRECATED: resolves the named registry operator and runs it on
/// device-resident data. For bitonic/hybrid a non-power-of-two k is rounded
/// up internally and the result trimmed, so any 1 <= k <= n works.
template <typename E>
StatusOr<TopKResult<E>> TopKDevice(const simt::ExecCtx& dev,
                                   simt::DeviceBuffer<E>& data, size_t n,
                                   size_t k, Algorithm algo) {
  MPTOPK_ASSIGN_OR_RETURN(const topk::TopKOperator* op,
                          topk::FindOperator(AlgorithmName(algo)));
  return op->TopKDevice(dev, data, n, k);
}

/// DEPRECATED: bottom-k — the k smallest elements, ascending. Implemented
/// by the registry operator as top-k over the order-negated keys (one extra
/// negate-copy pass, counted).
template <typename E>
StatusOr<TopKResult<E>> BottomKDevice(const simt::ExecCtx& dev,
                                      simt::DeviceBuffer<E>& data, size_t n,
                                      size_t k, Algorithm algo) {
  MPTOPK_ASSIGN_OR_RETURN(const topk::TopKOperator* op,
                          topk::FindOperator(AlgorithmName(algo)));
  return op->BottomKDevice(dev, data, n, k);
}

/// Runs the selection in either direction (see SortOrder).
template <typename E>
StatusOr<TopKResult<E>> TopKDevice(const simt::ExecCtx& dev,
                                   simt::DeviceBuffer<E>& data, size_t n,
                                   size_t k, Algorithm algo,
                                   SortOrder order) {
  return order == SortOrder::kLargest
             ? TopKDevice(dev, data, n, k, algo)
             : BottomKDevice(dev, data, n, k, algo);
}

/// DEPRECATED: host-staging convenience wrapper over the registry operator.
template <typename E>
StatusOr<TopKResult<E>> TopK(const simt::ExecCtx& dev, const E* data, size_t n,
                             size_t k, Algorithm algo = Algorithm::kBitonic,
                             SortOrder order = SortOrder::kLargest) {
  MPTOPK_ASSIGN_OR_RETURN(const topk::TopKOperator* op,
                          topk::FindOperator(AlgorithmName(algo)));
  return order == SortOrder::kLargest ? op->TopKHost(dev, data, n, k)
                                      : op->BottomKHost(dev, data, n, k);
}

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_TOPK_H_
