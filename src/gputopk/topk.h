// Public top-k entry point: algorithm selection by name or enum, plus the
// generic TopK() that dispatches (optionally via the cost-based planner in
// planner/plan_topk.h).
//
// All algorithms share the same contract: the k greatest elements by
// ElementTraits ordering, returned in descending order, input unmodified,
// simulated kernel time in TopKResult::kernel_ms.
#ifndef MPTOPK_GPUTOPK_TOPK_H_
#define MPTOPK_GPUTOPK_TOPK_H_

#include <string>

#include "common/bits.h"
#include "common/status.h"
#include "gputopk/bitonic_topk.h"
#include "gputopk/bucket_select.h"
#include "gputopk/hybrid_topk.h"
#include "gputopk/perthread_topk.h"
#include "gputopk/radix_select.h"
#include "gputopk/radix_sort.h"

namespace mptopk::gpu {

enum class Algorithm {
  kSort,         // full radix sort, take k  (paper "Sort")
  kPerThread,    // per-thread heaps          (paper "PerThread TopK")
  kRadixSelect,  // MSD radix selection       (paper "Radix Select")
  kBucketSelect, // min/max bucket selection  (paper "Bucket Select")
  kBitonic,      // bitonic top-k             (paper "Bitonic TopK")
  kHybrid,       // radix prefilter + bitonic (paper future work, Section 8)
};

inline const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSort:
      return "Sort";
    case Algorithm::kPerThread:
      return "PerThreadTopK";
    case Algorithm::kRadixSelect:
      return "RadixSelect";
    case Algorithm::kBucketSelect:
      return "BucketSelect";
    case Algorithm::kBitonic:
      return "BitonicTopK";
    case Algorithm::kHybrid:
      return "HybridTopK";
  }
  return "Unknown";
}

inline StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "sort") return Algorithm::kSort;
  if (name == "perthread") return Algorithm::kPerThread;
  if (name == "radix_select") return Algorithm::kRadixSelect;
  if (name == "bucket_select") return Algorithm::kBucketSelect;
  if (name == "bitonic") return Algorithm::kBitonic;
  if (name == "hybrid") return Algorithm::kHybrid;
  return Status::InvalidArgument("unknown algorithm: " + name);
}

/// Direction of the selection: the k greatest (descending result, the
/// paper's setting) or the k smallest (ascending result).
enum class SortOrder { kLargest, kSmallest };

/// Runs the chosen algorithm on device-resident data. For bitonic, a
/// non-power-of-two k is rounded up internally and the result trimmed, so
/// any 1 <= k <= n works with every algorithm.
template <typename E>
StatusOr<TopKResult<E>> TopKDevice(const simt::ExecCtx& dev,
                                   simt::DeviceBuffer<E>& data, size_t n,
                                   size_t k, Algorithm algo) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n (k=" +
                                   std::to_string(k) + ", n=" +
                                   std::to_string(n) + ")");
  }
  switch (algo) {
    case Algorithm::kSort:
      return SortTopKDevice(dev, data, n, k);
    case Algorithm::kPerThread:
      return PerThreadTopKDevice(dev, data, n, k);
    case Algorithm::kRadixSelect:
      return RadixSelectTopKDevice(dev, data, n, k);
    case Algorithm::kBucketSelect:
      return BucketSelectTopKDevice(dev, data, n, k);
    case Algorithm::kBitonic:
    case Algorithm::kHybrid: {
      size_t k2 = NextPowerOfTwo(k);
      if (k2 > n) {
        // Rounding k up to a power of two would exceed n; fall back to the
        // selection-based method, which handles any k.
        return RadixSelectTopKDevice(dev, data, n, k);
      }
      auto run = algo == Algorithm::kBitonic
                     ? BitonicTopKDevice(dev, data, n, k2, BitonicOptions{})
                     : HybridTopKDevice(dev, data, n, k2, HybridOptions{});
      MPTOPK_ASSIGN_OR_RETURN(auto r, std::move(run));
      r.items.resize(k);
      return r;
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

/// Bottom-k: the k smallest elements, ascending. Implemented as top-k over
/// the order-negated keys (one extra negate-copy pass, counted): every
/// algorithm, option and distribution guarantee carries over symmetrically.
template <typename E>
StatusOr<TopKResult<E>> BottomKDevice(const simt::ExecCtx& dev,
                                      simt::DeviceBuffer<E>& data, size_t n,
                                      size_t k, Algorithm algo) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  MPTOPK_ASSIGN_OR_RETURN(auto negated, dev.Alloc<E>(n));
  simt::GlobalSpan<E> in(data), out(negated);
  const int grid = static_cast<int>(std::min<uint64_t>(1024,
                                                       CeilDiv(n, 256)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = 256, .name = "negate_keys"},
      [&](simt::Block& blk) {
        blk.ForEachThread([&](simt::Thread& t) {
          size_t stride = static_cast<size_t>(grid) * 256;
          for (size_t i = static_cast<size_t>(blk.block_idx()) * 256 + t.tid;
               i < n; i += stride) {
            out.Write(t, i, ElementTraits<E>::Negated(in.Read(t, i)));
          }
        });
      });
  if (!st.ok()) return st.status();
  MPTOPK_ASSIGN_OR_RETURN(auto r, TopKDevice(dev, negated, n, k, algo));
  for (E& e : r.items) e = ElementTraits<E>::Negated(e);
  return r;
}

/// Runs the selection in either direction (see SortOrder).
template <typename E>
StatusOr<TopKResult<E>> TopKDevice(const simt::ExecCtx& dev,
                                   simt::DeviceBuffer<E>& data, size_t n,
                                   size_t k, Algorithm algo,
                                   SortOrder order) {
  return order == SortOrder::kLargest
             ? TopKDevice(dev, data, n, k, algo)
             : BottomKDevice(dev, data, n, k, algo);
}

/// Host-staging convenience wrapper.
template <typename E>
StatusOr<TopKResult<E>> TopK(const simt::ExecCtx& dev, const E* data, size_t n,
                             size_t k, Algorithm algo = Algorithm::kBitonic,
                             SortOrder order = SortOrder::kLargest) {
  MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
  return TopKDevice(dev, buf, n, k, algo, order);
}

}  // namespace mptopk::gpu

#endif  // MPTOPK_GPUTOPK_TOPK_H_
