// Per-thread top-k implementation (paper Algorithm 1 + Appendix A).
#include "gputopk/perthread_topk.h"

#include <algorithm>

#include "common/bits.h"
#include "gputopk/kernel_util.h"

namespace mptopk::gpu {
namespace {

using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::SharedSpan;
using simt::Thread;

// Min-heap of size k for one thread, interleaved in shared memory: slot j of
// thread t lives at heap[j * nt + t] so that uniform heap traffic across a
// warp is bank-conflict-free.
template <typename E>
class SharedHeap {
 public:
  SharedHeap(SharedSpan<E> mem, int nt, size_t k, int dep_latency)
      : mem_(mem), nt_(nt), k_(k), dep_latency_(dep_latency) {}

  /// Each sift level loads two children whose addresses depend on the
  /// previous comparison -- a latency-bound dependent chain the bandwidth
  /// model cannot see (the paper's "thread divergence" cost, Section 4.1).
  void ChargeLevel(Thread& t) const {
    if (t.tracer != nullptr) {
      t.tracer->RecordDependentCycles(2 * dep_latency_);
    }
  }

  E Slot(Thread& t, size_t j) const { return mem_.Read(t, j * nt_ + t.tid); }
  void SetSlot(Thread& t, size_t j, const E& v) const {
    mem_.Write(t, j * nt_ + t.tid, v);
  }

  void FillSentinel(Thread& t) const {
    const E s = ElementTraits<E>::LowestSentinel();
    for (size_t j = 0; j < k_; ++j) SetSlot(t, j, s);
  }

  E Min(Thread& t) const { return Slot(t, 0); }

  /// Replaces the minimum with x and restores the heap property (sift-down).
  void ReplaceMin(Thread& t, const E& x) const {
    size_t j = 0;
    while (true) {
      size_t c = 2 * j + 1;
      if (c >= k_) break;
      ChargeLevel(t);
      E child = Slot(t, c);
      if (c + 1 < k_) {
        E right = Slot(t, c + 1);
        if (ElementTraits<E>::Less(right, child)) {
          child = right;
          ++c;
        }
      }
      if (!ElementTraits<E>::Less(child, x)) break;
      SetSlot(t, j, child);
      j = c;
    }
    SetSlot(t, j, x);
  }

  /// Pops the minimum (replaces the root with the last slot and shrinks).
  /// Used only by the single-threaded final extraction.
  E PopMin(Thread& t, size_t* size) const {
    E top = Slot(t, 0);
    E last = Slot(t, *size - 1);
    --*size;
    // Sift last down within the shrunken heap.
    size_t j = 0;
    while (true) {
      size_t c = 2 * j + 1;
      if (c >= *size) break;
      ChargeLevel(t);
      E child = Slot(t, c);
      if (c + 1 < *size) {
        E right = Slot(t, c + 1);
        if (ElementTraits<E>::Less(right, child)) {
          child = right;
          ++c;
        }
      }
      if (!ElementTraits<E>::Less(child, last)) break;
      SetSlot(t, j, child);
      j = c;
    }
    if (*size > 0) SetSlot(t, j, last);
    return top;
  }

 private:
  SharedSpan<E> mem_;
  int nt_;
  size_t k_;
  int dep_latency_;
};

// Main pass: NT = grid*nt threads each reduce a strided slice of in[0, m) to
// a k-heap, then write the heaps out coalesced: out[gtid + j*NT].
template <typename E>
Status LaunchHeapPass(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t m,
                      GlobalSpan<E> out, size_t k, int grid, int nt) {
  const size_t total_threads = static_cast<size_t>(grid) * nt;
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = nt, .name = "perthread_heap"},
      [&](Block& blk) {
        auto mem = blk.AllocShared<E>(k * nt);
        SharedHeap<E> heap(mem, nt, k,
                           blk.spec().dependent_access_latency_cycles);
        blk.ForEachThread([&](Thread& t) { heap.FillSentinel(t); });
        blk.Sync();
        blk.ForEachThread([&](Thread& t) {
          size_t gtid = static_cast<size_t>(blk.block_idx()) * nt + t.tid;
          for (size_t i = gtid; i < m; i += total_threads) {
            E x = in.Read(t, i);
            if (ElementTraits<E>::Less(heap.Min(t), x)) {
              heap.ReplaceMin(t, x);
            }
          }
        });
        blk.Sync();
        blk.ForEachThread([&](Thread& t) {
          size_t gtid = static_cast<size_t>(blk.block_idx()) * nt + t.tid;
          for (size_t j = 0; j < k; ++j) {
            out.Write(t, gtid + j * total_threads, heap.Slot(t, j));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Appendix A register variant: unordered buffer + cached (minIndex,
// minValue); every insert rewrites one slot and rescans all k. Buffer slots
// beyond the register budget live in "local memory" (billed bytes).
template <typename E>
Status LaunchRegisterPass(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t m,
                          GlobalSpan<E> out, size_t k, int grid, int nt,
                          int register_budget) {
  const size_t total_threads = static_cast<size_t>(grid) * nt;
  const int declared_regs =
      static_cast<int>(std::min<size_t>(255, k + 8));
  const size_t spill_start = static_cast<size_t>(
      std::max<int64_t>(0, static_cast<int64_t>(register_budget) - 8));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = nt,
       .regs_per_thread = declared_regs, .name = "perthread_registers"},
      [&](Block& blk) {
        E* buf = blk.ThreadScratch<E>(k);
        blk.ForEachThread([&](Thread& t) {
          E* mine = buf + static_cast<size_t>(t.tid) * k;
          auto access = [&](size_t j) {
            if (j >= spill_start) blk.RecordLocalTraffic(sizeof(E));
          };
          const E sentinel = ElementTraits<E>::LowestSentinel();
          for (size_t j = 0; j < k; ++j) {
            mine[j] = sentinel;
            access(j);
          }
          size_t min_index = 0;
          E min_value = sentinel;
          size_t gtid = static_cast<size_t>(blk.block_idx()) * nt + t.tid;
          // The rescan's running-min comparison is a loop-carried dependence
          // chain of k short (register-latency) steps -- the O(k) insert
          // overhead Appendix A describes.
          constexpr int kRegisterStepCycles = 6;
          for (size_t i = gtid; i < m; i += total_threads) {
            E x = in.Read(t, i);
            if (!ElementTraits<E>::Less(min_value, x)) continue;
            mine[min_index] = x;
            access(min_index);
            if (t.tracer != nullptr) {
              t.tracer->RecordDependentCycles(kRegisterStepCycles * k);
            }
            // Rescan for the new minimum (paper Appendix A loop).
            min_index = 0;
            min_value = mine[0];
            access(0);
            for (size_t j = 1; j < k; ++j) {
              access(j);
              if (ElementTraits<E>::Less(mine[j], min_value)) {
                min_index = j;
                min_value = mine[j];
              }
            }
          }
          for (size_t j = 0; j < k; ++j) {
            access(j);
            out.Write(t, gtid + j * total_threads, mine[j]);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Final single-block pass: ft threads heap-reduce in[0, m); thread 0 then
// absorbs the other threads' heaps and extracts the k results in descending
// order (divergence cost of the serial tail is counted, and is negligible
// against the main passes).
template <typename E>
Status LaunchFinal(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t m,
                   GlobalSpan<E> out_k, size_t k, int ft) {
  auto st = dev.Launch(
      {.grid_dim = 1, .block_dim = ft, .name = "perthread_final"},
      [&](Block& blk) {
        auto mem = blk.AllocShared<E>(k * ft);
        SharedHeap<E> heap(mem, ft, k,
                           blk.spec().dependent_access_latency_cycles);
        blk.ForEachThread([&](Thread& t) { heap.FillSentinel(t); });
        blk.Sync();
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = t.tid; i < m; i += ft) {
            E x = in.Read(t, i);
            if (ElementTraits<E>::Less(heap.Min(t), x)) {
              heap.ReplaceMin(t, x);
            }
          }
        });
        blk.Sync();
        blk.ForEachThread([&](Thread& t) {
          if (t.tid != 0) return;
          // Absorb the other threads' heap slots into thread 0's heap.
          for (int other = 1; other < ft; ++other) {
            for (size_t j = 0; j < k; ++j) {
              E x = mem.Read(t, j * ft + other);
              if (ElementTraits<E>::Less(heap.Min(t), x)) {
                heap.ReplaceMin(t, x);
              }
            }
          }
          // Extract ascending, emit descending.
          size_t size = k;
          for (size_t i = 0; i < k; ++i) {
            out_k.Write(t, k - 1 - i, heap.PopMin(t, &size));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

}  // namespace

template <typename E>
StatusOr<TopKResult<E>> PerThreadTopKDevice(const simt::ExecCtx& dev,
                                            DeviceBuffer<E>& data, size_t n,
                                            size_t k,
                                            const PerThreadOptions& opts) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  const auto& spec = dev.spec();
  // Block size: largest power of two <= 256 whose heaps fit shared memory.
  int nt = 256;
  while (nt >= 32 && k * sizeof(E) * nt > spec.shared_mem_per_block) {
    nt >>= 1;
  }
  if (!opts.use_registers && nt < 32) {
    return Status::ResourceExhausted(
        "per-thread top-k: k=" + std::to_string(k) + " needs " +
        std::to_string(k * sizeof(E) * 32) +
        " B shared per 32-thread block, exceeding the 48 KiB limit "
        "(paper Section 4.1)");
  }
  if (opts.use_registers) nt = 256;

  // Final single-block pass thread count.
  int ft = 32;
  while (ft >= 1 && k * sizeof(E) * ft > spec.shared_mem_per_block) {
    ft >>= 1;
  }
  if (ft < 1) {
    return Status::ResourceExhausted(
        "per-thread top-k: even a single k-heap exceeds shared memory");
  }

  const int max_threads = opts.total_threads > 0
                              ? opts.total_threads
                              : spec.num_sms * spec.max_threads_per_sm;

  DeviceTimeTracker tracker(dev);
  MPTOPK_ASSIGN_OR_RETURN(auto out_k, dev.Alloc<E>(k));
  GlobalSpan<E> out(out_k);

  GlobalSpan<E> cur(data);
  size_t m = n;
  DeviceBuffer<E> buf_a, buf_b;
  bool bufs_ready = false;
  bool write_to_a = true;  // ping-pong parity
  const size_t final_threshold =
      std::max<size_t>(static_cast<size_t>(ft) * k * 2, 4096);

  while (m > final_threshold) {
    size_t want_threads = m / (16 * k);
    int grid = static_cast<int>(
        std::clamp<size_t>(CeilDiv(want_threads, nt), 1,
                           static_cast<size_t>(max_threads / nt)));
    size_t nt_total = static_cast<size_t>(grid) * nt;
    if (nt_total * k >= m) break;  // a pass would not reduce the data
    if (!bufs_ready) {
      MPTOPK_ASSIGN_OR_RETURN(buf_a, dev.Alloc<E>(nt_total * k));
      MPTOPK_ASSIGN_OR_RETURN(buf_b, dev.Alloc<E>(nt_total * k));
      bufs_ready = true;
    }
    GlobalSpan<E> dst = write_to_a ? GlobalSpan<E>(buf_a)
                                   : GlobalSpan<E>(buf_b);
    Status st = opts.use_registers
                    ? LaunchRegisterPass(dev, cur, m, dst, k, grid, nt,
                                         opts.register_budget)
                    : LaunchHeapPass(dev, cur, m, dst, k, grid, nt);
    MPTOPK_RETURN_NOT_OK(st);
    cur = dst;
    write_to_a = !write_to_a;
    m = nt_total * k;
  }
  MPTOPK_RETURN_NOT_OK(LaunchFinal(dev, cur, m, out, k, ft));

  TopKResult<E> result;
  result.items.resize(k);
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(result.items.data(), out_k, k));
  result.kernel_ms = tracker.ElapsedMs();
  result.kernels_launched = tracker.Launches();
  return result;
}

template <typename E>
StatusOr<TopKResult<E>> PerThreadTopK(const simt::ExecCtx& dev, const E* data,
                                      size_t n, size_t k,
                                      const PerThreadOptions& opts) {
  MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
  return PerThreadTopKDevice(dev, buf, n, k, opts);
}

#define MPTOPK_INSTANTIATE_PERTHREAD(E)                                     \
  template StatusOr<TopKResult<E>> PerThreadTopKDevice<E>(                  \
      const simt::ExecCtx&, DeviceBuffer<E>&, size_t, size_t,                      \
      const PerThreadOptions&);                                             \
  template StatusOr<TopKResult<E>> PerThreadTopK<E>(                        \
      const simt::ExecCtx&, const E*, size_t, size_t, const PerThreadOptions&);

MPTOPK_INSTANTIATE_PERTHREAD(float)
MPTOPK_INSTANTIATE_PERTHREAD(double)
MPTOPK_INSTANTIATE_PERTHREAD(uint32_t)
MPTOPK_INSTANTIATE_PERTHREAD(int32_t)
MPTOPK_INSTANTIATE_PERTHREAD(uint64_t)
MPTOPK_INSTANTIATE_PERTHREAD(int64_t)
MPTOPK_INSTANTIATE_PERTHREAD(KV)
MPTOPK_INSTANTIATE_PERTHREAD(KV64)
MPTOPK_INSTANTIATE_PERTHREAD(KKV)
MPTOPK_INSTANTIATE_PERTHREAD(KKKV)

#undef MPTOPK_INSTANTIATE_PERTHREAD

}  // namespace mptopk::gpu
