// Sampling-based hybrid top-k (see hybrid_topk.h). Pipeline:
//
//   1. gather a small strided sample (one sector per element, ~free);
//   2. exact bitonic top-m of the sample (tiny) -> pivot key chosen so the
//      expected number of full-data elements >= pivot is a few k;
//   3. one threshold-filter pass over the input: elements >= pivot are
//      compacted via warp-ballot-style compaction (flags and ranks live in
//      registers; one shared slot per warp, one global reservation per
//      block chunk) -- so the pass costs ~one coalesced read plus the
//      (tiny) matched writes;
//   4. bitonic top-k over the candidates.
//
// Correctness does not depend on sampling luck: if fewer than k elements
// reach the threshold, or the pivot fails to shrink the input (ties,
// adversarial distributions), the algorithm falls back to plain bitonic
// over everything.
#include "gputopk/hybrid_topk.h"

#include <algorithm>

#include "common/bits.h"
#include "common/key_transform.h"
#include "gputopk/bitonic_topk.h"
#include "gputopk/kernel_util.h"

namespace mptopk::gpu {
namespace {

using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::Thread;

constexpr int kBlockDim = 256;
constexpr int kMaxGrid = 128;
constexpr size_t kSampleSize = 16384;

template <typename E>
bool KeyAtLeast(const E& e, typename ElementTraits<E>::Key pivot) {
  return !(ElementTraits<E>::PrimaryKey(e) < pivot);
}

// Strided sample gather: out[i] = in[i * stride]. Strided reads cost one
// sector each, which the tracer accounts.
template <typename E>
Status LaunchSampleGather(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                          GlobalSpan<E> out, size_t s, size_t stride) {
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(s, kBlockDim)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "hybrid_sample"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          size_t step = static_cast<size_t>(grid) * kBlockDim;
          for (size_t i = static_cast<size_t>(blk.block_idx()) * kBlockDim +
                          t.tid;
               i < s; i += step) {
            out.Write(t, i, in.Read(t, std::min(n - 1, i * stride)));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Threshold filter with warp-ballot compaction: one coalesced read per
// element; match flags, per-warp popcounts and intra-warp ranks are
// register/ballot work (untraced); per chunk of block_dim elements the
// block spends one shared slot per warp plus one global counter
// reservation, then matched lanes write out compacted.
template <typename E>
Status LaunchThresholdFilter(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                             typename ElementTraits<E>::Key pivot,
                             GlobalSpan<E> out, size_t out_capacity,
                             GlobalSpan<uint32_t> counter) {
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, kBlockDim)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), kBlockDim);
  const int warps = kBlockDim / 32;
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim,
       .name = "hybrid_threshold_filter"},
      [&](Block& blk) {
        // Ballot emulation: flags/values per lane live in registers.
        E* vals = blk.ThreadScratch<E>(1);
        uint8_t* flags = blk.ThreadScratch<uint8_t>(1);
        auto warp_base = blk.AllocShared<uint32_t>(warps + 1);

        size_t range_lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t range_hi = std::min(range_lo + per_block, n);
        for (size_t base = range_lo; base < range_hi; base += kBlockDim) {
          size_t count = std::min<size_t>(kBlockDim, range_hi - base);
          blk.ForEachThread([&](Thread& t) {
            bool m = false;
            if (static_cast<size_t>(t.tid) < count) {
              E e = in.Read(t, base + t.tid);
              m = KeyAtLeast(e, pivot);
              vals[t.tid] = e;
            }
            flags[t.tid] = m ? 1 : 0;
          });
          blk.Sync();
          // Lane 0 publishes each warp's popcount (__ballot + __popc on
          // hardware): one shared write per warp. A separate region so
          // every lane's flag is set first.
          blk.ForEachThread([&](Thread& t) {
            if (t.lane == 0) {
              uint32_t c = 0;
              int warp_lo = t.warp * 32;
              for (int l = warp_lo;
                   l < std::min(warp_lo + 32, kBlockDim); ++l) {
                c += flags[l];
              }
              warp_base.Write(t, t.warp, c);
            }
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            if (t.tid != 0) return;
            // Scan the per-warp counts and reserve a global range.
            uint32_t running = 0;
            for (int w = 0; w < warps; ++w) {
              uint32_t c = warp_base.Read(t, w);
              warp_base.Write(t, w, running);
              running += c;
            }
            uint32_t g = running == 0
                             ? 0u
                             : counter.AtomicAdd(t, 0, running);
            warp_base.Write(t, warps, g);
          });
          blk.Sync();
          blk.ForEachThread([&](Thread& t) {
            if (flags[t.tid] == 0) return;
            // Intra-warp rank = popcount of lower-lane flags (register
            // work on hardware).
            uint32_t rank = 0;
            for (int l = t.warp * 32; l < t.tid; ++l) rank += flags[l];
            uint32_t pos = warp_base.Read(t, warps) +
                           warp_base.Read(t, t.warp) + rank;
            if (pos < out_capacity) {
              out.Write(t, pos, vals[t.tid]);
            }
          });
          blk.Sync();
        }
      });
  return st.ok() ? Status::OK() : st.status();
}

}  // namespace

template <typename E>
StatusOr<TopKResult<E>> HybridTopKDevice(const simt::ExecCtx& dev,
                                         DeviceBuffer<E>& data, size_t n,
                                         size_t k, const HybridOptions& opts) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  if (!IsPowerOfTwo(k)) {
    return Status::InvalidArgument("hybrid top-k requires power-of-two k");
  }
  DeviceTimeTracker tracker(dev);
  GlobalSpan<E> in(data);

  auto finish = [&](TopKResult<E> r) {
    r.kernel_ms = tracker.ElapsedMs();
    r.kernels_launched = tracker.Launches();
    return r;
  };

  const size_t s = std::min(n, kSampleSize);
  // The pivot rank in the sample: expected candidates = m * n/s; aim for a
  // few k of headroom so unlucky samples still cover the top-k.
  const size_t m = std::min(
      s / 2, std::max<size_t>(32, CeilDiv(4 * k * s, std::max(n, s))));
  if (n <= 4 * s || m >= s / 2) {
    // Too small (or k too large relative to n) for sampling to pay off.
    MPTOPK_ASSIGN_OR_RETURN(auto r, BitonicTopKDevice(dev, data, n, k));
    return finish(std::move(r));
  }

  // 1+2: sample and find the pivot key.
  MPTOPK_ASSIGN_OR_RETURN(auto sample, dev.Alloc<E>(s));
  GlobalSpan<E> sample_span(sample);
  MPTOPK_RETURN_NOT_OK(LaunchSampleGather(dev, in, n, sample_span, s, n / s));
  MPTOPK_ASSIGN_OR_RETURN(
      auto sample_top,
      BitonicTopKDevice(dev, sample, s, NextPowerOfTwo(m)));
  const auto pivot =
      ElementTraits<E>::PrimaryKey(sample_top.items.back());

  // 3: threshold filter.
  const size_t cap = std::max<size_t>(
      2 * k, static_cast<size_t>(opts.max_candidate_fraction *
                                 static_cast<double>(n)));
  MPTOPK_ASSIGN_OR_RETURN(auto cand, dev.Alloc<E>(cap));
  MPTOPK_ASSIGN_OR_RETURN(auto counter, dev.Alloc<uint32_t>(1));
  counter.host_data()[0] = 0;
  GlobalSpan<E> cand_span(cand);
  GlobalSpan<uint32_t> cnt(counter);
  MPTOPK_RETURN_NOT_OK(
      LaunchThresholdFilter(dev, in, n, pivot, cand_span, cap, cnt));
  uint32_t c = 0;
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(&c, counter, 1));

  if (c < k || c >= cap) {
    // Unlucky sample (too few candidates) or non-discriminating pivot
    // (ties / adversarial data overflowing the cap): robust fallback.
    MPTOPK_ASSIGN_OR_RETURN(auto r, BitonicTopKDevice(dev, data, n, k));
    return finish(std::move(r));
  }

  // 4: finish on the candidates.
  MPTOPK_ASSIGN_OR_RETURN(auto r, BitonicTopKDevice(dev, cand, c, k));
  return finish(std::move(r));
}

template <typename E>
StatusOr<TopKResult<E>> HybridTopK(const simt::ExecCtx& dev, const E* data, size_t n,
                                   size_t k, const HybridOptions& opts) {
  MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
  return HybridTopKDevice(dev, buf, n, k, opts);
}

#define MPTOPK_INSTANTIATE_HYBRID(E)                                        \
  template StatusOr<TopKResult<E>> HybridTopKDevice<E>(                     \
      const simt::ExecCtx&, DeviceBuffer<E>&, size_t, size_t,                      \
      const HybridOptions&);                                                \
  template StatusOr<TopKResult<E>> HybridTopK<E>(                           \
      const simt::ExecCtx&, const E*, size_t, size_t, const HybridOptions&);

MPTOPK_INSTANTIATE_HYBRID(float)
MPTOPK_INSTANTIATE_HYBRID(double)
MPTOPK_INSTANTIATE_HYBRID(uint32_t)
MPTOPK_INSTANTIATE_HYBRID(int32_t)
MPTOPK_INSTANTIATE_HYBRID(uint64_t)
MPTOPK_INSTANTIATE_HYBRID(int64_t)
MPTOPK_INSTANTIATE_HYBRID(KV)
MPTOPK_INSTANTIATE_HYBRID(KV64)
MPTOPK_INSTANTIATE_HYBRID(KKV)
MPTOPK_INSTANTIATE_HYBRID(KKKV)

#undef MPTOPK_INSTANTIATE_HYBRID

}  // namespace mptopk::gpu
