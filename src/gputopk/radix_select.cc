// Radix Select implementation. Host-driven passes over the most-significant
// 8-bit digits of the order-preserving key bits:
//
//   1. histogram kernel (256 bins, shared-memory accumulation + one global
//      atomic flush per bin per block);
//   2. tiny host readback of the histogram, pivot-bucket search from the top;
//   3. cluster kernel: elements in buckets above the pivot stream directly
//      into the result (the paper's "eliminates the last pass" revision),
//      elements in the pivot bucket become the next pass's candidates. Both
//      streams are staged in shared memory per block and written out
//      coalesced after one global-counter reservation per block. If a pass
//      achieves no reduction, the write is skipped and the digit advances
//      (the paper's bucket-killer defense).
#include "gputopk/radix_select.h"

#include <algorithm>

#include "common/bits.h"
#include "common/key_transform.h"
#include "gputopk/kernel_util.h"

namespace mptopk::gpu {
namespace {

using simt::Block;
using simt::DeviceBuffer;
using simt::GlobalSpan;
using simt::Thread;

constexpr int kRadixBits = 8;
constexpr int kRadix = 1 << kRadixBits;
constexpr int kBlockDim = 256;
constexpr int kMaxGrid = 128;  // bounded grid; blocks cover element ranges

// Sized so the scan-based compaction workspace (3 staged tiles + per-thread
// counters) fits 48 KiB shared memory.
template <typename E>
constexpr size_t SelectTile() {
  return sizeof(E) <= 4 ? 2048 : (sizeof(E) <= 12 ? 1024 : 512);
}

template <typename E>
using KeyBits = typename KeyTraits<typename ElementTraits<E>::Key>::Unsigned;

template <typename E>
uint32_t MsdDigitOf(const E& e, int pass) {
  using Key = typename ElementTraits<E>::Key;
  return ExtractDigitMsd(
      KeyTraits<Key>::ToOrderedBits(ElementTraits<E>::PrimaryKey(e)), pass,
      kRadixBits);
}

// Blocks cover contiguous element ranges (bounded grid) so the per-block
// histogram flush amortizes over many tiles.
template <typename E>
Status LaunchMsdHistogram(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                          GlobalSpan<uint32_t> hist, int pass) {
  const size_t tile = SelectTile<E>();
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, tile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), tile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "select_histogram"},
      [&](Block& blk) {
        auto counts = blk.AllocShared<uint32_t>(kRadix);
        blk.ForEachThread([&](Thread& t) {
          for (int b = t.tid; b < kRadix; b += kBlockDim) {
            counts.Write(t, b, 0);
          }
        });
        blk.Sync();
        size_t base = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t end = std::min(base + per_block, n);
        blk.ForEachThread([&](Thread& t) {
          for (size_t i = base + t.tid; i < end; i += kBlockDim) {
            counts.AtomicAdd(t, MsdDigitOf(in.Read(t, i), pass), 1u);
          }
        });
        blk.Sync();
        blk.ForEachThread([&](Thread& t) {
          for (int b = t.tid; b < kRadix; b += kBlockDim) {
            uint32_t c = counts.Read(t, b);
            if (c != 0) hist.ReduceAdd(t, b, c);
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

// Streams digit > pivot into result[emitted + ...] and digit == pivot into
// next_cand via scan-based per-tile compaction (one global reservation pair
// per tile; no same-word atomic storms). counters[0] counts emitted-this-
// pass, counters[1] counts next candidates.
template <typename E>
Status LaunchCluster(const simt::ExecCtx& dev, GlobalSpan<E> in, size_t n,
                     uint32_t pivot, int pass, GlobalSpan<E> result,
                     size_t emitted, GlobalSpan<E> next_cand,
                     GlobalSpan<uint32_t> counters) {
  const size_t tile = SelectTile<E>();
  const int grid = static_cast<int>(
      std::min<uint64_t>(kMaxGrid, CeilDiv(n, tile)));
  const size_t per_block = RoundUp(CeilDiv(n, grid), tile);
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "select_cluster"},
      [&](Block& blk) {
        auto w = TwoWayCompactWorkspace<E>::Alloc(blk, tile);
        size_t range_lo = static_cast<size_t>(blk.block_idx()) * per_block;
        size_t range_hi = std::min(range_lo + per_block, n);
        for (size_t base = range_lo; base < range_hi; base += tile) {
          size_t end = std::min(base + tile, range_hi);
          TwoWayCompactTile<E>(
              blk, w, in, base, end,
              [&](const E& e) {
                uint32_t d = MsdDigitOf(e, pass);
                return d > pivot ? 1 : (d == pivot ? 0 : -1);
              },
              result, emitted, next_cand, counters);
        }
      });
  return st.ok() ? Status::OK() : st.status();
}

// Copies count elements from src into result[emitted, emitted+count).
template <typename E>
Status LaunchCopyOut(const simt::ExecCtx& dev, GlobalSpan<E> src, size_t count,
                     GlobalSpan<E> result, size_t emitted) {
  const int grid =
      static_cast<int>(std::min<uint64_t>(256, CeilDiv(count, kBlockDim)));
  auto st = dev.Launch(
      {.grid_dim = grid, .block_dim = kBlockDim, .name = "select_copy_out"},
      [&](Block& blk) {
        blk.ForEachThread([&](Thread& t) {
          size_t stride = static_cast<size_t>(grid) * kBlockDim;
          for (size_t i =
                   static_cast<size_t>(blk.block_idx()) * kBlockDim + t.tid;
               i < count; i += stride) {
            result.Write(t, emitted + i, src.Read(t, i));
          }
        });
      });
  return st.ok() ? Status::OK() : st.status();
}

}  // namespace

template <typename E>
StatusOr<TopKResult<E>> RadixSelectTopKDevice(const simt::ExecCtx& dev,
                                              DeviceBuffer<E>& data, size_t n,
                                              size_t k) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  DeviceTimeTracker tracker(dev);
  MPTOPK_ASSIGN_OR_RETURN(auto result_buf, dev.Alloc<E>(k));
  MPTOPK_ASSIGN_OR_RETURN(auto cand_a, dev.Alloc<E>(n));
  MPTOPK_ASSIGN_OR_RETURN(auto cand_b, dev.Alloc<E>(n));
  MPTOPK_ASSIGN_OR_RETURN(auto hist_buf, dev.Alloc<uint32_t>(kRadix));
  MPTOPK_ASSIGN_OR_RETURN(auto counters, dev.Alloc<uint32_t>(2));

  GlobalSpan<E> result(result_buf);
  GlobalSpan<E> candidates(data);  // pass 0 reads the input directly
  GlobalSpan<E> next = GlobalSpan<E>(cand_a);
  GlobalSpan<E> spare = GlobalSpan<E>(cand_b);
  GlobalSpan<uint32_t> hist(hist_buf);
  GlobalSpan<uint32_t> cnts(counters);

  const int passes = static_cast<int>(sizeof(KeyBits<E>));
  size_t cand_count = n;
  size_t emitted = 0;
  size_t k_rem = k;

  for (int pass = 0; pass < passes && k_rem > 0; ++pass) {
    MPTOPK_RETURN_NOT_OK(FillDevice<uint32_t>(dev, hist_buf, 0, kRadix, 0));
    MPTOPK_RETURN_NOT_OK(
        LaunchMsdHistogram(dev, candidates, cand_count, hist, pass));
    uint32_t h[kRadix];
    MPTOPK_RETURN_NOT_OK(dev.CopyToHost(h, hist_buf, kRadix));

    // Pivot: first bucket from the top whose cumulative count reaches k_rem.
    size_t cum = 0;
    int pivot = kRadix - 1;
    for (int b = kRadix - 1; b >= 0; --b) {
      cum += h[b];
      if (cum >= k_rem) {
        pivot = b;
        break;
      }
    }
    const size_t hi_count = cum - h[pivot];
    const size_t eq_count = h[pivot];

    if (hi_count == 0 && eq_count == cand_count) {
      // No reduction: skip the clustering write, just advance the digit
      // (paper Section 4.2). All candidates share this digit value.
      continue;
    }

    MPTOPK_RETURN_NOT_OK(FillDevice<uint32_t>(dev, counters, 0, 2, 0));
    MPTOPK_RETURN_NOT_OK(LaunchCluster(dev, candidates, cand_count,
                                       static_cast<uint32_t>(pivot), pass,
                                       result, emitted, next, cnts));
    emitted += hi_count;
    k_rem -= hi_count;
    cand_count = eq_count;
    candidates = next;
    std::swap(next, spare);

    if (cand_count == k_rem) {
      MPTOPK_RETURN_NOT_OK(
          LaunchCopyOut(dev, candidates, cand_count, result, emitted));
      emitted += cand_count;
      k_rem = 0;
    }
  }
  if (k_rem > 0) {
    // All remaining candidates tie on the full key; pad with any k_rem.
    MPTOPK_RETURN_NOT_OK(LaunchCopyOut(dev, candidates, k_rem, result,
                                       emitted));
  }

  TopKResult<E> result_out;
  result_out.items.resize(k);
  MPTOPK_RETURN_NOT_OK(dev.CopyToHost(result_out.items.data(), result_buf, k));
  // Selection produces an unordered top-k set; canonicalize to descending on
  // the host (k is tiny). The paper's variant likewise leaves ordering to
  // the consumer.
  SortDescending(&result_out.items);
  result_out.kernel_ms = tracker.ElapsedMs();
  result_out.kernels_launched = tracker.Launches();
  return result_out;
}

template <typename E>
StatusOr<TopKResult<E>> RadixSelectTopK(const simt::ExecCtx& dev, const E* data,
                                        size_t n, size_t k) {
  MPTOPK_ASSIGN_OR_RETURN(auto buf, dev.Alloc<E>(n));
  MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(buf, data, n));
  return RadixSelectTopKDevice(dev, buf, n, k);
}

#define MPTOPK_INSTANTIATE_RSELECT(E)                                       \
  template StatusOr<TopKResult<E>> RadixSelectTopKDevice<E>(                \
      const simt::ExecCtx&, DeviceBuffer<E>&, size_t, size_t);                     \
  template StatusOr<TopKResult<E>> RadixSelectTopK<E>(                      \
      const simt::ExecCtx&, const E*, size_t, size_t);

MPTOPK_INSTANTIATE_RSELECT(float)
MPTOPK_INSTANTIATE_RSELECT(double)
MPTOPK_INSTANTIATE_RSELECT(uint32_t)
MPTOPK_INSTANTIATE_RSELECT(int32_t)
MPTOPK_INSTANTIATE_RSELECT(uint64_t)
MPTOPK_INSTANTIATE_RSELECT(int64_t)
MPTOPK_INSTANTIATE_RSELECT(KV)
MPTOPK_INSTANTIATE_RSELECT(KV64)
MPTOPK_INSTANTIATE_RSELECT(KKV)
MPTOPK_INSTANTIATE_RSELECT(KKKV)

#undef MPTOPK_INSTANTIATE_RSELECT

}  // namespace mptopk::gpu
