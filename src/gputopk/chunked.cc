#include "gputopk/chunked.h"

#include <algorithm>

#include "common/bits.h"

namespace mptopk::gpu {

template <typename E>
StatusOr<ChunkedTopKResult<E>> ChunkedTopK(const simt::ExecCtx& dev, const E* data,
                                           size_t n, size_t k,
                                           size_t chunk_elems,
                                           Algorithm algo) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("require 1 <= k <= n");
  }
  if (chunk_elems == 0) {
    chunk_elems = dev.spec().global_mem_bytes / sizeof(E) / 8;
  }
  chunk_elems = std::max(chunk_elems, 2 * k);

  const double start_kernel = dev.total_sim_ms();
  const double start_pcie = dev.pcie_ms();

  ChunkedTopKResult<E> result;
  const size_t chunks = CeilDiv(n, chunk_elems);
  result.chunks = static_cast<int>(chunks);

  // Per-chunk candidates accumulate on-device.
  MPTOPK_ASSIGN_OR_RETURN(auto candidates, dev.Alloc<E>(chunks * k));
  MPTOPK_ASSIGN_OR_RETURN(auto chunk_buf, dev.Alloc<E>(chunk_elems));
  size_t cand_count = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t base = c * chunk_elems;
    const size_t len = std::min(chunk_elems, n - base);
    const size_t k_chunk = std::min(k, len);
    MPTOPK_RETURN_NOT_OK(dev.CopyToDevice(chunk_buf, data + base, len));
    MPTOPK_ASSIGN_OR_RETURN(auto top,
                            TopKDevice(dev, chunk_buf, len, k_chunk, algo));
    // Stage the chunk's winners back into the candidate pool (tiny).
    std::copy(top.items.begin(), top.items.end(),
              candidates.host_data() + cand_count);
    cand_count += top.items.size();
  }
  // Final reduction over c*k candidates.
  MPTOPK_ASSIGN_OR_RETURN(auto top,
                          TopKDevice(dev, candidates, cand_count,
                                     std::min(k, cand_count), algo));
  result.items = std::move(top.items);
  result.kernel_ms = dev.total_sim_ms() - start_kernel;
  result.pcie_ms = dev.pcie_ms() - start_pcie;
  result.overlapped_ms = std::max(result.kernel_ms, result.pcie_ms);
  result.serialized_ms = result.kernel_ms + result.pcie_ms;
  return result;
}

#define MPTOPK_INSTANTIATE_CHUNKED(E)                                       \
  template StatusOr<ChunkedTopKResult<E>> ChunkedTopK<E>(                   \
      const simt::ExecCtx&, const E*, size_t, size_t, size_t, Algorithm);

MPTOPK_INSTANTIATE_CHUNKED(float)
MPTOPK_INSTANTIATE_CHUNKED(double)
MPTOPK_INSTANTIATE_CHUNKED(uint32_t)
MPTOPK_INSTANTIATE_CHUNKED(int32_t)
MPTOPK_INSTANTIATE_CHUNKED(KV)

#undef MPTOPK_INSTANTIATE_CHUNKED

}  // namespace mptopk::gpu
