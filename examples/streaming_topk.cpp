// Streaming top-k over data larger than (simulated) GPU memory: the input
// is processed in device-sized chunks, keeping only each chunk's top-k as
// candidates (paper Section 4.3, "Data larger than GPU memory").
//
//   $ ./streaming_topk [--n_log2=22] [--chunks=8]
#include <cstdio>

#include "common/distributions.h"
#include "common/flags.h"
#include "gputopk/chunked.h"

using namespace mptopk;

int main(int argc, char** argv) {
  Flags flags;
  flags.Define("n_log2", "22", "log2 of the total element count");
  flags.Define("chunks", "8", "number of device-sized chunks to split into");
  flags.Define("k", "64", "result size");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    flags.PrintHelp(argv[0]);
    return 0;
  }
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const size_t k = flags.GetInt("k");
  const size_t chunk = n / std::max<int64_t>(1, flags.GetInt("chunks"));

  std::printf("generating %zu floats...\n", n);
  auto data = GenerateFloats(n, Distribution::kUniform, 11);

  simt::Device dev;
  dev.set_trace_sample_target(16);
  auto r = gpu::ChunkedTopK(dev, data.data(), n, k, chunk);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("streamed %d chunks of %zu elements\n", r->chunks, chunk);
  std::printf("top-%zu head: %.7f %.7f %.7f ...\n", k, r->items[0],
              r->items[1], r->items[2]);
  std::printf("kernel %.3f ms + PCIe %.3f ms  ->  %.3f ms overlapped, "
              "%.3f ms serialized\n",
              r->kernel_ms, r->pcie_ms, r->overlapped_ms, r->serialized_ms);
  std::printf("(the reductive top-k keeps the device-side work at ~%.0f%% "
              "of transfer: chunked top-k is PCIe bound, as the paper "
              "argues)\n", 100.0 * r->kernel_ms / r->pcie_ms);
  return 0;
}
