// Quickstart: compute a top-k on the simulated GPU with each algorithm.
//
//   $ ./quickstart
//
// Demonstrates the three levels of the public API:
//   1. the one-call dispatcher gpu::TopK (host data in, top-k out),
//   2. device-resident buffers + a specific algorithm,
//   3. inspecting the device's simulated time and memory-traffic metrics.
#include <cstdio>

#include "common/distributions.h"
#include "gputopk/topk.h"

using namespace mptopk;

int main() {
  // 1M uniform floats; we want the 8 largest.
  const size_t n = 1 << 20;
  const size_t k = 8;
  auto data = GenerateFloats(n, Distribution::kUniform, /*seed=*/7);

  // --- Level 1: one call ----------------------------------------------------
  simt::Device device;  // simulated GTX Titan X (Maxwell)
  auto result = gpu::TopK(device, data.data(), n, k);
  if (!result.ok()) {
    std::fprintf(stderr, "top-k failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("top-%zu of %zu floats (bitonic top-k):\n", k, n);
  for (size_t i = 0; i < result->items.size(); ++i) {
    std::printf("  #%zu  %.7f\n", i + 1, result->items[i]);
  }
  std::printf("simulated kernel time: %.4f ms in %d launches\n\n",
              result->kernel_ms, result->kernels_launched);

  // --- Level 2: device-resident data, explicit algorithm ---------------------
  auto buf = device.Alloc<float>(n);
  if (!buf.ok()) return 1;
  device.CopyToDevice(*buf, data.data(), n);
  for (auto algo : {gpu::Algorithm::kBitonic, gpu::Algorithm::kHybrid,
                    gpu::Algorithm::kRadixSelect, gpu::Algorithm::kSort}) {
    auto r = gpu::TopKDevice(device, *buf, n, k, algo);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", gpu::AlgorithmName(algo),
                   r.status().ToString().c_str());
      continue;
    }
    std::printf("%-14s %.4f ms   (max = %.7f)\n", gpu::AlgorithmName(algo),
                r->kernel_ms, r->items.front());
  }

  // --- Level 3: what did the device actually do? -----------------------------
  std::printf("\ndevice totals: %s\n",
              device.total_metrics().ToString().c_str());
  std::printf("total simulated kernel time: %.4f ms, PCIe staging: %.4f ms\n",
              device.total_sim_ms(), device.pcie_ms());
  return 0;
}
