// Cost-based planning: pick the best top-k algorithm per workload, the way
// a query optimizer would (paper Section 7 / conclusion).
//
//   $ ./planner_demo
//
// Prints the predicted cost of every algorithm across a (n, k) grid at the
// paper's hardware scale, the planner's choice, and — for a smaller point —
// a validation run showing the choice is right on the simulated device.
#include <cstdio>

#include "common/distributions.h"
#include "planner/plan_topk.h"

using namespace mptopk;

int main() {
  const auto spec = simt::DeviceSpec::TitanXMaxwell();

  std::printf("Predicted cost (ms) at the paper's scale, uniform floats:\n");
  std::printf("%-10s %-6s %-10s %-10s %-12s %-12s %-10s %s\n", "n", "k",
              "Sort", "RadixSel", "BucketSel", "PerThread", "Bitonic",
              "-> planner picks");
  for (size_t n_log2 : {26, 29}) {
    for (size_t k : {1, 32, 256, 1024}) {
      cost::Workload w{size_t{1} << n_log2, k, 4, 4, Distribution::kUniform};
      auto plan = planner::PlanTopK(spec, w);
      if (!plan.ok()) continue;
      double t[5] = {cost::SortCostMs(spec, w),
                     cost::RadixSelectCostMs(spec, w),
                     cost::BucketSelectCostMs(spec, w),
                     cost::PerThreadCostMs(spec, w),
                     cost::BitonicTopKCostMs(
                         spec, {w.n, NextPowerOfTwo(k), 4, 4, w.dist})};
      std::printf("2^%-8zu %-6zu %-10.1f %-10.1f %-12.1f ", n_log2, k, t[0],
                  t[1], t[2]);
      if (t[3] < 0) {
        std::printf("%-12s ", "infeasible");
      } else {
        std::printf("%-12.1f ", t[3]);
      }
      std::printf("%-10.1f %s\n", t[4], plan->best->name().c_str());
    }
  }

  // Validate one point against the simulator.
  std::printf("\nValidation at n=2^20, k=32 (simulated device):\n");
  const size_t n = 1 << 20;
  auto data = GenerateFloats(n, Distribution::kUniform);
  cost::Workload w{n, 32, 4, 4, Distribution::kUniform};
  auto plan = planner::PlanTopK(spec, w);
  if (!plan.ok()) return 1;
  for (const auto& e : plan->ranked) {
    simt::Device dev;
    dev.set_trace_sample_target(16);
    auto r = e.op->TopKHost(dev, data.data(), n, 32);
    std::printf("  %-14s predicted %8.3f ms   measured %8.3f ms\n",
                e.op->name().c_str(), e.predicted_ms,
                r.ok() ? r->kernel_ms : -1.0);
  }
  std::printf("planner's pick: %s\n", plan->best->name().c_str());

  // With extensions enabled, the sampling hybrid (paper Section 8 future
  // work) joins the candidate set.
  auto ext = planner::PlanTopK(spec, w, /*include_extensions=*/true);
  if (ext.ok()) {
    std::printf("\nwith extensions enabled: %s (predicted %.3f ms)\n",
                ext->best->name().c_str(),
                ext->ranked.front().predicted_ms);
  }
  return 0;
}
