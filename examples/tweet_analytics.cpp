// Tweet analytics: the paper's four MapD queries (Section 6.8) on the
// synthetic tweets table, comparing execution strategies.
//
//   $ ./tweet_analytics [--rows_log2=18]
//
// Shows how a GPU database integrates bitonic top-k: replacing the sort in
// ORDER BY ... LIMIT plans, and fusing the filter / ranking computation
// directly into the top-k kernel (Section 5).
#include <cstdio>

#include "common/flags.h"
#include "engine/query.h"
#include "engine/tweets.h"

using namespace mptopk;
using namespace mptopk::engine;

int main(int argc, char** argv) {
  Flags flags;
  flags.Define("rows_log2", "18", "log2 of the tweets-table row count");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    flags.PrintHelp(argv[0]);
    return 0;
  }
  const size_t rows = size_t{1} << flags.GetInt("rows_log2");

  simt::Device device;
  device.set_trace_sample_target(16);
  auto table_or = MakeTweetsTable(&device, rows);
  if (!table_or.ok()) {
    std::fprintf(stderr, "%s\n", table_or.status().ToString().c_str());
    return 1;
  }
  auto table = std::move(table_or).value();
  std::printf("tweets table: %zu rows, %zu columns\n\n", table->num_rows(),
              table->num_columns());

  auto show = [&](const char* sql, const Filter& f, const Ranking& r,
                  size_t k) {
    std::printf("%s\n", sql);
    for (auto strat : {TopKStrategy::kFilterSort, TopKStrategy::kFilterBitonic,
                       TopKStrategy::kCombinedBitonic}) {
      auto res = FilterTopKQuery(*table, f, r, "id", k, strat);
      if (!res.ok()) {
        std::fprintf(stderr, "  %s: %s\n", StrategyName(strat),
                     res.status().ToString().c_str());
        continue;
      }
      std::printf("  %-22s %8.3f ms kernel (%zu rows matched)\n",
                  StrategyName(strat), res->kernel_ms, res->matched_rows);
      if (strat == TopKStrategy::kCombinedBitonic) {
        std::printf("  top ids: ");
        for (size_t i = 0; i < std::min<size_t>(5, res->ids.size()); ++i) {
          std::printf("%lld(rank %.0f) ",
                      static_cast<long long>(res->ids[i]),
                      res->rank_values[i]);
        }
        std::printf("...\n");
      }
    }
    std::printf("\n");
  };

  // Query 1: top-50 most retweeted tweets in a time range (50% selectivity).
  show("Q1: SELECT id FROM tweets WHERE tweet_time < X "
       "ORDER BY retweet_count DESC LIMIT 50",
       Filter{{{"tweet_time", CompareOp::kLt, 0.5 * kTweetTimeRange}}},
       Ranking{{{"retweet_count", 1.0}}}, 50);

  // Query 2: custom ranking function.
  show("Q2: SELECT id FROM tweets "
       "ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 100",
       Filter{},
       Ranking{{{"retweet_count", 1.0}, {"likes_count", 0.5}}}, 100);

  // Query 3: language filter (~80% selectivity).
  show("Q3: SELECT id FROM tweets WHERE lang='en' OR lang='es' "
       "ORDER BY retweet_count DESC LIMIT 50",
       Filter{{{"lang", CompareOp::kEq, kLangEn},
               {"lang", CompareOp::kEq, kLangEs}}},
       Ranking{{{"retweet_count", 1.0}}}, 50);

  // Query 4: group-by count.
  std::printf("Q4: SELECT uid, COUNT(*) AS c FROM tweets GROUP BY uid "
              "ORDER BY c DESC LIMIT 50\n");
  for (auto strat : {GroupByStrategy::kSort, GroupByStrategy::kBitonic}) {
    auto res = GroupByCountTopKQuery(*table, "uid", 50, strat);
    if (!res.ok()) {
      std::fprintf(stderr, "  %s\n", res.status().ToString().c_str());
      continue;
    }
    std::printf("  %-8s group-by %8.3f ms + top-k %8.3f ms = %8.3f ms "
                "(%zu groups)\n",
                strat == GroupByStrategy::kSort ? "Sort" : "Bitonic",
                res->groupby_ms, res->topk_ms, res->kernel_ms,
                res->num_groups);
    if (strat == GroupByStrategy::kBitonic) {
      std::printf("  busiest users: ");
      for (size_t i = 0; i < std::min<size_t>(5, res->keys.size()); ++i) {
        std::printf("uid %d (%u tweets) ", res->keys[i], res->counts[i]);
      }
      std::printf("...\n");
    }
  }
  return 0;
}
