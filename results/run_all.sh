#!/bin/sh
# Regenerates every paper table/figure reproduction into results/*.txt.
# Default scale: n = 2^20 (paper: 2^29); pass a different exponent as $1.
N=${1:-20}
cd "$(dirname "$0")/.."
B=build/bench
set -x
$B/bench_vary_k --dtype=f32 --n_log2=$N > results/fig11a_vary_k_f32.txt
$B/bench_vary_k --dtype=u32 --n_log2=$N > results/fig11b_vary_k_u32.txt
$B/bench_vary_k --dtype=f64 --n_log2=$N > results/fig11c_vary_k_f64.txt
$B/bench_distribution --dist=increasing --n_log2=$N > results/fig12a_increasing.txt
$B/bench_distribution --dist=bucket_killer --n_log2=$N > results/fig12b_bucket_killer.txt
$B/bench_vary_n --min_log2=16 --max_log2=$((N+2)) > results/fig13_vary_n.txt
$B/bench_key_value --n_log2=$N > results/fig14_key_value.txt
$B/bench_cpu_vs_gpu --dist=uniform --n_log2=$N > results/fig15a_cpu_uniform.txt
$B/bench_cpu_vs_gpu --dist=increasing --n_log2=$N > results/fig15b_cpu_increasing.txt
$B/bench_engine --query=1 --n_log2=$N > results/fig16a_query1.txt
$B/bench_engine --query=2 --n_log2=$N > results/fig16b_query2.txt
$B/bench_engine --query=3 --n_log2=$N > results/query3_lang.txt
$B/bench_engine --query=4 --n_log2=$N > results/query4_groupby.txt
$B/bench_cost_model --n_log2=$N > results/fig17_cost_model.txt
$B/bench_ablation --sweep=opts --n_log2=$N > results/sec43_ablation_ladder.txt
$B/bench_ablation --sweep=B --n_log2=$N > results/fig8_elems_per_thread.txt
$B/bench_perthread_variants --n_log2=$N > results/fig18_perthread_variants.txt
$B/bench_hybrid --n_log2=$N > results/sec8_hybrid.txt
$B/bench_sim_host --n_log2=$((N-2)) --json_out=BENCH_sim_host.json > results/host_throughput.txt
{
  echo "# Batched execution (engine::BatchExecutor): Q1..Q4 tweet-query mix,"
  echo "# n=2^$N rows. Streams overlap in simulated time; host execution is"
  echo "# sequential so per-query results are bit-identical to the serial path."
  for b in 1 4 16; do
    echo; echo "## batch=$b streams=$b (pooled)"
    $B/bench_engine --batch=$b --streams=$b --n_log2=$N
  done
  echo; echo "## batch=16 streams=16 (--no_pool baseline)"
  $B/bench_engine --batch=16 --streams=16 --no_pool=true --n_log2=$N
} > results/batching.txt
