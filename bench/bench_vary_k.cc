// Reproduces paper Figure 11 (a/b/c): all five algorithms with k varying
// from 1 to 1024, for float / uint32 / double keys.
//
//   Fig 11a: --dtype=f32   (2^29 floats U(0,1) in the paper)
//   Fig 11b: --dtype=u32   (uniform unsigned ints)
//   Fig 11c: --dtype=f64   (same byte volume, 64-bit keys)
//
// Expected shapes: Sort flat and slowest; Radix/Bucket Select flat in k;
// PerThread rising steeply from k=32 and failing (-) past its shared-memory
// limit; Bitonic fastest for k <= 256 with the crossover to RadixSelect
// above. RadixSelect is faster on u32 than f32 (maximal per-pass reduction).
#include "bench/bench_util.h"

namespace mptopk::bench {
namespace {

template <typename E>
void Run(const std::vector<E>& data, bool csv, int trace_sample,
         bool racecheck) {
  const auto sweep = topk::GpuSweepOperators();
  std::vector<std::string> header{"k"};
  for (const auto* op : sweep) header.push_back(op->display_name());
  header.push_back("MemBandwidth");
  TablePrinter table(header);
  const double floor_ms = BandwidthFloorMs(data.size() * sizeof(E));
  for (size_t k : PowersOfTwo(1, 1024)) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto* op : sweep) {
      row.push_back(MsCell(RunOp(*op, data, k, trace_sample, racecheck)));
    }
    row.push_back(MsCell(floor_ms));
    table.AddRow(std::move(row));
  }
  PrintTable(table, csv);
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("dtype", "f32", "key type: f32 | u32 | f64");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const bool csv = flags.GetBool("csv");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  const uint64_t seed = flags.GetInt("seed");
  const std::string dtype = flags.GetString("dtype");
  const bool rc = flags.GetBool("racecheck");

  std::printf("# Figure 11%s: top-k vs k, n=2^%lld %s keys, uniform "
              "(simulated ms)\n",
              dtype == "f32" ? "a" : (dtype == "u32" ? "b" : "c"),
              static_cast<long long>(flags.GetInt("n_log2")), dtype.c_str());
  if (dtype == "f32") {
    Run(GenerateFloats(n, Distribution::kUniform, seed), csv, ts, rc);
  } else if (dtype == "u32") {
    Run(GenerateU32(n, Distribution::kUniform, seed), csv, ts, rc);
  } else if (dtype == "f64") {
    Run(GenerateDoubles(n, Distribution::kUniform, seed), csv, ts, rc);
  } else {
    std::fprintf(stderr, "unknown --dtype %s\n", dtype.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
