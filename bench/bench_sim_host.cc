// Host throughput of the SIMT simulator itself (not a paper figure): how
// fast the multi-worker block launcher (simt/workers.h) chews through
// simulated blocks, by algorithm x worker count x tracing mode. Simulated
// milliseconds are worker-count-invariant by construction (see
// tests/parallel_launch_test.cc); this bench measures the host wall-clock
// those numbers cost. Speedup saturates at the machine's physical core
// count — host_cores in the output records what this run had available.
//
//   bench_sim_host --json_out=BENCH_sim_host.json > results/host_throughput.txt
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

namespace mptopk::bench {
namespace {

struct Sample {
  std::string algo;
  int workers;
  bool tracing;
  double wall_ms;      // host wall-clock per TopK call (best of reps)
  double sim_ms;       // simulated kernel ms (worker-invariant)
  double blocks_per_s;
  double melem_per_s;
};

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("k", "64", "top-k size");
  flags.Define("reps", "3", "repetitions per cell (best wall-clock wins)");
  flags.Define("json_out", "",
               "also write machine-readable results to this JSON file");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const size_t k = static_cast<size_t>(flags.GetInt("k"));
  const int reps = static_cast<int>(flags.GetInt("reps"));
  const bool csv = flags.GetBool("csv");
  const unsigned host_cores = std::thread::hardware_concurrency();

  const auto data =
      GenerateFloats(n, Distribution::kUniform, flags.GetInt("seed"));

  const auto sweep = topk::GpuSweepOperators();
  constexpr int kWorkers[] = {1, 2, 4, 8};

  std::printf("# SIMT simulator host throughput: n=2^%lld f32, k=%zu, "
              "host_cores=%u\n",
              static_cast<long long>(flags.GetInt("n_log2")), k, host_cores);
  std::printf("# wall ms = best of %d reps (std::chrono, host); sim ms is "
              "identical for every worker count.\n",
              reps);

  std::vector<Sample> samples;
  TablePrinter table({"algo", "tracing", "workers", "wall_ms", "sim_ms",
                      "Mblocks/s", "Melem/s", "speedup"});
  for (const auto* op : sweep) {
    for (bool tracing : {true, false}) {
      double base_wall = 0.0;
      for (int w : kWorkers) {
        double best_ms = -1.0;
        double sim_ms = 0.0;
        uint64_t blocks = 0;
        for (int rep = 0; rep < reps; ++rep) {
          simt::Device dev;
          dev.set_host_workers(w);
          // Tracing on = exact (every block traced); off = the 1-block
          // minimum (block 0 is always traced for calibration).
          dev.set_trace_sample_target(tracing ? 0 : 1);
          const auto t0 = std::chrono::steady_clock::now();
          auto r = op->TopKHost(dev, data.data(), n, k);
          const auto t1 = std::chrono::steady_clock::now();
          if (!r.ok()) { best_ms = -1.0; break; }
          const double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
          sim_ms = r->kernel_ms;
          blocks = 0;
          for (const auto& ks : dev.kernel_log()) {
            blocks += ks.metrics.blocks_launched;
          }
        }
        if (best_ms < 0.0) continue;  // infeasible configuration
        if (w == 1) base_wall = best_ms;
        const double blocks_per_s =
            static_cast<double>(blocks) / (best_ms * 1e-3);
        const double melem_per_s =
            static_cast<double>(n) / (best_ms * 1e-3) / 1e6;
        samples.push_back({op->name(), w, tracing, best_ms,
                           sim_ms, blocks_per_s, melem_per_s});
        table.AddRow({op->name(), tracing ? "full" : "min",
                      std::to_string(w), MsCell(best_ms), MsCell(sim_ms),
                      TablePrinter::Cell(blocks_per_s / 1e6, 3),
                      TablePrinter::Cell(melem_per_s, 1),
                      TablePrinter::Cell(base_wall / best_ms, 2)});
      }
    }
  }
  PrintTable(table, csv);

  if (const std::string path = flags.GetString("json_out"); !path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"sim_host\",\n  \"n\": %zu,\n"
                 "  \"k\": %zu,\n  \"host_cores\": %u,\n  \"reps\": %d,\n"
                 "  \"samples\": [\n",
                 n, k, host_cores, reps);
    for (size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(f,
                   "    {\"algo\": \"%s\", \"tracing\": %s, \"workers\": %d, "
                   "\"wall_ms\": %.3f, \"sim_ms\": %.3f, "
                   "\"blocks_per_s\": %.0f, \"melem_per_s\": %.2f}%s\n",
                   s.algo.c_str(), s.tracing ? "true" : "false", s.workers,
                   s.wall_ms,
                   s.sim_ms, s.blocks_per_s, s.melem_per_s,
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
