// Reproduces paper Figure 13: top-64 across data sizes (paper: 2^21..2^29
// floats; scaled default 2^16..2^22, override with --max_log2 / --min_log2).
//
// Expected shapes: Bitonic and Sort linear in n; Radix/Bucket Select
// flattening at small n where the constant prefix-sum / pass overheads
// dominate; PerThread's bulge where per-thread streams are short.
#include "bench/bench_util.h"

namespace mptopk::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("min_log2", "16", "smallest input size (log2)");
  flags.Define("max_log2", "22", "largest input size (log2)");
  flags.Define("k", "64", "result size (paper fixes k=64)");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  const size_t k = flags.GetInt("k");
  const bool rc = flags.GetBool("racecheck");

  std::printf("# Figure 13: top-%zu vs data size, uniform floats "
              "(simulated ms)\n", k);
  const auto sweep = topk::GpuSweepOperators();
  std::vector<std::string> header{"log2(n)"};
  for (const auto* op : sweep) header.push_back(op->display_name());
  TablePrinter table(header);
  for (int64_t lg = flags.GetInt("min_log2"); lg <= flags.GetInt("max_log2");
       ++lg) {
    const size_t n = size_t{1} << lg;
    auto data = GenerateFloats(n, Distribution::kUniform, flags.GetInt("seed"));
    std::vector<std::string> row{std::to_string(lg)};
    for (const auto* op : sweep) {
      row.push_back(MsCell(RunOp(*op, data, k, ts, rc)));
    }
    table.AddRow(std::move(row));
  }
  PrintTable(table, flags.GetBool("csv"));
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
