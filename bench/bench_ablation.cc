// Reproduces the paper's Section 4.3 optimization study:
//
//   --sweep=opts (default): the cumulative optimization ladder for top-32
//     (paper: 521 -> 122 -> 48.2 -> 33.7 -> 22.3 -> 16 -> 15.4 ms at 2^29).
//     Each row enables one more optimization; times must fall monotonically.
//   --sweep=B: Figure 8, varying elements-per-thread B in {8,16,32,64}
//     (paper: 16 optimal; 32 no gain; 64 hurts via occupancy).
#include "bench/bench_util.h"
#include "gputopk/bitonic_topk.h"

namespace mptopk::bench {
namespace {

double RunBitonic(const std::vector<float>& data, size_t k,
                  const gpu::BitonicOptions& opts, int ts,
                  simt::KernelMetrics* metrics_out) {
  simt::Device dev;
  dev.set_trace_sample_target(ts);
  auto r = gpu::BitonicTopK(dev, data.data(), data.size(), k, opts);
  if (!r.ok()) return kNaN;
  if (metrics_out != nullptr) *metrics_out = dev.total_metrics();
  return r->kernel_ms;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("sweep", "opts", "opts | B");
  flags.Define("k", "32", "result size (paper ablates top-32)");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const size_t k = flags.GetInt("k");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  auto data = GenerateFloats(n, Distribution::kUniform, flags.GetInt("seed"));

  if (flags.GetString("sweep") == "B") {
    std::printf("# Figure 8: elements per thread (B), top-%zu of 2^%lld "
                "floats (simulated ms)\n", k,
                static_cast<long long>(flags.GetInt("n_log2")));
    TablePrinter t({"B", "time ms", "bank-conflict cycles", "occupancy note"});
    for (int b : {2, 4, 8, 16, 32, 64}) {
      gpu::BitonicOptions o;
      o.elems_per_thread = b;
      simt::KernelMetrics m;
      double ms = RunBitonic(data, k, o, ts, &m);
      t.AddRow({std::to_string(b), MsCell(ms),
                std::to_string(m.bank_conflict_cycles),
                b >= 64 ? "block shrinks to fit shared memory" : ""});
    }
    PrintTable(t, flags.GetBool("csv"));
    return 0;
  }

  std::printf("# Section 4.3 ladder: cumulative optimizations, top-%zu of "
              "2^%lld floats (simulated ms; paper at 2^29: 521 / 122 / 48.2 "
              "/ 33.7 / 22.3 / 16 / 15.4)\n", k,
              static_cast<long long>(flags.GetInt("n_log2")));
  struct Level {
    const char* name;
    gpu::BitonicOptions opts;
  };
  std::vector<Level> levels;
  gpu::BitonicOptions o = gpu::BitonicOptions::Naive();
  levels.push_back({"baseline (global-memory steps)", o});
  o.use_shared_memory = true;
  levels.push_back({"+ shared-memory staging", o});
  o.fuse_kernels = true;
  levels.push_back({"+ fused SortReducer/BitonicReducer", o});
  o.combine_steps = true;
  levels.push_back({"+ combined steps (registers)", o});
  o.pad_shared = true;
  levels.push_back({"+ padding (B: 8 -> 16)", o});
  o.chunk_permute = true;
  levels.push_back({"+ chunk permutation", o});
  o.reassign_partitions = true;
  levels.push_back({"+ partition reassignment", o});

  TablePrinter t({"configuration", "time ms", "global MB",
                  "shared cycles", "conflict cycles", "launches"});
  for (const Level& lvl : levels) {
    simt::Device dev;
    dev.set_trace_sample_target(ts);
    auto r = gpu::BitonicTopK(dev, data.data(), n, k, lvl.opts);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", lvl.name,
                   r.status().ToString().c_str());
      return 1;
    }
    const auto& m = dev.total_metrics();
    t.AddRow({lvl.name, MsCell(r->kernel_ms),
              TablePrinter::Cell(m.global_bytes / 1e6, 1),
              std::to_string(m.shared_cycles),
              std::to_string(m.bank_conflict_cycles),
              std::to_string(r->kernels_launched)});
  }
  PrintTable(t, flags.GetBool("csv"));
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
