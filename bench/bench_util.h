// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table/figure of the paper's evaluation
// (Section 6/7); see DESIGN.md's experiment index. GPU numbers are
// simulated milliseconds from the SIMT device model (deterministic);
// CPU numbers are host wall-clock. Default input sizes are scaled down
// from the paper's 2^29 so every bench runs in seconds — pass --n_log2
// to raise them; shapes are size-stable (Figure 13 covers scaling).
#ifndef MPTOPK_BENCH_BENCH_UTIL_H_
#define MPTOPK_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/distributions.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "simt/workers.h"
#include "topk/registry.h"

namespace mptopk::bench {

inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Standard flags shared by the GPU benches.
inline void DefineCommonFlags(Flags* flags, const char* default_n_log2) {
  flags->Define("n_log2", default_n_log2,
                "log2 of the input size (paper uses 29)");
  flags->Define("csv", "false", "emit CSV instead of an aligned table");
  flags->Define("trace_sample", "32",
                "blocks traced per kernel launch (0 = all, exact)");
  flags->Define("seed", "42", "data generator seed");
  flags->Define("racecheck", "false",
                "launch kernels under the barrier-epoch race checker "
                "(hazards go to stderr; timings are unchanged). The "
                "MPTOPK_RACECHECK env var enables it for every bench.");
  flags->Define("workers", "0",
                "host worker threads per kernel launch (0 = auto: "
                "MPTOPK_WORKERS env or min(hardware_concurrency, 8)). "
                "Host speed only; simulated times are identical.");
}

/// Runs one registered top-k operator on host data, returning simulated
/// kernel ms (NaN when the operator cannot run at this configuration, e.g.
/// per-thread top-k beyond its shared-memory limit -- rendered as '-').
/// With racecheck on, hazard summaries print to stderr (timings do not
/// change; the checker is analysis-only).
template <typename E>
double RunOp(const topk::TopKOperator& op, const std::vector<E>& data,
             size_t k, int trace_sample, bool racecheck = false) {
  simt::Device dev;
  dev.set_trace_sample_target(trace_sample);
  dev.set_racecheck(racecheck || dev.racecheck());
  auto r = op.TopKHost(dev, data.data(), data.size(), k);
  if (dev.racecheck() && !dev.race_report().clean()) {
    std::fprintf(stderr, "%s: %s\n", op.name().c_str(),
                 dev.race_report().Summary().c_str());
  }
  if (!r.ok()) return kNaN;
  return r->kernel_ms;
}

/// Name-addressed variant: resolves `name` (canonical or alias) through
/// the registry -- the one string->operator parser in the codebase. An
/// unknown name aborts with the registered-operator list, so a typo in a
/// bench column is caught on the first run rather than printing '-'.
template <typename E>
double RunOp(const std::string& name, const std::vector<E>& data, size_t k,
             int trace_sample, bool racecheck = false) {
  auto op = topk::FindOperator(name);
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
    std::abort();
  }
  return RunOp(*op.value(), data, k, trace_sample, racecheck);
}

/// The paper's "Memory Bandwidth" floor: time to read the data once.
inline double BandwidthFloorMs(size_t bytes) {
  return static_cast<double>(bytes) /
         (simt::DeviceSpec::TitanXMaxwell().global_bw_gbps * 1e9) * 1e3;
}

inline void PrintTable(TablePrinter& table, bool csv) {
  if (csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
}

/// One-stop bench main() preamble: parses argv against the (already
/// defined) flags, prints parse errors to stderr and --help to stdout.
/// Returns false when main should immediately return *exit_code.
inline bool BenchInit(Flags& flags, int argc, char** argv, int* exit_code) {
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    *exit_code = 1;
    return false;
  }
  if (flags.help_requested()) {
    flags.PrintHelp(argv[0]);
    *exit_code = 0;
    return false;
  }
  // --workers (when the binary defines it; GetInt is 0 otherwise) becomes
  // the process-wide default so every Device the bench constructs uses it.
  if (int w = static_cast<int>(flags.GetInt("workers")); w > 0) {
    simt::SetHostWorkersOverride(w);
  }
  return true;
}

/// One exit path for a failed Status inside a bench main: print, return 1.
inline int FailWith(const Status& st) {
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 1;
}

/// The one milliseconds-cell format every bench table reports through
/// (3 decimals; NaN — infeasible configuration — renders as '-').
inline std::string MsCell(double ms) { return TablePrinter::Cell(ms, 3); }

inline std::vector<size_t> PowersOfTwo(size_t lo, size_t hi) {
  std::vector<size_t> v;
  for (size_t k = lo; k <= hi; k <<= 1) v.push_back(k);
  return v;
}

}  // namespace mptopk::bench

#endif  // MPTOPK_BENCH_BENCH_UTIL_H_
