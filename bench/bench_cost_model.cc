// Reproduces paper Figure 17: the Section 7 analytical cost models vs the
// measured (simulated) runtimes for RadixSelect and BitonicTopK across k.
//
// Expected: predictions track the measurements and preserve the
// bitonic-vs-radix-select cutoff; the models mildly under-predict (they
// assume peak bandwidths), as in the paper.
#include "bench/bench_util.h"
#include "cost/cost_model.h"

namespace mptopk::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  auto data = GenerateFloats(n, Distribution::kUniform, flags.GetInt("seed"));
  const auto spec = simt::DeviceSpec::TitanXMaxwell();

  std::printf("# Figure 17: cost model predicted vs measured (simulated), "
              "n=2^%lld floats\n",
              static_cast<long long>(flags.GetInt("n_log2")));
  TablePrinter t({"k", "Bitonic measured", "Bitonic predicted",
                  "RadixSel measured", "RadixSel predicted"});
  for (size_t k : PowersOfTwo(1, 1024)) {
    cost::Workload w{n, NextPowerOfTwo(k), 4, 4, Distribution::kUniform};
    t.AddRow({
        std::to_string(k),
        MsCell(RunOp("BitonicTopK", data, k, ts)),
        MsCell(cost::BitonicTopKCostMs(spec, w)),
        MsCell(RunOp("RadixSelect", data, k, ts)),
        MsCell(cost::RadixSelectCostMs(spec, w)),
    });
  }
  PrintTable(t, flags.GetBool("csv"));

  std::printf("\n# Paper-scale predictions (n=2^29, no simulation):\n");
  TablePrinter big({"k", "Bitonic predicted", "RadixSel predicted"});
  for (size_t k : PowersOfTwo(1, 1024)) {
    cost::Workload w{size_t{1} << 29, NextPowerOfTwo(k), 4, 4,
                     Distribution::kUniform};
    big.AddRow({std::to_string(k),
                TablePrinter::Cell(cost::BitonicTopKCostMs(spec, w), 2),
                TablePrinter::Cell(cost::RadixSelectCostMs(spec, w), 2)});
  }
  PrintTable(big, flags.GetBool("csv"));
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
