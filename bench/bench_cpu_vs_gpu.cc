// Reproduces paper Figure 15: CPU heap-based top-k (STL PQ, Hand PQ) and
// the Appendix C CPU bitonic top-k against the GPU algorithms.
//
//   --dist=uniform    (Fig 15a: few heap updates; heaps are memory bound
//                      and competitive; CPU bitonic does extra compute)
//   --dist=increasing (Fig 15b: every element updates the heap; the heaps
//                      collapse, CPU bitonic holds thanks to
//                      data-obliviousness + SIMD, GPU wins by a wide margin)
//
// Note: CPU columns are real wall-clock on this host (thread count via
// --threads, default = hardware concurrency; the paper used 8 cores); GPU
// columns are simulated device ms. Compare shapes, not absolute ratios.
#include "bench/bench_util.h"
#include "cputopk/cpu_topk.h"

namespace mptopk::bench {
namespace {

double RunCpu(cpu::CpuAlgorithm algo, const std::vector<float>& data,
              size_t k, int threads) {
  auto r = cpu::CpuTopK(data.data(), data.size(), k, algo, threads);
  if (!r.ok()) return kNaN;
  return r->wall_ms;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("dist", "uniform", "uniform | increasing");
  flags.Define("threads", "0", "CPU threads (0 = hardware concurrency)");
  flags.Define("gpu_ops", "BitonicTopK,RadixSelect",
               "comma-separated registry names (or aliases) of the GPU "
               "operators to compare against");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  const int threads = static_cast<int>(flags.GetInt("threads"));
  auto dist_or = ParseDistribution(flags.GetString("dist"));
  if (!dist_or.ok()) {
    return FailWith(dist_or.status());
  }
  auto data = GenerateFloats(n, *dist_or, flags.GetInt("seed"));

  // GPU columns resolve through the registry -- the one string->operator
  // parser -- so unknown names fail with the registered-operator list.
  std::vector<const topk::TopKOperator*> gpu_ops;
  {
    std::string names = flags.GetString("gpu_ops");
    for (size_t pos = 0; pos < names.size();) {
      size_t comma = names.find(',', pos);
      if (comma == std::string::npos) comma = names.size();
      auto op = topk::FindOperator(names.substr(pos, comma - pos));
      if (!op.ok()) return FailWith(op.status());
      gpu_ops.push_back(op.value());
      pos = comma + 1;
    }
  }
  // The CPU wall-clock columns bench cputopk directly (its `threads`
  // parameter is not part of the operator interface), but the algorithms
  // must stay registered so the registry sweep covers them too.
  for (const char* alias : {"cpu_stlpq", "cpu_handpq", "cpu_bitonic"}) {
    if (auto op = topk::FindOperator(alias); !op.ok()) {
      return FailWith(op.status());
    }
  }

  std::printf("# Figure 15%s: CPU (wall ms) vs GPU (simulated ms), "
              "n=2^%lld floats, %s\n",
              *dist_or == Distribution::kUniform ? "a" : "b",
              static_cast<long long>(flags.GetInt("n_log2")),
              DistributionName(*dist_or));
  std::vector<std::string> header{"k", "STL PQ (CPU)", "Hand PQ (CPU)",
                                  "Bitonic (CPU)"};
  for (const auto* op : gpu_ops) header.push_back(op->name() + " (GPU)");
  TablePrinter table(header);
  for (size_t k : PowersOfTwo(1, 256)) {
    std::vector<std::string> row{
        std::to_string(k),
        TablePrinter::Cell(RunCpu(cpu::CpuAlgorithm::kStlPq, data, k,
                                  threads), 2),
        TablePrinter::Cell(RunCpu(cpu::CpuAlgorithm::kHandPq, data, k,
                                  threads), 2),
        TablePrinter::Cell(RunCpu(cpu::CpuAlgorithm::kBitonic, data, k,
                                  threads), 2)};
    for (const auto* op : gpu_ops) {
      row.push_back(MsCell(RunOp(*op, data, k, ts)));
    }
    table.AddRow(std::move(row));
  }
  PrintTable(table, flags.GetBool("csv"));
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
