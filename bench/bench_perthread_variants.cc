// Reproduces paper Figure 18 (Appendix A): per-thread top-k using register
// buffers vs shared-memory heaps, across distributions.
//
// Expected: the register variant matches or beats shared memory for small k
// (buffer fits the register budget), then collapses once entries spill to
// local memory (sharp slope k=32 -> 64); the gap widens on the increasing
// distribution where every element updates the buffer, and vanishes on
// decreasing where nothing does after warm-up.
#include "bench/bench_util.h"
#include "gputopk/perthread_topk.h"

namespace mptopk::bench {
namespace {

double RunVariant(const std::vector<float>& data, size_t k, bool registers,
                  int ts, uint64_t* local_bytes) {
  simt::Device dev;
  dev.set_trace_sample_target(ts);
  gpu::PerThreadOptions o;
  o.use_registers = registers;
  auto r = gpu::PerThreadTopK(dev, data.data(), data.size(), k, o);
  if (!r.ok()) return kNaN;
  if (local_bytes != nullptr) *local_bytes = dev.total_metrics().local_bytes;
  return r->kernel_ms;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));

  std::printf("# Figure 18: per-thread top-k, registers vs shared-memory "
              "heaps, n=2^%lld floats (simulated ms)\n",
              static_cast<long long>(flags.GetInt("n_log2")));
  for (auto dist : {Distribution::kUniform, Distribution::kIncreasing,
                    Distribution::kDecreasing}) {
    auto data = GenerateFloats(n, dist, flags.GetInt("seed"));
    std::printf("## %s\n", DistributionName(dist));
    TablePrinter t({"k", "registers", "shared memory", "spill MB"});
    for (size_t k : PowersOfTwo(4, 256)) {
      uint64_t local = 0;
      double reg_ms = RunVariant(data, k, /*registers=*/true, ts, &local);
      double shm_ms = RunVariant(data, k, /*registers=*/false, ts, nullptr);
      t.AddRow({std::to_string(k), MsCell(reg_ms),
                MsCell(shm_ms),
                TablePrinter::Cell(local / 1e6, 1)});
    }
    PrintTable(t, flags.GetBool("csv"));
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
