// Resilience overhead / recovery-latency study (docs/robustness.md):
//
//   * fault-free overhead of planner::ResilientTopK (planning + staging +
//     result verification) against the direct PlannedTopKDevice path, and
//   * recovery latency when one transient transfer fault is injected — the
//     wasted attempt plus the executor's simulated backoff.
//
// All numbers are simulated device milliseconds, so every column is
// deterministic under a fixed seed.
#include "bench/bench_util.h"
#include "planner/plan_topk.h"
#include "planner/resilient.h"
#include "simt/fault_injection.h"

namespace mptopk::bench {
namespace {

double DeviceMs(const simt::Device& dev) {
  return dev.total_sim_ms() + dev.pcie_ms();
}

// Direct path: stage the input, plan once, run the chosen algorithm.
double RunDirect(const std::vector<float>& data, size_t k, int trace_sample) {
  simt::Device dev;
  dev.set_trace_sample_target(trace_sample);
  auto buf = dev.Alloc<float>(data.size());
  if (!buf.ok()) return kNaN;
  if (!dev.CopyToDevice(*buf, data.data(), data.size()).ok()) return kNaN;
  auto r = planner::PlannedTopKDevice(dev, *buf, data.size(), k);
  if (!r.ok()) return kNaN;
  return DeviceMs(dev);
}

// Resilient path, optionally under a fault plan. Returns total simulated ms
// and (via out-params) the fault-added latency and the report summary.
double RunResilient(const std::vector<float>& data, size_t k,
                    int trace_sample, const simt::FaultPlanConfig* faults,
                    double* added_ms, std::string* summary) {
  simt::Device dev;
  dev.set_trace_sample_target(trace_sample);
  if (faults != nullptr) {
    dev.set_fault_plan(std::make_shared<simt::FaultPlan>(*faults));
  }
  auto r = planner::ResilientTopK(dev, data.data(), data.size(), k);
  if (!r.ok()) return kNaN;
  *added_ms = r->report.added_latency_ms;
  *summary = r->report.Summary();
  return r->report.total_device_ms;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const bool csv = flags.GetBool("csv");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  const uint64_t seed = flags.GetInt("seed");
  auto data = GenerateFloats(n, Distribution::kUniform, seed);

  std::printf("# Resilient executor: fault-free overhead vs direct planned "
              "execution, and recovery\n"
              "# latency with one transient transfer fault "
              "(n=2^%lld f32 keys, simulated ms)\n",
              static_cast<long long>(flags.GetInt("n_log2")));
  TablePrinter table({"k", "Direct", "Resilient", "Overhead%", "Faulted",
                      "AddedLatency"});
  std::string last_summary;
  for (size_t k : PowersOfTwo(16, 1024)) {
    const double direct = RunDirect(data, k, ts);
    double clean_added = 0, faulted_added = 0;
    std::string summary;
    const double resilient =
        RunResilient(data, k, ts, nullptr, &clean_added, &summary);
    // One transient fault on the first in-algorithm transfer (the input
    // staging copy is transfer #1).
    simt::FaultPlanConfig cfg;
    cfg.seed = seed;
    cfg.fail_transfer_index = 2;
    const double faulted =
        RunResilient(data, k, ts, &cfg, &faulted_added, &last_summary);
    const double overhead = (resilient - direct) / direct * 100.0;
    table.AddRow({std::to_string(k), MsCell(direct),
                  MsCell(resilient),
                  TablePrinter::Cell(overhead, 2),
                  MsCell(faulted),
                  MsCell(faulted_added)});
  }
  PrintTable(table, csv);
  std::printf("# faulted-run report: %s\n", last_summary.c_str());
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
