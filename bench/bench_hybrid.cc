// Extension bench (paper Section 8 future work): the sampling-based hybrid
// against bitonic top-k and radix select, across k and distributions.
//
// Expected: on discriminating keys the hybrid approaches the one-read
// bandwidth floor (below bitonic's shared-bound cost) and stays flat in k;
// on bucket-killer inputs it pays bitonic plus one wasted read (the
// fallback), demonstrating the robustness trade.
#include "bench/bench_util.h"

namespace mptopk::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "21");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  const uint64_t seed = flags.GetInt("seed");

  std::printf("# Hybrid (sampled pivot + bitonic) vs the paper's best "
              "algorithms, n=2^%lld (simulated ms)\n",
              static_cast<long long>(flags.GetInt("n_log2")));
  const double floor_ms = BandwidthFloorMs(n * sizeof(float));
  std::printf("# one-read bandwidth floor: %.3f ms\n", floor_ms);

  for (auto dist : {Distribution::kUniform, Distribution::kBucketKiller}) {
    std::printf("## floats, %s\n", DistributionName(dist));
    auto data = GenerateFloats(n, dist, seed);
    TablePrinter t({"k", "Hybrid", "BitonicTopK", "RadixSelect"});
    for (size_t k : PowersOfTwo(8, 1024)) {
      t.AddRow({std::to_string(k),
                MsCell(RunOp("HybridTopK", data, k, ts)),
                MsCell(RunOp("BitonicTopK", data, k, ts)),
                MsCell(RunOp("RadixSelect", data, k, ts))});
    }
    PrintTable(t, flags.GetBool("csv"));
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
