// Reproduces paper Figure 12: algorithm robustness against input
// distribution.
//
//   Fig 12a: --dist=increasing   (sorted floats: PerThread worst case,
//                                 every element triggers a heap update)
//   Fig 12b: --dist=bucket_killer (adversarial for RadixSelect: each pass
//                                  eliminates one key, degrading to sort
//                                  cost; BucketSelect ~2x slower)
//
// Sort and Bitonic are data-oblivious: their rows must match the uniform
// baseline exactly.
#include "bench/bench_util.h"

namespace mptopk::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("dist", "increasing",
               "distribution: uniform | increasing | decreasing | "
               "bucket_killer");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  auto dist_or = ParseDistribution(flags.GetString("dist"));
  if (!dist_or.ok()) {
    return FailWith(dist_or.status());
  }
  const Distribution dist = *dist_or;

  std::printf("# Figure 12 (%s): top-k vs k under the '%s' distribution, "
              "n=2^%lld floats (simulated ms); uniform baseline in "
              "parentheses-style second row block\n",
              dist == Distribution::kIncreasing ? "a" : "b",
              DistributionName(dist),
              static_cast<long long>(flags.GetInt("n_log2")));

  auto run = [&](Distribution d, const char* label) {
    auto data = GenerateFloats(n, d, flags.GetInt("seed"));
    const auto sweep = topk::GpuSweepOperators();
    std::vector<std::string> header{"k"};
    for (const auto* op : sweep) header.push_back(op->display_name());
    TablePrinter table(header);
    for (size_t k : PowersOfTwo(1, 1024)) {
      std::vector<std::string> row{std::to_string(k)};
      for (const auto* op : sweep) {
        row.push_back(
            MsCell(RunOp(*op, data, k, ts, flags.GetBool("racecheck"))));
      }
      table.AddRow(std::move(row));
    }
    std::printf("## %s\n", label);
    PrintTable(table, flags.GetBool("csv"));
  };
  run(dist, DistributionName(dist));
  std::printf("\n");
  run(Distribution::kUniform, "uniform (baseline)");
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
