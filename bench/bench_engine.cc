// Reproduces the paper's MapD integration study (Figure 16 and the Section
// 6.8 text numbers) on the synthetic tweets table:
//
//   --query=1  Fig 16a: SELECT id WHERE tweet_time < X ORDER BY
//              retweet_count DESC LIMIT 50, selectivity swept 0..1.
//   --query=2  Fig 16b: SELECT id ORDER BY retweet_count + 0.5*likes_count
//              DESC LIMIT K (custom ranking), K swept.
//   --query=3  SELECT id WHERE lang='en' OR lang='es' ORDER BY
//              retweet_count DESC LIMIT K (~80% selectivity), K swept.
//   --query=4  SELECT uid, COUNT(*) GROUP BY uid ORDER BY count DESC
//              LIMIT 50 (57M-user analogue), sort vs bitonic.
//
// Expected: Filter+Bitonic beats Filter+Sort everywhere; the Combined
// (fused) kernel additionally removes the materialization round-trip
// (paper: ~30% kernel-time saving at selectivity 1).
#include "bench/bench_util.h"
#include "engine/batch.h"
#include "engine/query.h"
#include "engine/tweets.h"

namespace mptopk::bench {
namespace {

using engine::CompareOp;
using engine::Filter;
using engine::Ranking;
using engine::TopKStrategy;

struct StrategyTimes {
  double kernel_ms;
  double end_to_end_ms;
};

StatusOr<StrategyTimes> RunStrategy(engine::Table& table, const Filter& f,
                                    const Ranking& r, size_t k,
                                    TopKStrategy s) {
  MPTOPK_ASSIGN_OR_RETURN(auto res,
                          engine::FilterTopKQuery(table, f, r, "id", k, s));
  return StrategyTimes{res.kernel_ms, res.end_to_end_ms};
}

// The standing mix for --batch mode: Q1..Q4 shapes cycled to length n.
std::vector<engine::BatchQuery> MakeTweetQueryMix(int n) {
  const Ranking by_retweets{{{"retweet_count", 1.0}}};
  std::vector<engine::BatchQuery> qs;
  for (int i = 0; i < n; ++i) {
    engine::BatchQuery q;
    switch (i % 4) {
      case 0:
        q.label = "q1-time-filter";
        q.filter = Filter{{{"tweet_time", CompareOp::kLt,
                            0.5 * engine::kTweetTimeRange}}};
        q.ranking = by_retweets;
        q.k = 50;
        break;
      case 1:
        q.label = "q2-custom-rank";
        q.ranking = Ranking{{{"retweet_count", 1.0}, {"likes_count", 0.5}}};
        q.k = 64;
        break;
      case 2:
        q.label = "q3-lang-or";
        q.filter = Filter{{{"lang", CompareOp::kEq, engine::kLangEn},
                           {"lang", CompareOp::kEq, engine::kLangEs}}};
        q.ranking = by_retweets;
        q.k = 64;
        q.strategy = engine::TopKStrategy::kFilterBitonic;
        break;
      default:
        q.label = "q4-groupby-uid";
        q.kind = engine::BatchQuery::Kind::kGroupByCount;
        q.group_column = "uid";
        q.k = 50;
        break;
    }
    qs.push_back(std::move(q));
  }
  return qs;
}

// --batch=N: run N concurrent Q1..Q4 queries through engine::BatchExecutor.
int RunBatchMode(simt::Device& dev, engine::Table& table, int batch_n,
                 int streams, bool csv) {
  engine::BatchExecutor exec(table, streams);
  auto report_or = exec.Execute(MakeTweetQueryMix(batch_n));
  if (!report_or.ok()) return FailWith(report_or.status());
  const engine::BatchReport& rep = report_or.value();

  std::printf("# BatchExecutor: %d queries on %d streams (pooling %s)\n",
              batch_n, streams, dev.pooling_enabled() ? "on" : "off");
  TablePrinter t({"query", "stream", "start ms", "finish ms", "kernel ms",
                  "status"});
  for (const auto& item : rep.items) {
    double kernel_ms = item.group_result.kernel_ms > 0
                           ? item.group_result.kernel_ms
                           : item.result.kernel_ms;
    t.AddRow({item.label, std::to_string(item.stream_id),
              MsCell(item.start_ms), MsCell(item.finish_ms),
              MsCell(kernel_ms),
              item.status.ok() ? "ok" : item.status.ToString()});
  }
  PrintTable(t, csv);
  std::printf("%s\n", rep.Summary().c_str());
  std::printf("footprint %.1f MiB | peak %zu bytes | q/s %.2f\n",
              rep.footprint_bytes / (1024.0 * 1024.0),
              rep.peak_allocated_bytes, rep.queries_per_sec);
  return rep.failed == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("query", "1", "paper query number 1..4");
  flags.Define("batch", "0",
               "run N concurrent Q1..Q4 queries through BatchExecutor "
               "instead of a figure sweep");
  flags.Define("streams", "4", "stream count for --batch mode");
  flags.Define("no_pool", "false",
               "disable allocator pooling (no-reuse baseline) in --batch");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t rows = size_t{1} << flags.GetInt("n_log2");
  const bool csv = flags.GetBool("csv");
  simt::Device dev;
  dev.set_trace_sample_target(
      static_cast<int>(flags.GetInt("trace_sample")));
  if (flags.GetBool("no_pool")) dev.set_pooling(false);
  auto table_or = engine::MakeTweetsTable(&dev, rows, flags.GetInt("seed"));
  if (!table_or.ok()) {
    return FailWith(table_or.status());
  }
  auto table = std::move(table_or).value();
  if (flags.GetInt("batch") > 0) {
    return RunBatchMode(dev, *table, static_cast<int>(flags.GetInt("batch")),
                        std::max(1, static_cast<int>(flags.GetInt("streams"))),
                        csv);
  }
  const int query = static_cast<int>(flags.GetInt("query"));
  const Ranking by_retweets{{{"retweet_count", 1.0}}};

  auto run_three = [&](const Filter& f, const Ranking& r, size_t k,
                       std::vector<std::string>* row) -> Status {
    for (TopKStrategy s : {TopKStrategy::kFilterSort,
                           TopKStrategy::kFilterBitonic,
                           TopKStrategy::kCombinedBitonic}) {
      MPTOPK_ASSIGN_OR_RETURN(auto t, RunStrategy(*table, f, r, k, s));
      row->push_back(MsCell(t.kernel_ms));
    }
    return Status::OK();
  };

  switch (query) {
    case 1: {
      std::printf("# Figure 16a (query 1): tweet_time filter, k=50, "
                  "selectivity sweep, %zu rows (simulated kernel ms)\n",
                  rows);
      TablePrinter t({"selectivity", "Filter+Sort", "Filter+Bitonic",
                      "Combined Bitonic"});
      for (int s10 = 0; s10 <= 10; ++s10) {
        Filter f{{{"tweet_time", CompareOp::kLt,
                   s10 / 10.0 * engine::kTweetTimeRange}}};
        std::vector<std::string> row{TablePrinter::Cell(s10 / 10.0, 1)};
        if (auto st = run_three(f, by_retweets, 50, &row); !st.ok()) {
          return FailWith(st);
        }
        t.AddRow(std::move(row));
      }
      PrintTable(t, csv);
      break;
    }
    case 2: {
      std::printf("# Figure 16b (query 2): ranking retweet_count + "
                  "0.5*likes_count, K sweep, %zu rows (simulated kernel "
                  "ms)\n", rows);
      Ranking rank{{{"retweet_count", 1.0}, {"likes_count", 0.5}}};
      TablePrinter t({"k", "Project+Sort", "Project+Bitonic",
                      "Combined Bitonic"});
      for (size_t k : PowersOfTwo(16, 512)) {
        std::vector<std::string> row{std::to_string(k)};
        if (auto st = run_three(Filter{}, rank, k, &row); !st.ok()) {
          return FailWith(st);
        }
        t.AddRow(std::move(row));
      }
      PrintTable(t, csv);
      break;
    }
    case 3: {
      std::printf("# Query 3: lang='en' OR lang='es' (~80%% selectivity), "
                  "K sweep, %zu rows (simulated kernel ms)\n", rows);
      Filter f{{{"lang", CompareOp::kEq, engine::kLangEn},
                {"lang", CompareOp::kEq, engine::kLangEs}}};
      TablePrinter t({"k", "Filter+Sort", "Filter+Bitonic",
                      "Combined Bitonic"});
      for (size_t k : PowersOfTwo(16, 512)) {
        std::vector<std::string> row{std::to_string(k)};
        if (auto st = run_three(f, by_retweets, k, &row); !st.ok()) {
          return FailWith(st);
        }
        t.AddRow(std::move(row));
      }
      PrintTable(t, csv);
      break;
    }
    case 4: {
      std::printf("# Query 4: GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50, "
                  "%zu rows (simulated ms; paper: bitonic cuts the sort "
                  "step ~86%%, total ~39%%)\n", rows);
      TablePrinter t({"strategy", "group-by ms", "top-k ms", "total ms"});
      for (auto s : {engine::GroupByStrategy::kSort,
                     engine::GroupByStrategy::kBitonic}) {
        auto r = engine::GroupByCountTopKQuery(*table, "uid", 50, s);
        if (!r.ok()) {
          return FailWith(r.status());
        }
        t.AddRow({s == engine::GroupByStrategy::kSort ? "Sort" : "Bitonic",
                  MsCell(r->groupby_ms),
                  MsCell(r->topk_ms),
                  MsCell(r->kernel_ms)});
      }
      PrintTable(t, csv);
      break;
    }
    default:
      std::fprintf(stderr, "--query must be 1..4\n");
      return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
