// Reproduces the paper's MapD integration study (Figure 16 and the Section
// 6.8 text numbers) on the synthetic tweets table:
//
//   --query=1  Fig 16a: SELECT id WHERE tweet_time < X ORDER BY
//              retweet_count DESC LIMIT 50, selectivity swept 0..1.
//   --query=2  Fig 16b: SELECT id ORDER BY retweet_count + 0.5*likes_count
//              DESC LIMIT K (custom ranking), K swept.
//   --query=3  SELECT id WHERE lang='en' OR lang='es' ORDER BY
//              retweet_count DESC LIMIT K (~80% selectivity), K swept.
//   --query=4  SELECT uid, COUNT(*) GROUP BY uid ORDER BY count DESC
//              LIMIT 50 (57M-user analogue), sort vs bitonic.
//
// Expected: Filter+Bitonic beats Filter+Sort everywhere; the Combined
// (fused) kernel additionally removes the materialization round-trip
// (paper: ~30% kernel-time saving at selectivity 1).
#include "bench/bench_util.h"
#include "engine/query.h"
#include "engine/tweets.h"

namespace mptopk::bench {
namespace {

using engine::CompareOp;
using engine::Filter;
using engine::Ranking;
using engine::TopKStrategy;

struct StrategyTimes {
  double kernel_ms;
  double end_to_end_ms;
};

StatusOr<StrategyTimes> RunStrategy(engine::Table& table, const Filter& f,
                                    const Ranking& r, size_t k,
                                    TopKStrategy s) {
  MPTOPK_ASSIGN_OR_RETURN(auto res,
                          engine::FilterTopKQuery(table, f, r, "id", k, s));
  return StrategyTimes{res.kernel_ms, res.end_to_end_ms};
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  flags.Define("query", "1", "paper query number 1..4");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    flags.PrintHelp(argv[0]);
    return 0;
  }
  const size_t rows = size_t{1} << flags.GetInt("n_log2");
  const bool csv = flags.GetBool("csv");
  simt::Device dev;
  dev.set_trace_sample_target(
      static_cast<int>(flags.GetInt("trace_sample")));
  auto table_or = engine::MakeTweetsTable(&dev, rows, flags.GetInt("seed"));
  if (!table_or.ok()) {
    std::fprintf(stderr, "%s\n", table_or.status().ToString().c_str());
    return 1;
  }
  auto table = std::move(table_or).value();
  const int query = static_cast<int>(flags.GetInt("query"));
  const Ranking by_retweets{{{"retweet_count", 1.0}}};

  auto run_three = [&](const Filter& f, const Ranking& r, size_t k,
                       std::vector<std::string>* row) -> Status {
    for (TopKStrategy s : {TopKStrategy::kFilterSort,
                           TopKStrategy::kFilterBitonic,
                           TopKStrategy::kCombinedBitonic}) {
      MPTOPK_ASSIGN_OR_RETURN(auto t, RunStrategy(*table, f, r, k, s));
      row->push_back(TablePrinter::Cell(t.kernel_ms, 3));
    }
    return Status::OK();
  };

  switch (query) {
    case 1: {
      std::printf("# Figure 16a (query 1): tweet_time filter, k=50, "
                  "selectivity sweep, %zu rows (simulated kernel ms)\n",
                  rows);
      TablePrinter t({"selectivity", "Filter+Sort", "Filter+Bitonic",
                      "Combined Bitonic"});
      for (int s10 = 0; s10 <= 10; ++s10) {
        Filter f{{{"tweet_time", CompareOp::kLt,
                   s10 / 10.0 * engine::kTweetTimeRange}}};
        std::vector<std::string> row{TablePrinter::Cell(s10 / 10.0, 1)};
        if (auto st = run_three(f, by_retweets, 50, &row); !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
        t.AddRow(std::move(row));
      }
      PrintTable(t, csv);
      break;
    }
    case 2: {
      std::printf("# Figure 16b (query 2): ranking retweet_count + "
                  "0.5*likes_count, K sweep, %zu rows (simulated kernel "
                  "ms)\n", rows);
      Ranking rank{{{"retweet_count", 1.0}, {"likes_count", 0.5}}};
      TablePrinter t({"k", "Project+Sort", "Project+Bitonic",
                      "Combined Bitonic"});
      for (size_t k : PowersOfTwo(16, 512)) {
        std::vector<std::string> row{std::to_string(k)};
        if (auto st = run_three(Filter{}, rank, k, &row); !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
        t.AddRow(std::move(row));
      }
      PrintTable(t, csv);
      break;
    }
    case 3: {
      std::printf("# Query 3: lang='en' OR lang='es' (~80%% selectivity), "
                  "K sweep, %zu rows (simulated kernel ms)\n", rows);
      Filter f{{{"lang", CompareOp::kEq, engine::kLangEn},
                {"lang", CompareOp::kEq, engine::kLangEs}}};
      TablePrinter t({"k", "Filter+Sort", "Filter+Bitonic",
                      "Combined Bitonic"});
      for (size_t k : PowersOfTwo(16, 512)) {
        std::vector<std::string> row{std::to_string(k)};
        if (auto st = run_three(f, by_retweets, k, &row); !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
        t.AddRow(std::move(row));
      }
      PrintTable(t, csv);
      break;
    }
    case 4: {
      std::printf("# Query 4: GROUP BY uid ORDER BY COUNT(*) DESC LIMIT 50, "
                  "%zu rows (simulated ms; paper: bitonic cuts the sort "
                  "step ~86%%, total ~39%%)\n", rows);
      TablePrinter t({"strategy", "group-by ms", "top-k ms", "total ms"});
      for (auto s : {engine::GroupByStrategy::kSort,
                     engine::GroupByStrategy::kBitonic}) {
        auto r = engine::GroupByCountTopKQuery(*table, "uid", 50, s);
        if (!r.ok()) {
          std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
          return 1;
        }
        t.AddRow({s == engine::GroupByStrategy::kSort ? "Sort" : "Bitonic",
                  TablePrinter::Cell(r->groupby_ms, 3),
                  TablePrinter::Cell(r->topk_ms, 3),
                  TablePrinter::Cell(r->kernel_ms, 3)});
      }
      PrintTable(t, csv);
      break;
    }
    default:
      std::fprintf(stderr, "--query must be 1..4\n");
      return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
