// Reproduces paper Figure 14: RadixSelect vs BitonicTopK on key+value (KV),
// two-keys+value (KKV) and three-keys+value (KKKV) tuples.
//
// Expected: both methods grow roughly linearly in tuple width (more bytes
// to move); the bitonic-vs-radix cutoff stays at the same k across widths.
#include "bench/bench_util.h"

namespace mptopk::bench {
namespace {

template <typename E>
std::vector<E> MakeTuples(size_t n, uint64_t seed);

template <>
std::vector<KV> MakeTuples(size_t n, uint64_t seed) {
  auto keys = GenerateFloats(n, Distribution::kUniform, seed);
  std::vector<KV> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = KV{keys[i], static_cast<uint32_t>(i)};
  }
  return out;
}

template <>
std::vector<KKV> MakeTuples(size_t n, uint64_t seed) {
  auto k1 = GenerateFloats(n, Distribution::kUniform, seed);
  auto k2 = GenerateFloats(n, Distribution::kUniform, seed + 1);
  std::vector<KKV> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = KKV{k1[i], k2[i], static_cast<uint32_t>(i)};
  }
  return out;
}

template <>
std::vector<KKKV> MakeTuples(size_t n, uint64_t seed) {
  auto k1 = GenerateFloats(n, Distribution::kUniform, seed);
  auto k2 = GenerateFloats(n, Distribution::kUniform, seed + 1);
  auto k3 = GenerateFloats(n, Distribution::kUniform, seed + 2);
  std::vector<KKKV> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = KKKV{k1[i], k2[i], k3[i], static_cast<uint32_t>(i)};
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags;
  DefineCommonFlags(&flags, "20");
  int exit_code = 0;
  if (!BenchInit(flags, argc, argv, &exit_code)) return exit_code;
  const size_t n = size_t{1} << flags.GetInt("n_log2");
  const int ts = static_cast<int>(flags.GetInt("trace_sample"));
  const uint64_t seed = flags.GetInt("seed");

  std::printf("# Figure 14: key+value tuple widths, n=2^%lld "
              "(simulated ms)\n",
              static_cast<long long>(flags.GetInt("n_log2")));
  TablePrinter table({"k", "RadixSel KV", "Bitonic KV", "RadixSel KKV",
                      "Bitonic KKV", "RadixSel KKKV", "Bitonic KKKV"});
  auto kv = MakeTuples<KV>(n, seed);
  auto kkv = MakeTuples<KKV>(n, seed);
  auto kkkv = MakeTuples<KKKV>(n, seed);
  for (size_t k : PowersOfTwo(1, 1024)) {
    table.AddRow({
        std::to_string(k),
        MsCell(RunOp("RadixSelect", kv, k, ts)),
        MsCell(RunOp("BitonicTopK", kv, k, ts)),
        MsCell(RunOp("RadixSelect", kkv, k, ts)),
        MsCell(RunOp("BitonicTopK", kkv, k, ts)),
        MsCell(RunOp("RadixSelect", kkkv, k, ts)),
        MsCell(RunOp("BitonicTopK", kkkv, k, ts)),
    });
  }
  PrintTable(table, flags.GetBool("csv"));
  return 0;
}

}  // namespace
}  // namespace mptopk::bench

int main(int argc, char** argv) { return mptopk::bench::Main(argc, argv); }
