// Google-benchmark microbenchmarks of the library's host-side hot paths:
// simulator execution overhead per element, trace analysis, the bitonic
// window planner, and the CPU top-k kernels. These measure *host* wall time
// of the simulation itself (useful when sizing experiments), unlike the
// paper-figure benches which report simulated device time.
//
// Smoke mode: `bench_kernels --algo=<name|all>` skips the microbenchmarks
// and instead runs the named registry operator (or every registered one)
// on a small input, checking the result against a sort oracle. CI uses
// `--algo=all` as a cheap every-operator liveness gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/distributions.h"
#include "cputopk/cpu_topk.h"
#include "gputopk/bitonic_plan.h"
#include "gputopk/bitonic_topk.h"
#include "topk/registry.h"

namespace mptopk {
namespace {

void BM_SimBitonicTopK(benchmark::State& state) {
  const size_t n = 1 << 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    simt::Device dev;
    dev.set_trace_sample_target(8);
    auto r = gpu::BitonicTopK(dev, data.data(), n, state.range(0));
    benchmark::DoNotOptimize(r->kernel_ms);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimBitonicTopK)->Arg(32)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SimTracedVsUntraced(benchmark::State& state) {
  const size_t n = 1 << 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    simt::Device dev;
    dev.set_trace_sample_target(static_cast<int>(state.range(0)));
    auto r = gpu::BitonicTopK(dev, data.data(), n, 32);
    benchmark::DoNotOptimize(r->kernel_ms);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimTracedVsUntraced)
    ->Arg(0)   // trace every block
    ->Arg(4)   // sample 4 blocks
    ->Unit(benchmark::kMillisecond);

void BM_WindowPlanner(benchmark::State& state) {
  auto steps = gpu::BitonicLocalSortSteps(static_cast<uint32_t>(
      state.range(0)));
  for (auto _ : state) {
    auto w = gpu::PlanBitonicWindows(steps, 4);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_WindowPlanner)->Arg(32)->Arg(1024);

void BM_CpuHandPq(benchmark::State& state) {
  const size_t n = 1 << 18;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    auto r = cpu::CpuTopK(data.data(), n, 64, cpu::CpuAlgorithm::kHandPq, 1);
    benchmark::DoNotOptimize(r->items.front());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuHandPq)->Unit(benchmark::kMillisecond);

void BM_CpuBitonic(benchmark::State& state) {
  const size_t n = 1 << 18;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    auto r = cpu::CpuTopK(data.data(), n, 64, cpu::CpuAlgorithm::kBitonic, 1);
    benchmark::DoNotOptimize(r->items.front());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuBitonic)->Unit(benchmark::kMillisecond);

// Runs `op` on a small float input and checks the top-k values against a
// sort oracle. Returns true on success; prints a diagnostic otherwise.
// Pow2-only operators are exercised at a power-of-two k; caps-infeasible
// configurations (e.g. max_k below the smoke k) shrink k to fit.
bool SmokeOperator(const topk::TopKOperator& op) {
  const size_t n = 1 << 14;
  size_t k = 64;
  if (op.caps().max_k > 0) k = std::min(k, op.caps().max_k);
  auto data = GenerateFloats(n, Distribution::kUniform, /*seed=*/7);
  simt::Device dev;
  auto r = op.TopKHost(dev, data.data(), n, k);
  if (!r.ok()) {
    std::fprintf(stderr, "FAIL %s: %s\n", op.name().c_str(),
                 r.status().ToString().c_str());
    return false;
  }
  std::vector<float> oracle = data;
  std::sort(oracle.begin(), oracle.end(), std::greater<float>());
  oracle.resize(k);
  if (r->items != oracle) {
    std::fprintf(stderr, "FAIL %s: top-%zu mismatch vs sort oracle\n",
                 op.name().c_str(), k);
    return false;
  }
  std::printf("ok   %-14s top-%-3zu of %zu floats  (%s)\n",
              op.name().c_str(), k, n,
              topk::BackendName(op.caps().backend));
  return true;
}

// --algo=all runs every registered operator; --algo=<name> resolves through
// the registry (aliases work; unknown names list the registered set).
int SmokeMain(const char* algo) {
  int failures = 0;
  if (std::strcmp(algo, "all") == 0) {
    for (const auto* op : mptopk::topk::Registry::Instance().All()) {
      if (!SmokeOperator(*op)) ++failures;
    }
  } else {
    auto op = topk::FindOperator(algo);
    if (!op.ok()) {
      std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
      return 1;
    }
    if (!SmokeOperator(*op.value())) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mptopk

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      return mptopk::SmokeMain(argv[i] + 7);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
