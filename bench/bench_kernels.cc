// Google-benchmark microbenchmarks of the library's host-side hot paths:
// simulator execution overhead per element, trace analysis, the bitonic
// window planner, and the CPU top-k kernels. These measure *host* wall time
// of the simulation itself (useful when sizing experiments), unlike the
// paper-figure benches which report simulated device time.
#include <benchmark/benchmark.h>

#include "common/distributions.h"
#include "cputopk/cpu_topk.h"
#include "gputopk/bitonic_plan.h"
#include "gputopk/topk.h"

namespace mptopk {
namespace {

void BM_SimBitonicTopK(benchmark::State& state) {
  const size_t n = 1 << 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    simt::Device dev;
    dev.set_trace_sample_target(8);
    auto r = gpu::BitonicTopK(dev, data.data(), n, state.range(0));
    benchmark::DoNotOptimize(r->kernel_ms);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimBitonicTopK)->Arg(32)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SimTracedVsUntraced(benchmark::State& state) {
  const size_t n = 1 << 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    simt::Device dev;
    dev.set_trace_sample_target(static_cast<int>(state.range(0)));
    auto r = gpu::BitonicTopK(dev, data.data(), n, 32);
    benchmark::DoNotOptimize(r->kernel_ms);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimTracedVsUntraced)
    ->Arg(0)   // trace every block
    ->Arg(4)   // sample 4 blocks
    ->Unit(benchmark::kMillisecond);

void BM_WindowPlanner(benchmark::State& state) {
  auto steps = gpu::BitonicLocalSortSteps(static_cast<uint32_t>(
      state.range(0)));
  for (auto _ : state) {
    auto w = gpu::PlanBitonicWindows(steps, 4);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_WindowPlanner)->Arg(32)->Arg(1024);

void BM_CpuHandPq(benchmark::State& state) {
  const size_t n = 1 << 18;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    auto r = cpu::CpuTopK(data.data(), n, 64, cpu::CpuAlgorithm::kHandPq, 1);
    benchmark::DoNotOptimize(r->items.front());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuHandPq)->Unit(benchmark::kMillisecond);

void BM_CpuBitonic(benchmark::State& state) {
  const size_t n = 1 << 18;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (auto _ : state) {
    auto r = cpu::CpuTopK(data.data(), n, 64, cpu::CpuAlgorithm::kBitonic, 1);
    benchmark::DoNotOptimize(r->items.front());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuBitonic)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mptopk

BENCHMARK_MAIN();
