// Unit tests for the shared device-side building blocks: FillDevice,
// BlockExclusiveScan (property-tested across sizes), and TwoWayCompactTile.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "gputopk/kernel_util.h"

namespace mptopk::gpu {
namespace {

using simt::Block;
using simt::Device;
using simt::GlobalSpan;
using simt::Thread;

TEST(FillDeviceTest, FillsExactRange) {
  Device dev;
  auto buf = dev.Alloc<uint32_t>(1000).value();
  std::fill(buf.host_data(), buf.host_data() + 1000, 7u);
  ASSERT_TRUE(FillDevice<uint32_t>(dev, buf, 100, 500, 42u).ok());
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(buf.host_data()[i], (i >= 100 && i < 600) ? 42u : 7u) << i;
  }
}

TEST(FillDeviceTest, ZeroCountIsNoop) {
  Device dev;
  auto buf = dev.Alloc<uint32_t>(8).value();
  size_t launches = dev.kernel_log().size();
  ASSERT_TRUE(FillDevice<uint32_t>(dev, buf, 0, 0, 1u).ok());
  EXPECT_EQ(dev.kernel_log().size(), launches);
}

class BlockScanTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BlockScanTest, MatchesSerialPrefixSum) {
  const size_t n = GetParam();
  Device dev;
  std::mt19937 rng(n);
  std::vector<uint32_t> input(n);
  for (auto& v : input) v = rng() % 100;

  auto out_buf = dev.Alloc<uint32_t>(n).value();
  auto total_buf = dev.Alloc<uint32_t>(1).value();
  GlobalSpan<uint32_t> out(out_buf), total_span(total_buf);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 256}, [&](Block& blk) {
    auto data = blk.AllocShared<uint32_t>(n);
    auto scratch = blk.AllocShared<uint32_t>(n);
    blk.ForEachThread([&](Thread& t) {
      for (size_t i = t.tid; i < n; i += 256) data.Write(t, i, input[i]);
    });
    blk.Sync();
    uint32_t total = 0;
    BlockExclusiveScan(blk, data, n, scratch, &total);
    blk.ForEachThread([&](Thread& t) {
      for (size_t i = t.tid; i < n; i += 256) out.Write(t, i, data.Read(t, i));
      if (t.tid == 0) total_span.Write(t, 0, total);
    });
  });
  ASSERT_TRUE(stats.ok());

  uint32_t expect = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out_buf.host_data()[i], expect) << "i=" << i;
    expect += input[i];
  }
  EXPECT_EQ(total_buf.host_data()[0], expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockScanTest,
                         ::testing::Values(1, 2, 3, 17, 255, 256, 257, 1000,
                                           2048),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(TwoWayCompactTest, SplitsHiEqDrop) {
  // Classify ints: >66 -> hi stream, ==66 -> eq stream, else dropped.
  Device dev;
  const size_t n = 4096;
  std::mt19937 rng(5);
  std::vector<int32_t> input(n);
  for (auto& v : input) v = rng() % 100;

  auto in_buf = dev.Alloc<int32_t>(n).value();
  dev.CopyToDevice(in_buf, input.data(), n);
  auto hi_buf = dev.Alloc<int32_t>(n).value();
  auto eq_buf = dev.Alloc<int32_t>(n).value();
  auto counters = dev.Alloc<uint32_t>(2).value();
  counters.host_data()[0] = 0;
  counters.host_data()[1] = 0;

  GlobalSpan<int32_t> in(in_buf), hi(hi_buf), eq(eq_buf);
  GlobalSpan<uint32_t> cnts(counters);
  auto stats = dev.Launch({.grid_dim = 2, .block_dim = 256}, [&](Block& blk) {
    auto w = TwoWayCompactWorkspace<int32_t>::Alloc(blk, 1024);
    size_t lo = static_cast<size_t>(blk.block_idx()) * (n / 2);
    for (size_t base = lo; base < lo + n / 2; base += 1024) {
      TwoWayCompactTile<int32_t>(
          blk, w, in, base, base + 1024,
          [](int32_t v) { return v > 66 ? 1 : (v == 66 ? 0 : -1); }, hi,
          /*out_hi_offset=*/0, eq, cnts);
    }
  });
  ASSERT_TRUE(stats.ok());

  size_t expect_hi = std::count_if(input.begin(), input.end(),
                                   [](int v) { return v > 66; });
  size_t expect_eq = std::count(input.begin(), input.end(), 66);
  EXPECT_EQ(counters.host_data()[0], expect_hi);
  EXPECT_EQ(counters.host_data()[1], expect_eq);

  // The streams must hold exactly the matching multisets.
  std::vector<int32_t> hi_out(hi_buf.host_data(),
                              hi_buf.host_data() + expect_hi);
  for (int32_t v : hi_out) EXPECT_GT(v, 66);
  std::vector<int32_t> want_hi;
  for (int32_t v : input) {
    if (v > 66) want_hi.push_back(v);
  }
  std::sort(hi_out.begin(), hi_out.end());
  std::sort(want_hi.begin(), want_hi.end());
  EXPECT_EQ(hi_out, want_hi);
  for (size_t i = 0; i < expect_eq; ++i) {
    EXPECT_EQ(eq_buf.host_data()[i], 66);
  }
}

TEST(TwoWayCompactTest, AllMatchAndNoneMatch) {
  Device dev;
  const size_t n = 2048;
  std::vector<int32_t> input(n, 5);
  auto in_buf = dev.Alloc<int32_t>(n).value();
  dev.CopyToDevice(in_buf, input.data(), n);
  auto hi_buf = dev.Alloc<int32_t>(n).value();
  auto eq_buf = dev.Alloc<int32_t>(n).value();
  auto counters = dev.Alloc<uint32_t>(2).value();

  for (auto [cls, expect_hi] :
       std::vector<std::pair<int, size_t>>{{1, n}, {-1, 0}}) {
    counters.host_data()[0] = 0;
    counters.host_data()[1] = 0;
    GlobalSpan<int32_t> in(in_buf), hi(hi_buf), eq(eq_buf);
    GlobalSpan<uint32_t> cnts(counters);
    auto stats = dev.Launch({.grid_dim = 1, .block_dim = 256},
                            [&](Block& blk) {
      auto w = TwoWayCompactWorkspace<int32_t>::Alloc(blk, 1024);
      for (size_t base = 0; base < n; base += 1024) {
        TwoWayCompactTile<int32_t>(
            blk, w, in, base, base + 1024,
            [cls](int32_t) { return cls; }, hi, 0, eq, cnts);
      }
    });
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(counters.host_data()[0], expect_hi);
    EXPECT_EQ(counters.host_data()[1], 0u);
  }
}

TEST(TracerDeterminismTest, SampledTimingIsStable) {
  // Repeated sampled launches of the same kernel produce identical
  // simulated times (the foundation of reproducible benches).
  auto run = [] {
    Device dev;
    dev.set_trace_sample_target(4);
    auto buf = dev.Alloc<float>(1 << 14).value();
    GlobalSpan<float> g(buf);
    auto stats = dev.Launch({.grid_dim = 64, .block_dim = 256},
                            [&](Block& blk) {
      blk.ForEachThread([&](Thread& t) {
        size_t i = (static_cast<size_t>(blk.block_idx()) * 256 + t.tid) %
                   (1 << 14);
        g.Write(t, i, 1.f);
      });
    });
    return stats->time.total_ms;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace mptopk::gpu
