// Tests for the Section 7 cost models and the cost-based planner: model
// values must track the simulator's measured times (Figure 17) and the
// planner must reproduce the paper's crossovers.
#include <gtest/gtest.h>

#include "common/distributions.h"
#include "cost/cost_model.h"
#include "gputopk/topk.h"
#include "planner/plan_topk.h"

namespace mptopk {
namespace {

using cost::Workload;
using gpu::Algorithm;

simt::DeviceSpec Spec() { return simt::DeviceSpec::TitanXMaxwell(); }

Workload FloatWorkload(size_t n, size_t k) {
  return Workload{n, k, 4, 4, Distribution::kUniform};
}

// --- Paper anchor points -----------------------------------------------------

TEST(BitonicCostTest, SharedTrafficMatchesPaperConstant) {
  // Paper Section 7.2: T_k for the SortReducer at k=32 is 17.5 * D / B_S.
  auto br = cost::BitonicTopKCost(Spec(), FloatWorkload(1ull << 29, 32));
  EXPECT_NEAR(br.shared_traffic_in_d, 17.5, 1.5);
}

TEST(BitonicCostTest, PaperScaleNumbers) {
  // At n = 2^29 floats the paper predicts ~8.96ms global / ~12.1ms shared
  // for the SortReducer.
  auto br = cost::BitonicTopKCost(Spec(), FloatWorkload(1ull << 29, 32));
  EXPECT_NEAR(br.sort_reducer_global_ms, 8.96, 0.7);
  EXPECT_NEAR(br.sort_reducer_shared_ms, 12.1, 2.5);
  EXPECT_GT(br.total_ms, br.sort_reducer_shared_ms);
  EXPECT_LT(br.total_ms, 25.0);
}

TEST(BitonicCostTest, GrowsWithK) {
  double t32 = cost::BitonicTopKCostMs(Spec(), FloatWorkload(1 << 24, 32));
  double t256 = cost::BitonicTopKCostMs(Spec(), FloatWorkload(1 << 24, 256));
  double t1024 = cost::BitonicTopKCostMs(Spec(), FloatWorkload(1 << 24, 1024));
  EXPECT_LT(t32, t256);
  EXPECT_LT(t256, t1024);
}

TEST(RadixSelectCostTest, FlatInK) {
  double t1 = cost::RadixSelectCostMs(Spec(), FloatWorkload(1 << 24, 1));
  double t1024 = cost::RadixSelectCostMs(Spec(), FloatWorkload(1 << 24, 1024));
  EXPECT_NEAR(t1, t1024, t1 * 0.05);
}

TEST(RadixSelectCostTest, BucketKillerCostsLikeSort) {
  Workload w = FloatWorkload(1 << 24, 32);
  w.dist = Distribution::kBucketKiller;
  double killer = cost::RadixSelectCostMs(Spec(), w);
  double uniform = cost::RadixSelectCostMs(Spec(), FloatWorkload(1 << 24, 32));
  EXPECT_GT(killer, uniform * 1.4);
}

TEST(RadixSelectCostTest, UniformIntsCheaperThanFloats) {
  Workload ints = FloatWorkload(1 << 24, 64);
  ints.key_size = 4;
  ints.elem_size = 4;
  // Int etas: 1/256 from the first pass; float etas start at 1/2.
  Workload floats = ints;
  auto int_etas = cost::RadixSelectEtas(ints);
  (void)int_etas;
  // Distinguish via elem/key semantics: floats use the 0.5 first-pass eta.
  double t_float = cost::RadixSelectCostMs(Spec(), floats);
  Workload w_int = ints;
  w_int.elem_size = 4;
  w_int.key_size = 4;
  w_int.dist = Distribution::kUniform;
  // The current model keys the float heuristic on key_size==4; emulate ints
  // by checking the eta vector directly instead.
  auto etas = cost::RadixSelectEtas(w_int);
  EXPECT_GT(etas[0], 0.4);  // float-style first pass
  EXPECT_LT(etas[1], 0.01);
  EXPECT_GT(t_float, 0);
}

// --- Model vs simulator (Figure 17 fidelity) ----------------------------------

TEST(CostVsSimulatorTest, BitonicTracksMeasured) {
  const size_t n = 1 << 22;
  auto data = GenerateFloats(n, Distribution::kUniform);
  for (size_t k : {32, 128, 256}) {
    simt::Device dev;
    dev.set_trace_sample_target(64);
    auto r = gpu::BitonicTopK(dev, data.data(), n, k);
    ASSERT_TRUE(r.ok());
    double predicted = cost::BitonicTopKCostMs(Spec(), FloatWorkload(n, k));
    // Paper: the model under-predicts but tracks trends; require within 2x
    // and correct ordering.
    EXPECT_LT(predicted, r->kernel_ms * 2.0) << "k=" << k;
    EXPECT_GT(predicted, r->kernel_ms * 0.4) << "k=" << k;
  }
}

TEST(CostVsSimulatorTest, RadixSelectTracksMeasured) {
  const size_t n = 1 << 22;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device dev;
  dev.set_trace_sample_target(64);
  auto r = gpu::RadixSelectTopK(dev, data.data(), n, 64);
  ASSERT_TRUE(r.ok());
  double predicted =
      cost::RadixSelectCostMs(Spec(), FloatWorkload(n, 64));
  EXPECT_LT(predicted, r->kernel_ms * 2.0);
  EXPECT_GT(predicted, r->kernel_ms * 0.4);
}

// --- Planner -------------------------------------------------------------------

TEST(PlannerTest, PrefersBitonicAtSmallK) {
  auto plan = planner::PlanTopK(Spec(), FloatWorkload(1ull << 29, 32));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->best->name(), "BitonicTopK");
}

TEST(PlannerTest, CrossoverToRadixSelectAtLargeK) {
  // Paper Section 6.2: radix select wins for k > 256.
  auto plan = planner::PlanTopK(Spec(), FloatWorkload(1ull << 29, 1024));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->best->name(), "RadixSelect");
}

TEST(PlannerTest, NeverPicksSort) {
  for (size_t k : {1, 32, 256, 1024}) {
    auto plan = planner::PlanTopK(Spec(), FloatWorkload(1ull << 26, k));
    ASSERT_TRUE(plan.ok());
    EXPECT_NE(plan->best->name(), "Sort") << "k=" << k;
  }
}

TEST(PlannerTest, RanksAllFeasible) {
  auto plan = planner::PlanTopK(Spec(), FloatWorkload(1 << 24, 64));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ranked.size(), 5u);  // all feasible at k=64
  for (size_t i = 1; i < plan->ranked.size(); ++i) {
    EXPECT_LE(plan->ranked[i - 1].predicted_ms, plan->ranked[i].predicted_ms);
  }
}

TEST(PlannerTest, ExcludesInfeasiblePerThread) {
  auto plan = planner::PlanTopK(Spec(), FloatWorkload(1 << 24, 512));
  ASSERT_TRUE(plan.ok());
  for (const auto& e : plan->ranked) {
    EXPECT_NE(e.op->name(), "PerThreadTopK") << "k=512 must not fit";
  }
}

TEST(PlannerTest, RejectsBadWorkload) {
  EXPECT_FALSE(planner::PlanTopK(Spec(), FloatWorkload(16, 32)).ok());
  EXPECT_FALSE(planner::PlanTopK(Spec(), FloatWorkload(0, 0)).ok());
}

TEST(PlannerTest, PlannedExecutionRuns) {
  auto data = GenerateFloats(1 << 16, Distribution::kUniform);
  simt::Device dev;
  auto buf = dev.Alloc<float>(data.size()).value();
  dev.CopyToDevice(buf, data.data(), data.size());
  auto r = planner::PlannedTopKDevice(dev, buf, data.size(), 32);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->items.size(), 32u);
  EXPECT_GE(r->items.front(), r->items.back());
}

}  // namespace
}  // namespace mptopk

namespace mptopk {
namespace {

// --- Extension: hybrid in the planner ----------------------------------------

TEST(PlannerExtensionTest, HybridWinsWhenEnabled) {
  cost::Workload w{1ull << 29, 32, 4, 4, Distribution::kUniform};
  auto base = planner::PlanTopK(Spec(), w, /*include_extensions=*/false);
  auto ext = planner::PlanTopK(Spec(), w, /*include_extensions=*/true);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(base->best->name(), "BitonicTopK");
  EXPECT_EQ(ext->best->name(), "HybridTopK")
      << "~1 read beats shared-bound bitonic";
  EXPECT_EQ(ext->ranked.size(), base->ranked.size() + 1);
}

TEST(PlannerExtensionTest, HybridNotPickedOnBucketKiller) {
  cost::Workload w{1ull << 29, 32, 4, 4, Distribution::kBucketKiller};
  auto ext = planner::PlanTopK(Spec(), w, /*include_extensions=*/true);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext->best->name(), "BitonicTopK")
      << "hybrid's fallback costs bitonic plus a wasted read";
}

TEST(PlannerExtensionTest, HybridModelTracksSimulator) {
  const size_t n = 1 << 21;
  auto data = GenerateU32(n, Distribution::kUniform);
  simt::Device dev;
  dev.set_trace_sample_target(32);
  auto r = gpu::TopK(dev, data.data(), n, 32, gpu::Algorithm::kHybrid);
  ASSERT_TRUE(r.ok());
  double predicted =
      cost::HybridCostMs(Spec(), {n, 32, 4, 4, Distribution::kUniform});
  EXPECT_LT(predicted, r->kernel_ms * 2.0);
  EXPECT_GT(predicted, r->kernel_ms * 0.4);
}

}  // namespace
}  // namespace mptopk
