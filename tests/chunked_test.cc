// Tests for larger-than-memory chunked streaming top-k.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/distributions.h"
#include "gputopk/chunked.h"

namespace mptopk::gpu {
namespace {

TEST(ChunkedTopKTest, MatchesSingleShot) {
  const size_t n = 1 << 18;
  auto data = GenerateFloats(n, Distribution::kUniform, 3);
  simt::Device d1, d2;
  auto whole = TopK(d1, data.data(), n, 64);
  auto chunked = ChunkedTopK(d2, data.data(), n, 64, n / 8);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(chunked->chunks, 8);
  EXPECT_EQ(whole->items, chunked->items);
}

TEST(ChunkedTopKTest, UnevenChunksAndTinyTail) {
  const size_t n = 100003;  // not a multiple of anything nice
  auto data = GenerateFloats(n, Distribution::kUniform, 5);
  simt::Device dev;
  auto r = ChunkedTopK(dev, data.data(), n, 32, 30000);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->chunks, 4);
  std::vector<float> ref = data;
  std::sort(ref.begin(), ref.end(), std::greater<float>());
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(r->items[i], ref[i]);
  }
}

TEST(ChunkedTopKTest, SingleChunkDegenerates) {
  const size_t n = 1 << 14;
  auto data = GenerateFloats(n, Distribution::kUniform, 6);
  simt::Device dev;
  auto r = ChunkedTopK(dev, data.data(), n, 16, n);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->chunks, 1);
}

TEST(ChunkedTopKTest, AccountsTransferSeparately) {
  const size_t n = 1 << 16;
  auto data = GenerateFloats(n, Distribution::kUniform, 7);
  simt::Device dev;
  auto r = ChunkedTopK(dev, data.data(), n, 16, n / 4);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->pcie_ms, 0);
  EXPECT_GT(r->kernel_ms, 0);
  EXPECT_DOUBLE_EQ(r->serialized_ms, r->kernel_ms + r->pcie_ms);
  EXPECT_DOUBLE_EQ(r->overlapped_ms, std::max(r->kernel_ms, r->pcie_ms));
}

TEST(ChunkedTopKTest, RejectsBadK) {
  auto data = GenerateFloats(128, Distribution::kUniform);
  simt::Device dev;
  EXPECT_FALSE(ChunkedTopK(dev, data.data(), 128, 0).ok());
  EXPECT_FALSE(ChunkedTopK(dev, data.data(), 128, 500).ok());
}

TEST(ChunkedTopKTest, WorksWithRadixSelect) {
  const size_t n = 1 << 16;
  auto data = GenerateFloats(n, Distribution::kUniform, 8);
  simt::Device dev;
  auto r = ChunkedTopK(dev, data.data(), n, 100, n / 4,
                       Algorithm::kRadixSelect);
  ASSERT_TRUE(r.ok());
  std::vector<float> ref = data;
  std::sort(ref.begin(), ref.end(), std::greater<float>());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(r->items[i], ref[i]);
  }
}

}  // namespace
}  // namespace mptopk::gpu
