// Unit tests for src/common: status plumbing, bit utilities, order-preserving
// key transforms, data distributions, flags and table printing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "common/bits.h"
#include "common/distributions.h"
#include "common/flags.h"
#include "common/key_transform.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/tuple_types.h"

namespace mptopk {
namespace {

// --- Status -----------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be a power of two");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be a power of two");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("boom");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> Doubler(StatusOr<int> in) {
  MPTOPK_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

// --- Bits -------------------------------------------------------------------

TEST(BitsTest, PowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 40));
}

TEST(BitsTest, Log2) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(1024), 10);
}

TEST(BitsTest, NextPowerOfTwoAndRounding) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(RoundUp(10, 8), 16u);
  EXPECT_EQ(RoundUp(16, 8), 16u);
  EXPECT_EQ(CeilDiv(9, 4), 3u);
}

TEST(BitsTest, DigitExtraction) {
  uint32_t key = 0xAABBCCDD;
  EXPECT_EQ(ExtractDigitLsd(key, 0, 8), 0xDDu);
  EXPECT_EQ(ExtractDigitLsd(key, 3, 8), 0xAAu);
  EXPECT_EQ(ExtractDigitMsd(key, 0, 8), 0xAAu);
  EXPECT_EQ(ExtractDigitMsd(key, 3, 8), 0xDDu);
}

// --- Key transforms ----------------------------------------------------------

template <typename T>
void CheckOrderPreserving(std::vector<T> values) {
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    auto a = KeyTraits<T>::ToOrderedBits(values[i - 1]);
    auto b = KeyTraits<T>::ToOrderedBits(values[i]);
    EXPECT_LE(a, b) << "at index " << i;
    EXPECT_EQ(KeyTraits<T>::FromOrderedBits(b), values[i]);
  }
}

TEST(KeyTransformTest, FloatOrderPreserving) {
  CheckOrderPreserving<float>({-1e30f, -3.5f, -0.0f, 0.0f, 1e-20f, 1.0f,
                               3.14f, 1e30f});
}

TEST(KeyTransformTest, DoubleOrderPreserving) {
  CheckOrderPreserving<double>({-1e300, -2.5, -1e-200, 0.0, 7.25, 1e300});
}

TEST(KeyTransformTest, Int32OrderPreserving) {
  CheckOrderPreserving<int32_t>({INT32_MIN, -5, -1, 0, 1, 100, INT32_MAX});
}

TEST(KeyTransformTest, Int64OrderPreserving) {
  CheckOrderPreserving<int64_t>({INT64_MIN, -42, 0, 42, INT64_MAX});
}

TEST(KeyTransformTest, RandomFloatsRoundTrip) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1e6f, 1e6f);
  for (int i = 0; i < 1000; ++i) {
    float v = dist(rng);
    EXPECT_EQ(KeyTraits<float>::FromOrderedBits(
                  KeyTraits<float>::ToOrderedBits(v)),
              v);
  }
}

TEST(KeyTransformTest, LowestIsMinimal) {
  EXPECT_LE(KeyTraits<float>::ToOrderedBits(KeyTraits<float>::Lowest()),
            KeyTraits<float>::ToOrderedBits(-1e37f));
  // The sentinel must not outrank ANY non-NaN input — including -Inf
  // (a -FLT_MAX sentinel leaked into top-k results for -Inf inputs).
  EXPECT_LE(KeyTraits<float>::ToOrderedBits(KeyTraits<float>::Lowest()),
            KeyTraits<float>::ToOrderedBits(
                -std::numeric_limits<float>::infinity()));
  EXPECT_LE(KeyTraits<double>::ToOrderedBits(KeyTraits<double>::Lowest()),
            KeyTraits<double>::ToOrderedBits(
                -std::numeric_limits<double>::infinity()));
  EXPECT_EQ(KeyTraits<uint32_t>::Lowest(), 0u);
}

// --- Tuple types -------------------------------------------------------------

TEST(TupleTypesTest, KVOrdering) {
  KV a{1.0f, 10}, b{2.0f, 5};
  EXPECT_TRUE(ElementTraits<KV>::Less(a, b));
  EXPECT_FALSE(ElementTraits<KV>::Less(b, a));
  EXPECT_EQ(ElementTraits<KV>::PrimaryKey(b), 2.0f);
}

TEST(TupleTypesTest, KKVLexicographic) {
  KKV a{1.0f, 5.0f, 1}, b{1.0f, 6.0f, 2};
  EXPECT_TRUE(ElementTraits<KKV>::Less(a, b));
  KKKV c{1.0f, 5.0f, 1.0f, 1}, d{1.0f, 5.0f, 2.0f, 2};
  EXPECT_TRUE(ElementTraits<KKKV>::Less(c, d));
}

TEST(TupleTypesTest, SentinelNeverWins) {
  KV sentinel = ElementTraits<KV>::LowestSentinel();
  EXPECT_TRUE(ElementTraits<KV>::Less(sentinel, KV{-1e30f, 0}));
}

// --- Distributions ------------------------------------------------------------

TEST(DistributionsTest, ParseNames) {
  EXPECT_TRUE(ParseDistribution("uniform").ok());
  EXPECT_TRUE(ParseDistribution("bucket_killer").ok());
  EXPECT_FALSE(ParseDistribution("zipfian").ok());
  EXPECT_STREQ(DistributionName(Distribution::kIncreasing), "increasing");
}

TEST(DistributionsTest, UniformFloatsInRange) {
  auto v = GenerateFloats(10000, Distribution::kUniform);
  EXPECT_EQ(v.size(), 10000u);
  for (float x : v) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(DistributionsTest, Deterministic) {
  auto a = GenerateFloats(100, Distribution::kUniform, 123);
  auto b = GenerateFloats(100, Distribution::kUniform, 123);
  EXPECT_EQ(a, b);
  auto c = GenerateFloats(100, Distribution::kUniform, 124);
  EXPECT_NE(a, c);
}

TEST(DistributionsTest, IncreasingIsSorted) {
  auto v = GenerateFloats(1000, Distribution::kIncreasing);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(DistributionsTest, DecreasingIsReverseSorted) {
  auto v = GenerateFloats(1000, Distribution::kDecreasing);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<float>()));
}

TEST(DistributionsTest, BucketKillerMostlyOnes) {
  auto v = GenerateFloats(1000, Distribution::kBucketKiller);
  size_t ones = std::count(v.begin(), v.end(), 1.0f);
  EXPECT_GE(ones, v.size() - 4);
  EXPECT_LT(ones, v.size());  // at least one modified value
}

TEST(DistributionsTest, DoublesAndU32) {
  auto d = GenerateDoubles(100, Distribution::kUniform);
  for (double x : d) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
  auto u = GenerateU32(10000, Distribution::kUniform);
  // Should cover a wide range.
  auto [mn, mx] = std::minmax_element(u.begin(), u.end());
  EXPECT_LT(*mn, 1u << 28);
  EXPECT_GT(*mx, 0xF0000000u);
}

// --- Flags --------------------------------------------------------------------

TEST(FlagsTest, ParsesForms) {
  Flags f;
  f.Define("k", "64", "top-k");
  f.Define("dist", "uniform", "distribution");
  f.Define("csv", "false", "emit csv");
  const char* argv[] = {"prog", "--k=128", "--dist", "increasing", "--csv"};
  ASSERT_TRUE(f.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(f.GetInt("k"), 128);
  EXPECT_EQ(f.GetString("dist"), "increasing");
  EXPECT_TRUE(f.GetBool("csv"));
}

TEST(FlagsTest, UnknownFlagFails) {
  Flags f;
  f.Define("k", "64", "top-k");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(f.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, DefaultsApply) {
  Flags f;
  f.Define("n_log2", "24", "log2 of input size");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(f.GetInt("n_log2"), 24);
}

// --- TablePrinter ---------------------------------------------------------------

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(TablePrinter::Cell(1.234, 2), "1.23");
  EXPECT_EQ(TablePrinter::Cell(std::nan(""), 2), "-");
}

}  // namespace
}  // namespace mptopk
