// Tests for the bottom-k direction ("largest or smallest", paper abstract):
// implemented as top-k over order-negated keys, so every algorithm must
// work symmetrically.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/distributions.h"
#include "gputopk/topk.h"

namespace mptopk::gpu {
namespace {

template <typename E>
std::vector<E> ReferenceBottom(std::vector<E> data, size_t k) {
  std::sort(data.begin(), data.end(),
            [](const E& a, const E& b) { return ElementTraits<E>::Less(a, b); });
  data.resize(k);
  return data;
}

class BottomKTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BottomKTest, FloatsAscending) {
  auto data = GenerateFloats(1 << 15, Distribution::kUniform, 21);
  simt::Device dev;
  auto r = TopK(dev, data.data(), data.size(), 32, GetParam(),
                SortOrder::kSmallest);
  ASSERT_TRUE(r.ok()) << r.status();
  auto expect = ReferenceBottom(data, 32);
  ASSERT_EQ(r->items.size(), 32u);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(r->items[i], expect[i]) << "rank " << i;
  }
}

TEST_P(BottomKTest, SignedIntsIncludingMin) {
  auto data = GenerateI32(1 << 14, Distribution::kUniform, 22);
  data[100] = INT32_MIN;  // ~x must handle the extremes
  data[200] = INT32_MAX;
  simt::Device dev;
  auto r = TopK(dev, data.data(), data.size(), 16, GetParam(),
                SortOrder::kSmallest);
  ASSERT_TRUE(r.ok()) << r.status();
  auto expect = ReferenceBottom(data, 16);
  EXPECT_EQ(r->items, expect);
  EXPECT_EQ(r->items.front(), INT32_MIN);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, BottomKTest,
                         ::testing::Values(Algorithm::kSort,
                                           Algorithm::kPerThread,
                                           Algorithm::kRadixSelect,
                                           Algorithm::kBucketSelect,
                                           Algorithm::kBitonic,
                                           Algorithm::kHybrid),
                         [](const auto& info) {
                           return AlgorithmName(info.param);
                         });

TEST(BottomKTest, KVPayloadsFollowSmallestKeys) {
  auto keys = GenerateFloats(1 << 14, Distribution::kUniform, 23);
  std::vector<KV> data(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    data[i] = KV{keys[i], static_cast<uint32_t>(i)};
  }
  simt::Device dev;
  auto r = TopK(dev, data.data(), data.size(), 16, Algorithm::kBitonic,
                SortOrder::kSmallest);
  ASSERT_TRUE(r.ok()) << r.status();
  for (const KV& kv : r->items) {
    EXPECT_EQ(data[kv.value].key, kv.key);
  }
  auto expect = ReferenceBottom(data, 16);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(r->items[i].key, expect[i].key);
  }
}

TEST(BottomKTest, LargestDefaultUnchanged) {
  auto data = GenerateFloats(4096, Distribution::kUniform, 24);
  simt::Device d1, d2;
  auto a = TopK(d1, data.data(), data.size(), 8);
  auto b = TopK(d2, data.data(), data.size(), 8, Algorithm::kBitonic,
                SortOrder::kLargest);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->items, b->items);
}

TEST(BottomKTest, NegationIsInvolution) {
  for (float v : {0.0f, -0.0f, 1.5f, -3e38f}) {
    EXPECT_EQ(ElementTraits<float>::Negated(ElementTraits<float>::Negated(v)),
              v);
  }
  for (int32_t v : {0, -1, INT32_MIN, INT32_MAX}) {
    EXPECT_EQ(
        ElementTraits<int32_t>::Negated(ElementTraits<int32_t>::Negated(v)),
        v);
  }
  // Order reversal for ints: a < b  <=>  ~b < ~a.
  EXPECT_LT(ElementTraits<int32_t>::Negated(INT32_MAX),
            ElementTraits<int32_t>::Negated(INT32_MIN));
}

}  // namespace
}  // namespace mptopk::gpu
