// Stream / ExecCtx semantics: independent small kernels on separate streams
// overlap (device makespan = max of the stream clocks, not their sum),
// event-dependent kernels serialize, contention stretches oversubscribed
// bandwidth-bound work, and the pooling allocator reuses freed blocks
// instead of growing the bump-pointer footprint.
#include <gtest/gtest.h>

#include <numeric>

#include "simt/device.h"
#include "simt/exec_ctx.h"
#include "simt/memory.h"
#include "simt/stream.h"

namespace mptopk::simt {
namespace {

Device MakeDevice() { return Device(DeviceSpec::TitanXMaxwell()); }

// A small kernel (4 blocks on a 24-SM device) that doubles `n` ints, so two
// instances on different streams fit on the device side by side.
Status LaunchDouble(const ExecCtx& ctx, DeviceBuffer<int>& in,
                    DeviceBuffer<int>& out, int n) {
  GlobalSpan<int> gin(in), gout(out);
  const int block_dim = 128;
  const int grid_dim = (n + block_dim - 1) / block_dim;
  return ctx
      .Launch({.grid_dim = grid_dim, .block_dim = block_dim,
               .name = "double"},
              [&](Block& blk) {
                blk.ForEachThread([&](Thread& t) {
                  size_t i = static_cast<size_t>(blk.block_idx()) *
                                 blk.block_dim() +
                             t.tid;
                  if (i < static_cast<size_t>(n)) {
                    gout.Write(t, i, gin.Read(t, i) * 2);
                  }
                });
              })
      .status();
}

struct StreamPair {
  Device dev = MakeDevice();
  Stream* s1 = dev.CreateStream("s1");
  Stream* s2 = dev.CreateStream("s2");
  ExecCtx c1{dev, s1, nullptr};
  ExecCtx c2{dev, s2, nullptr};
};

TEST(StreamOverlapTest, IndependentKernelsOverlap) {
  StreamPair sp;
  const int n = 512;
  auto a_in = sp.dev.Alloc<int>(n).value();
  auto a_out = sp.dev.Alloc<int>(n).value();
  auto b_in = sp.dev.Alloc<int>(n).value();
  auto b_out = sp.dev.Alloc<int>(n).value();
  std::iota(a_in.host_data(), a_in.host_data() + n, 0);
  std::iota(b_in.host_data(), b_in.host_data() + n, 1000);

  ASSERT_TRUE(LaunchDouble(sp.c1, a_in, a_out, n).ok());
  ASSERT_TRUE(LaunchDouble(sp.c2, b_in, b_out, n).ok());

  // Both kernels are functionally correct.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(a_out.host_data()[i], 2 * i);
    EXPECT_EQ(b_out.host_data()[i], 2 * (1000 + i));
  }
  // Each stream's clock advanced; both started at t=0 (4 blocks each on a
  // 24-SM device -> no contention), so the makespan is the max, not the sum.
  EXPECT_GT(sp.s1->now_ms(), 0.0);
  EXPECT_GT(sp.s2->now_ms(), 0.0);
  EXPECT_DOUBLE_EQ(sp.dev.makespan_ms(),
                   std::max(sp.s1->now_ms(), sp.s2->now_ms()));
  // total_sim_ms keeps the legacy serialized semantics (busy sum).
  EXPECT_NEAR(sp.dev.total_sim_ms(), sp.s1->now_ms() + sp.s2->now_ms(), 1e-9);
  EXPECT_LT(sp.dev.makespan_ms(), sp.dev.total_sim_ms());
}

TEST(StreamOverlapTest, EventDependentKernelsSerialize) {
  StreamPair sp;
  const int n = 512;
  auto in = sp.dev.Alloc<int>(n).value();
  auto mid = sp.dev.Alloc<int>(n).value();
  auto out = sp.dev.Alloc<int>(n).value();
  std::iota(in.host_data(), in.host_data() + n, 0);

  ASSERT_TRUE(LaunchDouble(sp.c1, in, mid, n).ok());
  const double producer_done = sp.s1->now_ms();
  // Consumer on s2 waits on the producer's event before launching.
  sp.c2.WaitEvent(sp.c1.RecordEvent());
  EXPECT_DOUBLE_EQ(sp.s2->now_ms(), producer_done);
  ASSERT_TRUE(LaunchDouble(sp.c2, mid, out, n).ok());

  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out.host_data()[i], 4 * i);
  }
  // The dependent kernel started at the producer's finish time, so the
  // makespan is the serialized sum of the two kernels.
  EXPECT_GT(sp.s2->now_ms(), producer_done);
  EXPECT_DOUBLE_EQ(sp.dev.makespan_ms(), sp.s2->now_ms());
  EXPECT_NEAR(sp.dev.makespan_ms(), sp.dev.total_sim_ms(), 1e-9);
}

TEST(StreamOverlapTest, OversubscribedKernelsStretch) {
  // Two full-device kernels issued concurrently: each claims every SM, so
  // the contention model must stretch the later one's bandwidth terms and
  // the makespan cannot beat the uncontended serialized time.
  StreamPair sp;
  const int n = 24 * 1024;
  auto a_in = sp.dev.Alloc<int>(n).value();
  auto a_out = sp.dev.Alloc<int>(n).value();
  auto b_in = sp.dev.Alloc<int>(n).value();
  auto b_out = sp.dev.Alloc<int>(n).value();
  std::iota(a_in.host_data(), a_in.host_data() + n, 0);
  std::iota(b_in.host_data(), b_in.host_data() + n, 0);

  ASSERT_TRUE(LaunchDouble(sp.c1, a_in, a_out, n).ok());
  const double serial_one = sp.s1->now_ms();
  ASSERT_TRUE(LaunchDouble(sp.c2, b_in, b_out, n).ok());
  // The second kernel overlaps a committed full-device interval, so it runs
  // slower than the same kernel on an idle device.
  EXPECT_GT(sp.s2->now_ms(), serial_one);
}

TEST(PoolingAllocatorTest, FreedBlocksAreReused) {
  Device dev = MakeDevice();
  ASSERT_TRUE(dev.pooling_enabled());
  const size_t before = dev.footprint_bytes();
  { auto a = dev.Alloc<float>(1024).value(); }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  EXPECT_GT(dev.pooled_free_bytes(), 0u);
  const size_t after_first = dev.footprint_bytes();
  EXPECT_GT(after_first, before);
  // Same-size realloc comes from the free list: footprint stays flat.
  { auto b = dev.Alloc<float>(1024).value(); }
  EXPECT_EQ(dev.footprint_bytes(), after_first);
  EXPECT_EQ(dev.pool_reuse_count(), 1u);
}

TEST(PoolingAllocatorTest, NoPoolBaselineNeverReclaims) {
  Device dev = MakeDevice();
  dev.set_pooling(false);
  { auto a = dev.Alloc<float>(1024).value(); }
  // Without pooling nothing is reclaimed: bytes stay charged (the no-reuse
  // baseline used for the batching comparison in results/batching.txt).
  EXPECT_EQ(dev.allocated_bytes(), 4096u);
  { auto b = dev.Alloc<float>(1024).value(); }
  EXPECT_EQ(dev.allocated_bytes(), 8192u);
  EXPECT_EQ(dev.pool_reuse_count(), 0u);
  EXPECT_EQ(dev.peak_allocated_bytes(), 8192u);
}

TEST(ArenaTest, PerQueryArenaTracksPeak) {
  Device dev = MakeDevice();
  MemoryArena arena{"q0"};
  ExecCtx ctx(dev, nullptr, &arena);
  {
    auto a = ctx.Alloc<float>(1024).value();
    auto b = ctx.Alloc<float>(1024).value();
    EXPECT_EQ(arena.live_bytes, 2 * 4096u);
  }
  EXPECT_EQ(arena.live_bytes, 0u);
  EXPECT_EQ(arena.peak_bytes, 2 * 4096u);
  EXPECT_EQ(arena.alloc_count, 2u);
}

TEST(ExecCtxTest, ImplicitDeviceConversionUsesDefaultStream) {
  Device dev = MakeDevice();
  ExecCtx ctx = dev;  // the compatibility path for pre-stream call sites
  EXPECT_EQ(&ctx.device(), &dev);
  EXPECT_EQ(ctx.stream().id(), 0);
  const int n = 256;
  auto in = ctx.Alloc<int>(n).value();
  auto out = ctx.Alloc<int>(n).value();
  std::iota(in.host_data(), in.host_data() + n, 0);
  ASSERT_TRUE(LaunchDouble(ctx, in, out, n).ok());
  EXPECT_EQ(out.host_data()[7], 14);
}

}  // namespace
}  // namespace mptopk::simt
