// Integration tests for the query engine: all three top-k strategies must
// produce identical answers to a host-side reference over the synthetic
// tweets data, and the fused strategies must reduce simulated time
// (paper Sections 5 / 6.8).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "engine/query.h"
#include "engine/tweets.h"

namespace mptopk::engine {
namespace {

constexpr size_t kRows = 1 << 16;

struct TweetsFixture {
  simt::Device dev;
  std::unique_ptr<Table> table;
  // Host copies for reference computation.
  std::vector<int64_t> id;
  std::vector<int32_t> tweet_time, retweet_count, likes_count, lang, uid;

  TweetsFixture() {
    auto t = MakeTweetsTable(&dev, kRows, 123);
    table = std::move(t).value();
    auto grab32 = [&](const char* name, std::vector<int32_t>* out) {
      const Column* c = table->GetColumn(name).value();
      out->assign(c->i32.host_data(), c->i32.host_data() + kRows);
    };
    const Column* idc = table->GetColumn("id").value();
    id.assign(idc->i64.host_data(), idc->i64.host_data() + kRows);
    grab32("tweet_time", &tweet_time);
    grab32("retweet_count", &retweet_count);
    grab32("likes_count", &likes_count);
    grab32("lang", &lang);
    grab32("uid", &uid);
  }

  // Host reference: rank values of the top-k matching rows, descending.
  std::vector<float> ReferenceRanks(const Filter& f, const Ranking& r,
                                    size_t k) const {
    auto clause_matches = [&](const FilterClause& c, size_t row) {
      double v = c.column == "tweet_time" ? tweet_time[row]
                 : c.column == "lang"     ? lang[row]
                 : c.column == "likes_count" ? likes_count[row]
                                             : retweet_count[row];
      switch (c.op) {
        case CompareOp::kLt: return v < c.value;
        case CompareOp::kLe: return v <= c.value;
        case CompareOp::kGt: return v > c.value;
        case CompareOp::kGe: return v >= c.value;
        case CompareOp::kEq: return v == c.value;
      }
      return false;
    };
    std::vector<float> ranks;
    for (size_t row = 0; row < kRows; ++row) {
      bool match = true;
      for (const auto& disjunction : f.all_of) {
        bool any = false;
        for (const auto& c : disjunction.any_of) {
          any |= clause_matches(c, row);
        }
        match &= any;
      }
      if (!match) continue;
      double v = 0;
      for (const auto& term : r.terms) {
        double cv = term.column == "retweet_count" ? retweet_count[row]
                    : term.column == "likes_count" ? likes_count[row]
                                                   : 0;
        v += term.coeff * cv;
      }
      ranks.push_back(static_cast<float>(v));
    }
    std::sort(ranks.begin(), ranks.end(), std::greater<float>());
    ranks.resize(std::min(ranks.size(), k));
    return ranks;
  }
};

TweetsFixture& Fixture() {
  static TweetsFixture* f = new TweetsFixture();
  return *f;
}

Ranking RetweetRanking() { return Ranking{{{"retweet_count", 1.0}}}; }

// --- Query 1: time-range filter + top-50 by retweets -------------------------

class Query1Test : public ::testing::TestWithParam<TopKStrategy> {};

TEST_P(Query1Test, MatchesReferenceAcrossSelectivities) {
  auto& fx = Fixture();
  for (double sel : {0.0, 0.1, 0.5, 1.0}) {
    Filter f{{{"tweet_time", CompareOp::kLt, sel * kTweetTimeRange}}};
    auto r = FilterTopKQuery(*fx.table, f, RetweetRanking(), "id", 50,
                             GetParam());
    ASSERT_TRUE(r.ok()) << r.status();
    auto expect = fx.ReferenceRanks(f, RetweetRanking(), 50);
    ASSERT_EQ(r->rank_values.size(), expect.size()) << "sel=" << sel;
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(r->rank_values[i], expect[i]) << "sel=" << sel << " i=" << i;
    }
    // Ids must correspond to rows achieving those rank values.
    for (size_t i = 0; i < r->ids.size(); ++i) {
      size_t row = static_cast<size_t>(r->ids[i] - 1'000'000'000);
      ASSERT_LT(row, kRows);
      EXPECT_EQ(static_cast<float>(fx.retweet_count[row]),
                r->rank_values[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, Query1Test,
                         ::testing::Values(TopKStrategy::kFilterSort,
                                           TopKStrategy::kFilterBitonic,
                                           TopKStrategy::kCombinedBitonic),
                         [](const auto& info) {
                           std::string n = StrategyName(info.param);
                           std::string out;
                           for (char c : n) {
                             if (isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

// --- Query 2: custom ranking function ----------------------------------------

TEST(Query2Test, RankingFunctionAllStrategiesAgree) {
  auto& fx = Fixture();
  Ranking rank{{{"retweet_count", 1.0}, {"likes_count", 0.5}}};
  auto expect = fx.ReferenceRanks(Filter{}, rank, 64);
  for (auto strat : {TopKStrategy::kFilterSort, TopKStrategy::kFilterBitonic,
                     TopKStrategy::kCombinedBitonic}) {
    auto r = FilterTopKQuery(*fx.table, Filter{}, rank, "id", 64, strat);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->rank_values.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(r->rank_values[i], expect[i])
          << StrategyName(strat) << " i=" << i;
    }
  }
}

// --- Query 3: disjunctive language filter -------------------------------------

TEST(Query3Test, LangFilterSelectivityAbout80Percent) {
  auto& fx = Fixture();
  Filter f{{{"lang", CompareOp::kEq, kLangEn},
            {"lang", CompareOp::kEq, kLangEs}}};
  auto r = FilterTopKQuery(*fx.table, f, RetweetRanking(), "id", 32,
                           TopKStrategy::kCombinedBitonic);
  ASSERT_TRUE(r.ok()) << r.status();
  double sel = static_cast<double>(r->matched_rows) / kRows;
  EXPECT_NEAR(sel, 0.8, 0.02);
  auto expect = fx.ReferenceRanks(f, RetweetRanking(), 32);
  ASSERT_EQ(r->rank_values.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(r->rank_values[i], expect[i]);
  }
}

// --- CNF filters (extension beyond the paper's query shapes) -------------------

TEST(CnfFilterTest, ConjunctionOfDisjunctions) {
  auto& fx = Fixture();
  // (tweet_time < 0.5*range) AND (lang='en' OR lang='es')
  Filter f{{"tweet_time", CompareOp::kLt, 0.5 * kTweetTimeRange}};
  f.And({{"lang", CompareOp::kEq, kLangEn},
         {"lang", CompareOp::kEq, kLangEs}});
  auto expect = fx.ReferenceRanks(f, RetweetRanking(), 32);
  for (auto strat : {TopKStrategy::kFilterSort, TopKStrategy::kFilterBitonic,
                     TopKStrategy::kCombinedBitonic}) {
    auto r = FilterTopKQuery(*fx.table, f, RetweetRanking(), "id", 32, strat);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->rank_values.size(), expect.size()) << StrategyName(strat);
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(r->rank_values[i], expect[i])
          << StrategyName(strat) << " i=" << i;
    }
    // Selectivity ~ 0.5 * 0.8.
    double sel = static_cast<double>(r->matched_rows) / kRows;
    EXPECT_NEAR(sel, 0.4, 0.03);
  }
}

TEST(OddRowCountTest, PartialTilesAllStrategies) {
  // A prime row count exercises the partial-tile paths of the filter and
  // the fused buffer-filler (ranges not multiples of nt or tile).
  simt::Device dev;
  auto table = std::move(MakeTweetsTable(&dev, 10007, 9).value());
  Ranking rank{{{"retweet_count", 1.0}}};
  const Column* rc = table->GetColumn("retweet_count").value();
  std::vector<int32_t> host(rc->i32.host_data(), rc->i32.host_data() + 10007);
  std::sort(host.begin(), host.end(), std::greater<int32_t>());
  for (auto strat : {TopKStrategy::kFilterSort, TopKStrategy::kFilterBitonic,
                     TopKStrategy::kCombinedBitonic}) {
    auto r = FilterTopKQuery(*table, Filter{}, rank, "id", 25, strat);
    ASSERT_TRUE(r.ok()) << StrategyName(strat) << ": " << r.status();
    EXPECT_EQ(r->matched_rows, 10007u);
    ASSERT_EQ(r->rank_values.size(), 25u) << StrategyName(strat);
    for (size_t i = 0; i < 25; ++i) {
      EXPECT_EQ(r->rank_values[i], static_cast<float>(host[i]))
          << StrategyName(strat) << " i=" << i;
    }
  }
}

TEST(OddRowCountTest, KExceedsMatches) {
  simt::Device dev;
  auto table = std::move(MakeTweetsTable(&dev, 5000, 10).value());
  Ranking rank{{{"retweet_count", 1.0}}};
  // A very selective filter: huge retweet counts only.
  Filter f{{{"retweet_count", CompareOp::kGt, 1e5}}};
  for (auto strat : {TopKStrategy::kFilterSort, TopKStrategy::kFilterBitonic,
                     TopKStrategy::kCombinedBitonic}) {
    auto r = FilterTopKQuery(*table, f, rank, "id", 100, strat);
    ASSERT_TRUE(r.ok()) << StrategyName(strat) << ": " << r.status();
    EXPECT_LT(r->matched_rows, 100u) << "filter should be very selective";
    EXPECT_EQ(r->rank_values.size(), r->matched_rows) << StrategyName(strat);
    for (float v : r->rank_values) {
      EXPECT_GT(v, 1e5f);
    }
  }
}

TEST(CnfFilterTest, EmptyDisjunctionRejected) {
  auto& fx = Fixture();
  Filter f;
  f.all_of.push_back(Disjunction{});
  EXPECT_FALSE(FilterTopKQuery(*fx.table, f, RetweetRanking(), "id", 8,
                               TopKStrategy::kFilterSort)
                   .ok());
}

// --- Query 4: group-by count top-k ---------------------------------------------

class Query4Test : public ::testing::TestWithParam<GroupByStrategy> {};

TEST_P(Query4Test, TopUsersByTweetCount) {
  auto& fx = Fixture();
  auto r = GroupByCountTopKQuery(*fx.table, "uid", 50, GetParam());
  ASSERT_TRUE(r.ok()) << r.status();

  std::map<int32_t, uint32_t> ref;
  for (int32_t u : fx.uid) ref[u]++;
  std::vector<uint32_t> counts;
  for (auto& [u, c] : ref) counts.push_back(c);
  std::sort(counts.begin(), counts.end(), std::greater<uint32_t>());
  counts.resize(50);

  EXPECT_EQ(r->num_groups, ref.size());
  ASSERT_EQ(r->counts.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(r->counts[i], counts[i]) << "rank " << i;
    EXPECT_EQ(ref[r->keys[i]], r->counts[i]) << "key/count mismatch " << i;
  }
  EXPECT_GT(r->groupby_ms, 0);
  EXPECT_GT(r->topk_ms, 0);
}

INSTANTIATE_TEST_SUITE_P(Strategies, Query4Test,
                         ::testing::Values(GroupByStrategy::kSort,
                                           GroupByStrategy::kBitonic),
                         [](const auto& info) {
                           return info.param == GroupByStrategy::kSort
                                      ? "Sort"
                                      : "Bitonic";
                         });

// --- Performance shape (paper Figure 16) ---------------------------------------

TEST(EnginePerfTest, BitonicBeatsSortAndFusionBeatsBitonic) {
  auto& fx = Fixture();
  Filter f{{{"tweet_time", CompareOp::kLt, 1.0 * kTweetTimeRange}}};
  double t_sort, t_bitonic, t_fused;
  {
    auto r = FilterTopKQuery(*fx.table, f, RetweetRanking(), "id", 50,
                             TopKStrategy::kFilterSort);
    ASSERT_TRUE(r.ok());
    t_sort = r->kernel_ms;
  }
  {
    auto r = FilterTopKQuery(*fx.table, f, RetweetRanking(), "id", 50,
                             TopKStrategy::kFilterBitonic);
    ASSERT_TRUE(r.ok());
    t_bitonic = r->kernel_ms;
  }
  {
    auto r = FilterTopKQuery(*fx.table, f, RetweetRanking(), "id", 50,
                             TopKStrategy::kCombinedBitonic);
    ASSERT_TRUE(r.ok());
    t_fused = r->kernel_ms;
  }
  EXPECT_LT(t_bitonic, t_sort);
  EXPECT_LT(t_fused, t_bitonic);
}

TEST(EnginePerfTest, GroupByBitonicReducesTopKStep) {
  auto& fx = Fixture();
  auto sort = GroupByCountTopKQuery(*fx.table, "uid", 50,
                                    GroupByStrategy::kSort);
  auto bitonic = GroupByCountTopKQuery(*fx.table, "uid", 50,
                                       GroupByStrategy::kBitonic);
  ASSERT_TRUE(sort.ok());
  ASSERT_TRUE(bitonic.ok());
  EXPECT_LT(bitonic->topk_ms, sort->topk_ms);
}

// --- Error handling ---------------------------------------------------------------

TEST(EngineErrorsTest, BadColumns) {
  auto& fx = Fixture();
  Filter bad{{{"nope", CompareOp::kLt, 1.0}}};
  EXPECT_FALSE(FilterTopKQuery(*fx.table, bad, RetweetRanking(), "id", 10,
                               TopKStrategy::kFilterSort)
                   .ok());
  EXPECT_FALSE(FilterTopKQuery(*fx.table, Filter{}, Ranking{}, "id", 10,
                               TopKStrategy::kFilterSort)
                   .ok());
  EXPECT_FALSE(FilterTopKQuery(*fx.table, Filter{}, RetweetRanking(),
                               "tweet_time", 10, TopKStrategy::kFilterSort)
                   .ok());
  EXPECT_FALSE(
      GroupByCountTopKQuery(*fx.table, "id", 10, GroupByStrategy::kSort)
          .ok());
}

TEST(TableTest, SchemaValidation) {
  simt::Device dev;
  Table t(&dev);
  ASSERT_TRUE(t.AddColumnI32("a", {1, 2, 3}).ok());
  EXPECT_FALSE(t.AddColumnI32("a", {1, 2, 3}).ok());  // duplicate
  EXPECT_FALSE(t.AddColumnI32("b", {1, 2}).ok());     // row mismatch
  ASSERT_TRUE(t.AddColumnF32("c", {1.f, 2.f, 3.f}).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.GetColumn("zzz").ok());
}

}  // namespace
}  // namespace mptopk::engine
