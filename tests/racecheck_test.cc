// Barrier-epoch race checker (simt/racecheck.h): true-positive mutant
// kernels with a deliberately removed Sync() MUST be flagged with the right
// (epoch, tid) attribution; lockstep / atomic exemptions must hold; and the
// false-positive gate asserts every shipped kernel — the five gputopk
// algorithms, hybrid, chunked, and the engine's fused query kernels —
// launches clean under the checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/distributions.h"
#include "engine/query.h"
#include "engine/tweets.h"
#include "gputopk/chunked.h"
#include "gputopk/topk.h"
#include "simt/device.h"
#include "simt/racecheck.h"

namespace mptopk {
namespace {

using simt::Block;
using simt::Device;
using simt::RaceHazard;
using simt::RaceReport;
using simt::Thread;

Device RacecheckDevice() {
  Device dev;
  dev.set_racecheck(true);
  return dev;
}

// --- True positives: mutants the checker MUST flag -------------------------

// A write region followed by a cross-thread read region with the barrier
// deliberately removed — the canonical missing-__syncthreads bug. The
// sequential ForEachThread loops still compute the "right" values, which is
// exactly why only the checker can catch it.
TEST(RacecheckMutants, MissingSyncReadAfterWriteIsFlagged) {
  Device dev = RacecheckDevice();
  auto st = dev.Launch({1, 64, 32, "mutant_missing_sync"}, [&](Block& blk) {
    auto buf = blk.AllocShared<float>(64);
    float* sink = blk.ThreadScratch<float>(1);
    blk.ForEachThread(
        [&](Thread& t) { buf.Write(t, t.tid, static_cast<float>(t.tid)); });
    // MISSING blk.Sync(): the reads below cross thread boundaries.
    blk.ForEachThread(
        [&](Thread& t) { sink[t.tid] = buf.Read(t, (t.tid + 1) % 64); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  const RaceReport& report = dev.race_report();
  ASSERT_FALSE(report.clean()) << "mutant not flagged";
  EXPECT_GE(report.hazard_count, 64u);  // one RW pair per element
  // Attribution: tid 1's write of element 1 races tid 0's read of it, in
  // epoch 0 (no barrier ever executed), at byte range [4, 8) of the arena.
  bool found = false;
  for (const RaceHazard& h : report.hazards) {
    EXPECT_EQ(h.epoch, 0u) << h.ToString();
    EXPECT_EQ(h.space, RaceHazard::Space::kShared) << h.ToString();
    EXPECT_NE(h.a.tid, h.b.tid) << h.ToString();
    if (h.a.tid == 0 && h.b.tid == 1 && h.addr == 4 && h.bytes == 4 &&
        !h.a.write && h.b.write) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "expected tid0-read vs tid1-write hazard at [4,8): "
                     << report.Summary();
  // The per-launch report on KernelStats carries the same hazards.
  ASSERT_FALSE(dev.kernel_log().empty());
  EXPECT_EQ(dev.kernel_log().back().race.hazard_count, report.hazard_count);
}

// Same mutant, but with a barrier placed *before* the racing regions: the
// hazards must be attributed to epoch 1, proving the epoch counter follows
// Sync() rather than region boundaries.
TEST(RacecheckMutants, EpochAttributionFollowsSync) {
  Device dev = RacecheckDevice();
  auto st = dev.Launch({1, 64, 32, "mutant_epoch1"}, [&](Block& blk) {
    auto buf = blk.AllocShared<float>(64);
    float* sink = blk.ThreadScratch<float>(1);
    blk.ForEachThread([&](Thread& t) { buf.Write(t, t.tid, 0.0f); });
    blk.Sync();  // epoch 0 -> 1
    blk.ForEachThread(
        [&](Thread& t) { buf.Write(t, t.tid, static_cast<float>(t.tid)); });
    // MISSING blk.Sync()
    blk.ForEachThread(
        [&](Thread& t) { sink[t.tid] = buf.Read(t, (t.tid + 1) % 64); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  const RaceReport& report = dev.race_report();
  ASSERT_FALSE(report.clean());
  for (const RaceHazard& h : report.hazards) {
    EXPECT_EQ(h.epoch, 1u) << h.ToString();
  }
}

// Restoring the barrier makes the same kernel clean: write (epoch 0) and
// read (epoch 1) no longer conflict.
TEST(RacecheckMutants, SyncRepairsTheMutant) {
  Device dev = RacecheckDevice();
  auto st = dev.Launch({1, 64, 32, "repaired"}, [&](Block& blk) {
    auto buf = blk.AllocShared<float>(64);
    float* sink = blk.ThreadScratch<float>(1);
    blk.ForEachThread(
        [&](Thread& t) { buf.Write(t, t.tid, static_cast<float>(t.tid)); });
    blk.Sync();
    blk.ForEachThread(
        [&](Thread& t) { sink[t.tid] = buf.Read(t, (t.tid + 1) % 64); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE(dev.race_report().clean()) << dev.race_report().Summary();
}

// Intra-region write/write overlap: every thread stores to shared word 0 in
// one region. Lanes of one warp do so in lockstep (same SIMT instruction —
// exempt, as on real racecheck), but the two warps of the block genuinely
// race each other.
TEST(RacecheckMutants, CrossWarpWriteWriteFlaggedLockstepExempt) {
  Device dev = RacecheckDevice();
  auto st = dev.Launch({1, 64, 32, "mutant_ww"}, [&](Block& blk) {
    auto buf = blk.AllocShared<float>(1);
    blk.ForEachThread([&](Thread& t) { buf.Write(t, 0, 1.0f); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  const RaceReport& report = dev.race_report();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.hazard_count, 32u * 32u);  // warp0 x warp1 pairs
  for (const RaceHazard& h : report.hazards) {
    EXPECT_NE(h.a.warp, h.b.warp) << "lockstep pair flagged: " << h.ToString();
    EXPECT_TRUE(h.a.write && h.b.write) << h.ToString();
  }

  // A single warp doing the same thing is pure lockstep: clean.
  Device one_warp = RacecheckDevice();
  st = one_warp.Launch({1, 32, 32, "lockstep"}, [&](Block& blk) {
    auto buf = blk.AllocShared<float>(1);
    blk.ForEachThread([&](Thread& t) { buf.Write(t, 0, 1.0f); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE(one_warp.race_report().clean())
      << one_warp.race_report().Summary();
}

// Atomics serialize in hardware: a block-wide shared AtomicAdd to one word
// is exempt, but a plain write racing those atomics is still a hazard.
TEST(RacecheckMutants, AtomicsExemptPlainWriteAgainstAtomicFlagged) {
  Device dev = RacecheckDevice();
  auto st = dev.Launch({1, 64, 32, "atomic_clean"}, [&](Block& blk) {
    auto cnt = blk.AllocShared<uint32_t>(1);
    blk.ForEachThread([&](Thread& t) {
      if (t.tid == 0) cnt.Write(t, 0, 0);
    });
    blk.Sync();
    blk.ForEachThread([&](Thread& t) { cnt.AtomicAdd(t, 0, 1u); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE(dev.race_report().clean()) << dev.race_report().Summary();

  Device mixed = RacecheckDevice();
  st = mixed.Launch({1, 64, 32, "atomic_vs_write"}, [&](Block& blk) {
    auto cnt = blk.AllocShared<uint32_t>(1);
    blk.ForEachThread([&](Thread& t) {
      if (t.tid == 63) {
        cnt.Write(t, 0, 0);  // plain store racing the atomics below
      } else {
        cnt.AtomicAdd(t, 0, 1u);
      }
    });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  const RaceReport& report = mixed.race_report();
  ASSERT_FALSE(report.clean());
  for (const RaceHazard& h : report.hazards) {
    EXPECT_TRUE(!h.a.atomic || !h.b.atomic) << h.ToString();
  }
}

// Global memory is checked per block too: conflicting plain stores to one
// global word are flagged, the atomic equivalent is not.
TEST(RacecheckMutants, GlobalPerBlockHazard) {
  Device dev = RacecheckDevice();
  auto buf = dev.Alloc<uint32_t>(1).value();
  simt::GlobalSpan<uint32_t> g(buf);
  auto st = dev.Launch({1, 64, 32, "mutant_global_ww"}, [&](Block& blk) {
    blk.ForEachThread(
        [&](Thread& t) { g.Write(t, 0, static_cast<uint32_t>(t.tid)); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  const RaceReport& report = dev.race_report();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.hazards.front().space, RaceHazard::Space::kGlobal);

  Device atomic_dev = RacecheckDevice();
  auto buf2 = atomic_dev.Alloc<uint32_t>(1).value();
  simt::GlobalSpan<uint32_t> g2(buf2);
  st = atomic_dev.Launch({1, 64, 32, "global_atomic"}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) { g2.AtomicAdd(t, 0, 1u); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE(atomic_dev.race_report().clean())
      << atomic_dev.race_report().Summary();
}

// With the checker off, the same mutant reports nothing (and no launch ever
// pays for checking): opt-in means opt-in.
TEST(RacecheckMutants, CheckerOffReportsNothing) {
  Device dev;  // racecheck defaults off (absent MPTOPK_RACECHECK)
  if (dev.racecheck()) GTEST_SKIP() << "MPTOPK_RACECHECK set in environment";
  auto st = dev.Launch({1, 64, 32, "mutant_missing_sync"}, [&](Block& blk) {
    auto buf = blk.AllocShared<float>(64);
    float* sink = blk.ThreadScratch<float>(1);
    blk.ForEachThread(
        [&](Thread& t) { buf.Write(t, t.tid, static_cast<float>(t.tid)); });
    blk.ForEachThread(
        [&](Thread& t) { sink[t.tid] = buf.Read(t, (t.tid + 1) % 64); });
  });
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE(dev.race_report().clean());
  EXPECT_EQ(dev.race_report().blocks_checked, 0u);
}

// The checker is analysis-only: enabling it must not move a single bit of
// the simulated timings (the zero-cost-when-off acceptance criterion, tested
// from the stronger side: even ON it changes nothing).
TEST(Racecheck, TimingsBitIdenticalWithCheckerOnAndOff) {
  auto data = GenerateFloats(1 << 14, Distribution::kUniform, 11);
  Device off;
  off.set_racecheck(false);
  Device on = RacecheckDevice();
  auto r_off = gpu::TopK(off, data.data(), data.size(), 64,
                         gpu::Algorithm::kBitonic);
  auto r_on = gpu::TopK(on, data.data(), data.size(), 64,
                        gpu::Algorithm::kBitonic);
  ASSERT_TRUE(r_off.ok() && r_on.ok());
  EXPECT_EQ(r_off->kernel_ms, r_on->kernel_ms);  // exact, not near
  EXPECT_EQ(off.total_sim_ms(), on.total_sim_ms());
}

// --- False-positive gate: every shipped kernel launches clean --------------

TEST(RacecheckGate, AllGpuAlgorithmsClean) {
  auto data = GenerateFloats(1 << 15, Distribution::kUniform, 7);
  for (gpu::Algorithm algo :
       {gpu::Algorithm::kSort, gpu::Algorithm::kPerThread,
        gpu::Algorithm::kRadixSelect, gpu::Algorithm::kBucketSelect,
        gpu::Algorithm::kBitonic, gpu::Algorithm::kHybrid}) {
    for (size_t k : {size_t{1}, size_t{32}, size_t{100}, size_t{256}}) {
      Device dev = RacecheckDevice();
      auto r = gpu::TopK(dev, data.data(), data.size(), k, algo);
      if (!r.ok()) {
        // Per-thread top-k legitimately exhausts shared memory at large k.
        ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted)
            << gpu::AlgorithmName(algo) << " k=" << k << ": "
            << r.status().ToString();
        continue;
      }
      EXPECT_TRUE(dev.race_report().clean())
          << gpu::AlgorithmName(algo) << " k=" << k << ": "
          << dev.race_report().Summary();
      EXPECT_GT(dev.race_report().blocks_checked, 0u)
          << gpu::AlgorithmName(algo);
    }
  }
}

TEST(RacecheckGate, ChunkedClean) {
  auto data = GenerateFloats(1 << 15, Distribution::kUniform, 9);
  Device dev = RacecheckDevice();
  auto r = gpu::ChunkedTopK(dev, data.data(), data.size(), 64,
                            /*chunk_elems=*/1 << 13);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(dev.race_report().clean()) << dev.race_report().Summary();
}

TEST(RacecheckGate, EngineQueriesClean) {
  simt::Device dev;
  const bool initial_racecheck = dev.racecheck();
  auto table = engine::MakeTweetsTable(&dev, 1 << 14, 123).value();
  engine::Filter filter{{engine::FilterClause{
      "tweet_time", engine::CompareOp::kLt, 1000.0}}};
  engine::Ranking ranking{{engine::RankingTerm{"retweet_count", 1.0}}};
  engine::ExecOptions exec;
  exec.racecheck = true;
  for (auto strategy :
       {engine::TopKStrategy::kFilterSort, engine::TopKStrategy::kFilterBitonic,
        engine::TopKStrategy::kCombinedBitonic}) {
    auto r = engine::FilterTopKQuery(*table, filter, ranking, "id", 64,
                                     strategy, exec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->race_hazards, 0u)
        << StrategyName(strategy) << ": " << r->racecheck_summary;
    EXPECT_FALSE(r->racecheck_summary.empty()) << StrategyName(strategy);
  }
  // The query scope must restore the device's prior state.
  EXPECT_EQ(dev.racecheck(), initial_racecheck);

  auto g = engine::GroupByCountTopKQuery(*table, "lang", 8,
                                         engine::GroupByStrategy::kBitonic,
                                         exec);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->race_hazards, 0u) << g->racecheck_summary;
}

TEST(Racecheck, EnvToggleEnablesDevice) {
  const char* orig = std::getenv("MPTOPK_RACECHECK");
  const std::string saved = orig != nullptr ? orig : "";
  ASSERT_EQ(setenv("MPTOPK_RACECHECK", "1", 1), 0);
  Device on;
  EXPECT_TRUE(on.racecheck());
  ASSERT_EQ(setenv("MPTOPK_RACECHECK", "0", 1), 0);
  Device off;
  EXPECT_FALSE(off.racecheck());
  if (orig != nullptr) {
    setenv("MPTOPK_RACECHECK", saved.c_str(), 1);
  } else {
    unsetenv("MPTOPK_RACECHECK");
  }

  simt::DeviceSpec spec;
  spec.racecheck = true;
  Device via_spec(spec);
  EXPECT_TRUE(via_spec.racecheck());
}

}  // namespace
}  // namespace mptopk
