// Tests for the vectorized bitonic step kernels: AVX2 / SSE2 / scalar must
// agree bit-for-bit, and the runtime dispatch must be safe on any host.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "cputopk/simd_step.h"

namespace mptopk::cpu {
namespace {

void StepReference(float* v, size_t m, uint32_t dir, uint32_t inc) {
  for (size_t p = 0; p < m / 2; ++p) {
    size_t low = p & (inc - 1);
    size_t i = (p << 1) - low;
    bool ascending = (i & dir) == 0;
    if (ascending != (v[i] < v[i + inc])) std::swap(v[i], v[i + inc]);
  }
}

class SimdStepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SimdStepTest, MatchesScalarReference) {
  const uint32_t inc = GetParam();
  const size_t m = 4096;
  std::mt19937 rng(inc);
  std::uniform_real_distribution<float> dist(-100.f, 100.f);
  for (uint32_t dir : {2 * inc, 4 * inc, 8 * inc}) {
    std::vector<float> a(m), b;
    for (auto& x : a) x = dist(rng);
    b = a;
    StepReference(a.data(), m, dir, inc);
    StepFloatSimd(b.data(), m, dir, inc);
    EXPECT_EQ(a, b) << "inc=" << inc << " dir=" << dir;
  }
}

INSTANTIATE_TEST_SUITE_P(Incs, SimdStepTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 512, 2048));

TEST(SimdStepTest, Avx2PathDirectWhenSupported) {
  if (!HasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const size_t m = 1024;
  std::mt19937 rng(9);
  std::uniform_real_distribution<float> dist(0.f, 1.f);
  std::vector<float> a(m), b;
  for (auto& x : a) x = dist(rng);
  b = a;
  StepReference(a.data(), m, /*dir=*/32, /*inc=*/16);
  StepFloatAvx2(b.data(), m, /*dir=*/32, /*inc=*/16);
  EXPECT_EQ(a, b);
}

TEST(SimdStepTest, NegativeZeroAndInfinities) {
  std::vector<float> a = {-0.f, 0.f, 1e38f, -1e38f, 5.f, -5.f, 2.f, 3.f};
  auto b = a;
  StepReference(a.data(), 8, 8, 4);
  StepFloatSimd(b.data(), 8, 8, 4);
  // min/max ps may order -0.0 vs 0.0 differently than '<'; values must
  // still be equal as floats.
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a[i], b[i]) << i;
  }
}

}  // namespace
}  // namespace mptopk::cpu
