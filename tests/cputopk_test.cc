// Tests for the CPU top-k algorithms (paper Section 6.7 / Appendix C).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/distributions.h"
#include "cputopk/cpu_topk.h"

namespace mptopk::cpu {
namespace {

template <typename E>
std::vector<E> Reference(std::vector<E> data, size_t k) {
  std::sort(data.begin(), data.end(),
            [](const E& a, const E& b) { return ElementTraits<E>::Less(b, a); });
  data.resize(k);
  return data;
}

struct CpuCase {
  CpuAlgorithm algo;
  size_t k;
  Distribution dist;
  int threads;
};

class CpuSweepTest : public ::testing::TestWithParam<CpuCase> {};

TEST_P(CpuSweepTest, MatchesReference) {
  auto [algo, k, dist, threads] = GetParam();
  auto data = GenerateFloats(1 << 16, dist, 7 * k + threads);
  auto r = CpuTopK(data.data(), data.size(), k, algo, threads);
  ASSERT_TRUE(r.ok()) << r.status();
  auto expect = Reference(data, k);
  ASSERT_EQ(r->items.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(r->items[i], expect[i]) << "rank " << i;
  }
}

std::vector<CpuCase> CpuCases() {
  std::vector<CpuCase> cases;
  for (CpuAlgorithm a : {CpuAlgorithm::kStlPq, CpuAlgorithm::kHandPq,
                         CpuAlgorithm::kBitonic}) {
    for (size_t k : {1, 2, 32, 256}) {
      for (int threads : {1, 4}) {
        cases.push_back({a, k, Distribution::kUniform, threads});
      }
    }
    cases.push_back({a, 32, Distribution::kIncreasing, 4});
    cases.push_back({a, 32, Distribution::kDecreasing, 4});
  }
  // Non-power-of-two k for the heap variants only.
  cases.push_back({CpuAlgorithm::kStlPq, 100, Distribution::kUniform, 2});
  cases.push_back({CpuAlgorithm::kHandPq, 100, Distribution::kUniform, 2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, CpuSweepTest, ::testing::ValuesIn(CpuCases()), [](const auto& info) {
      std::string name = CpuAlgorithmName(info.param.algo);
      for (auto& c : name) {
        if (c == ' ') c = '_';
      }
      return name + "_k" + std::to_string(info.param.k) + "_" +
             DistributionName(info.param.dist) + "_t" +
             std::to_string(info.param.threads);
    });

TEST(CpuTopKTest, RejectsBadArguments) {
  auto data = GenerateFloats(128, Distribution::kUniform);
  EXPECT_FALSE(CpuTopK(data.data(), 128, 0, CpuAlgorithm::kHandPq).ok());
  EXPECT_FALSE(CpuTopK(data.data(), 128, 200, CpuAlgorithm::kHandPq).ok());
  // Bitonic: non-power-of-two or oversized k.
  EXPECT_FALSE(CpuTopK(data.data(), 128, 3, CpuAlgorithm::kBitonic).ok());
  auto big = GenerateFloats(1 << 14, Distribution::kUniform);
  EXPECT_FALSE(
      CpuTopK(big.data(), big.size(), 512, CpuAlgorithm::kBitonic).ok());
}

TEST(CpuTopKTest, KVPayloads) {
  auto keys = GenerateFloats(1 << 14, Distribution::kUniform);
  std::vector<KV> data(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    data[i] = KV{keys[i], static_cast<uint32_t>(i)};
  }
  for (CpuAlgorithm a : {CpuAlgorithm::kStlPq, CpuAlgorithm::kHandPq,
                         CpuAlgorithm::kBitonic}) {
    auto r = CpuTopK(data.data(), data.size(), 16, a, 2);
    ASSERT_TRUE(r.ok()) << r.status();
    for (const KV& kv : r->items) {
      EXPECT_EQ(data[kv.value].key, kv.key);
    }
  }
}

TEST(CpuTopKTest, DoubleKeys) {
  auto data = GenerateDoubles(1 << 14, Distribution::kUniform);
  auto r = CpuTopK(data.data(), data.size(), 64, CpuAlgorithm::kBitonic, 2);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->items, Reference(data, 64));
}

TEST(CpuTopKTest, ReportsTiming) {
  auto data = GenerateFloats(1 << 16, Distribution::kUniform);
  auto r = CpuTopK(data.data(), data.size(), 32, CpuAlgorithm::kHandPq, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->wall_ms, 0.0);
  EXPECT_EQ(r->threads_used, 1);
}

TEST(CpuTopKTest, TinyInputSingleThreaded) {
  // n too small to split across threads: the thread clamp must kick in.
  auto data = GenerateFloats(64, Distribution::kUniform);
  auto r = CpuTopK(data.data(), data.size(), 16, CpuAlgorithm::kHandPq, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->threads_used, 1);
  EXPECT_EQ(r->items, Reference(data, 16));
}

}  // namespace
}  // namespace mptopk::cpu
