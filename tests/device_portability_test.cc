// Cross-hardware portability: the same kernels and cost models must run and
// stay consistent on a different DeviceSpec (paper Section 7's motivation:
// "to predict the performance on different hardware").
#include <gtest/gtest.h>

#include "common/distributions.h"
#include "cost/cost_model.h"
#include "gputopk/topk.h"
#include "planner/plan_topk.h"

namespace mptopk {
namespace {

TEST(DevicePortabilityTest, AlgorithmsCorrectOnP100) {
  simt::Device dev(simt::DeviceSpec::TeslaP100());
  auto data = GenerateFloats(1 << 16, Distribution::kUniform, 31);
  std::vector<float> ref = data;
  std::sort(ref.begin(), ref.end(), std::greater<float>());
  for (auto a : {gpu::Algorithm::kSort, gpu::Algorithm::kPerThread,
                 gpu::Algorithm::kRadixSelect, gpu::Algorithm::kBucketSelect,
                 gpu::Algorithm::kBitonic, gpu::Algorithm::kHybrid}) {
    auto r = gpu::TopK(dev, data.data(), data.size(), 32, a);
    ASSERT_TRUE(r.ok()) << gpu::AlgorithmName(a) << ": " << r.status();
    for (size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(r->items[i], ref[i]) << gpu::AlgorithmName(a);
    }
  }
}

TEST(DevicePortabilityTest, FasterDeviceIsFaster) {
  // Large enough that bandwidth dominates launch overheads and the
  // single-block final kernel.
  auto data = GenerateFloats(1 << 22, Distribution::kUniform, 32);
  simt::Device maxwell(simt::DeviceSpec::TitanXMaxwell());
  simt::Device pascal(simt::DeviceSpec::TeslaP100());
  maxwell.set_trace_sample_target(16);
  pascal.set_trace_sample_target(16);
  auto rm = gpu::BitonicTopK(maxwell, data.data(), data.size(), 32);
  auto rp = gpu::BitonicTopK(pascal, data.data(), data.size(), 32);
  ASSERT_TRUE(rm.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rm->items, rp->items) << "results must be device-independent";
  // ~3x the bandwidths should land in the 2x-4x speedup range.
  EXPECT_LT(rp->kernel_ms * 2.0, rm->kernel_ms);
  EXPECT_GT(rp->kernel_ms * 5.0, rm->kernel_ms);
}

TEST(DevicePortabilityTest, CostModelAndPlannerTransfer) {
  auto p100 = simt::DeviceSpec::TeslaP100();
  cost::Workload w{1ull << 29, 32, 4, 4, Distribution::kUniform};
  // Predictions scale with the new bandwidths...
  double maxwell_ms =
      cost::BitonicTopKCostMs(simt::DeviceSpec::TitanXMaxwell(), w);
  double pascal_ms = cost::BitonicTopKCostMs(p100, w);
  EXPECT_LT(pascal_ms, maxwell_ms / 2);
  // ...and the planner still produces the paper's qualitative choices.
  auto small_k = planner::PlanTopK(p100, w);
  ASSERT_TRUE(small_k.ok());
  EXPECT_EQ(small_k->best->name(), "BitonicTopK");
  cost::Workload big{1ull << 29, 1024, 4, 4, Distribution::kUniform};
  auto large_k = planner::PlanTopK(p100, big);
  ASSERT_TRUE(large_k.ok());
  EXPECT_EQ(large_k->best->name(), "RadixSelect");
}

TEST(DevicePortabilityTest, PerThreadLimitsFollowSharedMemory) {
  // The k=512 failure is a property of the 48 KiB/block limit, which P100
  // shares -> same boundary.
  simt::Device dev(simt::DeviceSpec::TeslaP100());
  auto data = GenerateFloats(1 << 14, Distribution::kUniform, 33);
  EXPECT_TRUE(
      gpu::PerThreadTopK(dev, data.data(), data.size(), 256).ok());
  EXPECT_FALSE(
      gpu::PerThreadTopK(dev, data.data(), data.size(), 512).ok());
}

}  // namespace
}  // namespace mptopk
