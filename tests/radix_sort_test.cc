// Dedicated tests for the LSD radix sort (the Sort baseline): full-array
// ordering, stability, and type coverage.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/distributions.h"
#include "gputopk/radix_sort.h"

namespace mptopk::gpu {
namespace {

template <typename E>
std::vector<E> SortOnDevice(const std::vector<E>& data) {
  simt::Device dev;
  auto in = dev.Alloc<E>(data.size()).value();
  dev.CopyToDevice(in, data.data(), data.size());
  auto out = dev.Alloc<E>(data.size()).value();
  EXPECT_TRUE(RadixSortDevice(dev, in, data.size(), &out).ok());
  std::vector<E> result(data.size());
  dev.CopyToHost(result.data(), out, data.size());
  return result;
}

TEST(RadixSortTest, SortsFloatsAscending) {
  auto data = GenerateFloats(100000, Distribution::kUniform, 3);
  auto sorted = SortOnDevice(data);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(RadixSortTest, SortsNegativeInts) {
  auto data = GenerateI32(1 << 15, Distribution::kUniform, 4);
  auto sorted = SortOnDevice(data);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(RadixSortTest, SortsDoublesEightPasses) {
  auto data = GenerateDoubles(1 << 14, Distribution::kUniform, 5);
  auto sorted = SortOnDevice(data);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(RadixSortTest, StableOnEqualKeys) {
  // Many duplicate keys with distinct payloads: LSD radix sort must keep
  // equal-key elements in input order.
  std::vector<KV> data(1 << 14);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = KV{static_cast<float>(i % 7), static_cast<uint32_t>(i)};
  }
  auto sorted = SortOnDevice(data);
  for (size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_LE(sorted[i - 1].key, sorted[i].key) << i;
    if (sorted[i - 1].key == sorted[i].key) {
      EXPECT_LT(sorted[i - 1].value, sorted[i].value)
          << "stability violated at " << i;
    }
  }
}

TEST(RadixSortTest, NonPowerOfTwoAndTinyInputs) {
  for (size_t n : {1, 2, 3, 100, 2049, 65537}) {
    auto data = GenerateFloats(n, Distribution::kUniform, n);
    auto sorted = SortOnDevice(data);
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end())) << "n=" << n;
  }
}

TEST(RadixSortTest, RejectsSmallOutputBuffer) {
  simt::Device dev;
  auto in = dev.Alloc<float>(100).value();
  auto out = dev.Alloc<float>(50).value();
  EXPECT_FALSE(RadixSortDevice(dev, in, 100, &out).ok());
}

}  // namespace
}  // namespace mptopk::gpu
