// Tests for the unified top-k operator registry (topk/registry.h): caps
// enforcement across every registered operator, name/alias resolution, the
// deprecated gpu::Algorithm shims, and the one-file extension contract — a
// dummy operator registered in this translation unit must show up in the
// registry, the GPU sweep and the planner ranking with no edits elsewhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/distributions.h"
#include "gputopk/topk.h"
#include "planner/plan_topk.h"
#include "topk/registry.h"

namespace mptopk {
namespace {

// --- The test-only dummy operator --------------------------------------------
// Registered from this file alone (acceptance criterion: zero edits outside
// it). Supports f32 only, delegates to the registered Sort operator, and
// carries a deliberately terrible cost model so it ranks but never wins.

double DummyCost(const simt::DeviceSpec&, const cost::Workload&) {
  return 1e9;
}

class DummyOperator final : public topk::TopKOperator {
 public:
  DummyOperator() : TopKOperator("TestDummy", Caps()) {}

 private:
  static topk::OperatorCaps Caps() {
    topk::OperatorCaps c;
    c.backend = topk::Backend::kGpuSim;
    c.elem_types = topk::ElemBit(topk::ElemType::kF32);
    c.cost_ms = &DummyCost;
    return c;
  }

  StatusOr<gpu::TopKResult<float>> RunDevice(const simt::ExecCtx& dev,
                                             simt::DeviceBuffer<float>& data,
                                             size_t n,
                                             size_t k) const override {
    MPTOPK_ASSIGN_OR_RETURN(const topk::TopKOperator* sort,
                            topk::FindOperator("Sort"));
    return sort->TopKDevice(dev, data, n, k);
  }
};

topk::OperatorRegistrar dummy_registrar(std::make_unique<DummyOperator>(),
                                        /*order=*/999, {"test_dummy"});

// -----------------------------------------------------------------------------

std::vector<const topk::TopKOperator*> AllOps() {
  return topk::Registry::Instance().All();
}

constexpr topk::ElemType kEveryElemType[] = {
    topk::ElemType::kF32,  topk::ElemType::kF64, topk::ElemType::kU32,
    topk::ElemType::kI32,  topk::ElemType::kU64, topk::ElemType::kI64,
    topk::ElemType::kKV,   topk::ElemType::kKV64, topk::ElemType::kKKV,
    topk::ElemType::kKKKV};

TEST(OperatorRegistryTest, RegisteredSetIsDocumentedOperatorsPlusDummy) {
  std::vector<std::string> names;
  for (const auto* op : AllOps()) names.push_back(op->name());
  const std::vector<std::string> expected = {
      "Sort",        "PerThreadTopK", "RadixSelect", "BucketSelect",
      "BitonicTopK", "HybridTopK",    "ChunkedTopK", "cpu:StlPq",
      "cpu:HandPq",  "cpu:Bitonic",   "TestDummy"};
  EXPECT_EQ(names, expected);
}

TEST(OperatorRegistryTest, UnsupportedElemTypeIsInvalidArgument) {
  for (const auto* op : AllOps()) {
    for (topk::ElemType t : kEveryElemType) {
      const bool supported =
          (op->caps().elem_types & topk::ElemBit(t)) != 0;
      Status st = op->CheckCaps(t, /*n=*/1024, /*k=*/8);
      if (supported) {
        EXPECT_TRUE(st.ok()) << op->name() << " " << ElemTypeName(t);
      } else {
        EXPECT_EQ(st.code(), StatusCode::kInvalidArgument)
            << op->name() << " " << ElemTypeName(t);
      }
    }
  }
  // Concrete calls, not just CheckCaps: a CPU operator fed a u64 buffer
  // and the f32-only dummy fed doubles must reject before running.
  std::vector<uint64_t> u64s(256, 1);
  simt::Device dev;
  auto cpu_op = topk::FindOperator("cpu_handpq");
  ASSERT_TRUE(cpu_op.ok());
  auto r1 = cpu_op.value()->TopKHost(dev, u64s.data(), u64s.size(), 4);
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  std::vector<double> f64s(256, 1.0);
  auto r2 = dummy_registrar.registered->TopKHost(dev, f64s.data(),
                                                 f64s.size(), 4);
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(OperatorRegistryTest, Pow2OnlyOperatorsRejectNonPow2K) {
  auto data = GenerateFloats(1024, Distribution::kUniform);
  int pow2_only_ops = 0;
  for (const auto* op : AllOps()) {
    if (!op->caps().pow2_k_only) continue;
    ++pow2_only_ops;
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), data.size(), 3);
    ASSERT_FALSE(r.ok()) << op->name();
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << op->name();
    // The nearest power of two must be accepted by the same caps check.
    EXPECT_TRUE(op->CheckCaps(topk::ElemType::kF32, data.size(), 4).ok())
        << op->name();
  }
  EXPECT_GE(pow2_only_ops, 1) << "cpu:Bitonic must declare pow2_k_only";
}

TEST(OperatorRegistryTest, KBeyondMaxKIsInvalidArgument) {
  int capped_ops = 0;
  for (const auto* op : AllOps()) {
    if (op->caps().max_k == 0) continue;
    ++capped_ops;
    const size_t bad_k = NextPowerOfTwo(op->caps().max_k + 1);
    const size_t n = bad_k * 4;
    auto data = GenerateFloats(n, Distribution::kUniform);
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), n, bad_k);
    ASSERT_FALSE(r.ok()) << op->name();
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << op->name();
  }
  EXPECT_GE(capped_ops, 1) << "cpu:Bitonic must declare max_k";
}

TEST(OperatorRegistryTest, KZeroAndKGreaterThanNAreInvalidForEveryOperator) {
  auto data = GenerateFloats(64, Distribution::kUniform);
  for (const auto* op : AllOps()) {
    EXPECT_EQ(op->CheckCaps(topk::ElemType::kF32, 64, 0).code(),
              StatusCode::kInvalidArgument)
        << op->name();
    EXPECT_EQ(op->CheckCaps(topk::ElemType::kF32, 64, 65).code(),
              StatusCode::kInvalidArgument)
        << op->name();
  }
}

TEST(OperatorRegistryTest, UnknownNameErrorListsRegisteredOperators) {
  auto r = topk::FindOperator("definitely_not_an_operator");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  const std::string msg = r.status().ToString();
  EXPECT_NE(msg.find("registered operators"), std::string::npos) << msg;
  for (const auto* op : AllOps()) {
    EXPECT_NE(msg.find(op->name()), std::string::npos)
        << msg << " missing " << op->name();
  }
}

TEST(OperatorRegistryTest, AliasesResolveCaseInsensitively) {
  const std::pair<const char*, const char*> cases[] = {
      {"sort", "Sort"},           {"perthread", "PerThreadTopK"},
      {"radix_select", "RadixSelect"}, {"bucket_select", "BucketSelect"},
      {"bitonic", "BitonicTopK"}, {"hybrid", "HybridTopK"},
      {"chunked", "ChunkedTopK"}, {"stlpq", "cpu:StlPq"},
      {"cpu_stlpq", "cpu:StlPq"}, {"handpq", "cpu:HandPq"},
      {"cpu_handpq", "cpu:HandPq"}, {"cpu_bitonic", "cpu:Bitonic"},
      {"BITONIC", "BitonicTopK"}, {"BitonicTopK", "BitonicTopK"},
      {"test_dummy", "TestDummy"}};
  for (const auto& [alias, canonical] : cases) {
    auto r = topk::FindOperator(alias);
    ASSERT_TRUE(r.ok()) << alias;
    EXPECT_EQ(r.value()->name(), canonical) << alias;
  }
}

TEST(OperatorRegistryTest, DeprecatedEnumShimsDelegateToRegistry) {
  // The enum parser is now a registry lookup restricted to the six
  // enum-addressable GPU algorithms.
  auto a = gpu::ParseAlgorithm("bitonic");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, gpu::Algorithm::kBitonic);
  EXPECT_STREQ(gpu::AlgorithmName(*a), "BitonicTopK");
  // Registered but not enum-addressable.
  EXPECT_FALSE(gpu::ParseAlgorithm("chunked").ok());
  // Unknown everywhere: the error carries the registered list.
  auto bad = gpu::ParseAlgorithm("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("registered operators"),
            std::string::npos);

  // The shimmed gpu::TopK must produce the same result as the operator.
  auto data = GenerateFloats(4096, Distribution::kUniform, 11);
  simt::Device d1, d2;
  auto via_enum =
      gpu::TopK(d1, data.data(), data.size(), 32, gpu::Algorithm::kBitonic);
  auto via_registry = topk::FindOperator("BitonicTopK")
                          .value()
                          ->TopKHost(d2, data.data(), data.size(), 32);
  ASSERT_TRUE(via_enum.ok());
  ASSERT_TRUE(via_registry.ok());
  EXPECT_EQ(via_enum->items, via_registry->items);
  EXPECT_EQ(via_enum->kernel_ms, via_registry->kernel_ms);
}

TEST(OperatorRegistryTest, DummyOperatorJoinsSweepAndPlannerRanking) {
  // Registry and sweep membership.
  auto all = AllOps();
  EXPECT_NE(std::find(all.begin(), all.end(), dummy_registrar.registered),
            all.end());
  auto sweep = topk::GpuSweepOperators();
  EXPECT_NE(std::find(sweep.begin(), sweep.end(),
                      dummy_registrar.registered),
            sweep.end());

  // Planner ranking: present (its cost hook ran) but never the best.
  auto plan = planner::PlanTopK(simt::DeviceSpec::TitanXMaxwell(),
                                cost::Workload{1 << 24, 64, 4, 4,
                                               Distribution::kUniform});
  ASSERT_TRUE(plan.ok());
  bool ranked = false;
  for (const auto& e : plan->ranked) {
    if (e.op == dummy_registrar.registered) {
      ranked = true;
      EXPECT_EQ(e.predicted_ms, 1e9);
    }
  }
  EXPECT_TRUE(ranked);
  EXPECT_NE(plan->best, dummy_registrar.registered);

  // And it actually runs (delegating to Sort).
  auto data = GenerateFloats(2048, Distribution::kUniform, 3);
  simt::Device dev;
  auto r = dummy_registrar.registered->TopKHost(dev, data.data(),
                                                data.size(), 16);
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<float> oracle = data;
  std::sort(oracle.begin(), oracle.end(), std::greater<float>());
  oracle.resize(16);
  EXPECT_EQ(r->items, oracle);
}

TEST(OperatorRegistryTest, FallbackChainsFollowCaps) {
  std::vector<std::string> chain;
  for (const auto* op : topk::CpuFallbackChain()) chain.push_back(op->name());
  EXPECT_EQ(chain, (std::vector<std::string>{"cpu:HandPq", "cpu:StlPq",
                                             "cpu:Bitonic"}));
  const auto* streaming = topk::StreamingFallback();
  ASSERT_NE(streaming, nullptr);
  EXPECT_EQ(streaming->name(), "ChunkedTopK");
  EXPECT_TRUE(streaming->caps().streams_host_input);
}

TEST(OperatorRegistryTest, CostHooksGateInfeasibleConfigurations) {
  const auto spec = simt::DeviceSpec::TitanXMaxwell();
  const cost::Workload small_k{1 << 24, 32, 4, 4, Distribution::kUniform};
  const cost::Workload huge_k{1 << 24, 512, 4, 4, Distribution::kUniform};
  auto per_thread = topk::FindOperator("PerThreadTopK").value();
  EXPECT_GT(per_thread->CostMs(spec, small_k), 0.0);
  EXPECT_LT(per_thread->CostMs(spec, huge_k), 0.0) << "k=512 must not fit";
  // CPU operators have no device cost model: never planner-rankable.
  auto cpu_op = topk::FindOperator("cpu:StlPq").value();
  EXPECT_LT(cpu_op->CostMs(spec, small_k), 0.0);
}

}  // namespace
}  // namespace mptopk
