// Tests for the hybrid CPU/GPU device-selection planner (paper Section 8
// future work).
#include <gtest/gtest.h>

#include "planner/hybrid.h"

namespace mptopk::planner {
namespace {

simt::DeviceSpec Gpu() { return simt::DeviceSpec::TitanXMaxwell(); }
CpuSpec Cpu() { return CpuSpec::PaperXeon(); }

cost::Workload W(size_t n, size_t k, Distribution d = Distribution::kUniform) {
  return cost::Workload{n, k, 4, 4, d};
}

TEST(HybridPlannerTest, DeviceResidentDataStaysOnGpu) {
  auto c = PlanHybridTopK(Gpu(), Cpu(), W(1ull << 28, 32),
                          PlacementInput::kDeviceResident);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->use_gpu);
  EXPECT_EQ(c->transfer_ms, 0.0);
}

TEST(HybridPlannerTest, HostResidentUniformPrefersCpu) {
  // Uniform data, one-shot use: PCIe staging alone exceeds the streaming
  // CPU heap cost (paper Section 1's motivation for on-GPU top-k: avoid
  // moving data, not move it in order to run top-k).
  auto c = PlanHybridTopK(Gpu(), Cpu(), W(1ull << 28, 32),
                          PlacementInput::kHostResident);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->use_gpu);
  EXPECT_GT(c->transfer_ms, c->cpu_ms * 0.5);
}

TEST(HybridPlannerTest, SortedInputPushesCpuTowardBitonic) {
  cpu::CpuAlgorithm best;
  double uniform =
      CpuTopKCostMs(Cpu(), W(1ull << 26, 256), &best);
  double sorted = CpuTopKCostMs(
      Cpu(), W(1ull << 26, 256, Distribution::kIncreasing), &best);
  EXPECT_GT(sorted, uniform);
  EXPECT_EQ(best, cpu::CpuAlgorithm::kBitonic)
      << "insert-per-element input should switch to data-oblivious bitonic";
}

TEST(HybridPlannerTest, GpuWinsOnSortedHostData) {
  // Fig 15b: on sorted input the GPU is 60-120x faster than CPU heaps --
  // worth the transfer.
  auto c = PlanHybridTopK(Gpu(), Cpu(),
                          W(1ull << 28, 32, Distribution::kIncreasing),
                          PlacementInput::kHostResident);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->use_gpu);
}

TEST(HybridPlannerTest, ComponentsAreConsistent) {
  auto c = PlanHybridTopK(Gpu(), Cpu(), W(1 << 24, 64),
                          PlacementInput::kHostResident);
  ASSERT_TRUE(c.ok());
  double gpu_total = c->gpu_kernel_ms + c->transfer_ms;
  EXPECT_DOUBLE_EQ(c->predicted_ms,
                   c->use_gpu ? gpu_total : c->cpu_ms);
  EXPECT_GT(c->cpu_ms, 0);
  EXPECT_GT(c->gpu_kernel_ms, 0);
}

TEST(HybridPlannerTest, RejectsBadWorkload) {
  EXPECT_FALSE(PlanHybridTopK(Gpu(), Cpu(), W(16, 32),
                              PlacementInput::kHostResident)
                   .ok());
}

}  // namespace
}  // namespace mptopk::planner
