// Tests for the SIMT device simulator: coalescing analysis, shared-memory
// bank-conflict analysis, divergence accounting, barriers, occupancy and the
// timing model.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "simt/device.h"

namespace mptopk::simt {
namespace {

Device MakeDevice() { return Device(DeviceSpec::TitanXMaxwell()); }

// --- Allocation ----------------------------------------------------------------

TEST(DeviceAllocTest, TracksCapacity) {
  Device dev = MakeDevice();
  auto a = dev.Alloc<float>(1000);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(dev.allocated_bytes(), 4000u);
  {
    auto b = dev.Alloc<double>(500);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(dev.allocated_bytes(), 8000u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 4000u);  // b released
}

TEST(DeviceAllocTest, ExhaustionIsReported) {
  DeviceSpec spec = DeviceSpec::TitanXMaxwell();
  spec.global_mem_bytes = 1024;
  Device dev((spec));
  auto a = dev.Alloc<float>(200);
  ASSERT_TRUE(a.ok());
  auto b = dev.Alloc<float>(200);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeviceAllocTest, DistinctDeviceAddresses) {
  Device dev = MakeDevice();
  auto a = dev.Alloc<float>(10).value();
  auto b = dev.Alloc<float>(10).value();
  EXPECT_NE(a.device_addr(), b.device_addr());
  EXPECT_GE(b.device_addr(), a.device_addr() + 40);
}

// --- Functional execution -------------------------------------------------------

TEST(LaunchTest, GridCopiesData) {
  Device dev = MakeDevice();
  const int n = 4096;
  auto in = dev.Alloc<int>(n).value();
  auto out = dev.Alloc<int>(n).value();
  std::iota(in.host_data(), in.host_data() + n, 0);

  GlobalSpan<int> gin(in), gout(out);
  auto stats = dev.Launch({.grid_dim = 16, .block_dim = 256}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) {
      size_t i = static_cast<size_t>(blk.block_idx()) * blk.block_dim() + t.tid;
      gout.Write(t, i, gin.Read(t, i) * 2);
    });
  });
  ASSERT_TRUE(stats.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out.host_data()[i], 2 * i);
  }
}

TEST(LaunchTest, SharedMemoryCommunicatesAcrossBarrier) {
  Device dev = MakeDevice();
  const int n = 256;
  auto out = dev.Alloc<int>(n).value();
  GlobalSpan<int> gout(out);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = n}, [&](Block& blk) {
    auto smem = blk.AllocShared<int>(n);
    blk.ForEachThread([&](Thread& t) { smem.Write(t, t.tid, t.tid); });
    blk.Sync();
    // Reverse through shared memory.
    blk.ForEachThread([&](Thread& t) {
      gout.Write(t, t.tid, smem.Read(t, n - 1 - t.tid));
    });
  });
  ASSERT_TRUE(stats.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out.host_data()[i], n - 1 - i);
  }
}

TEST(LaunchTest, SharedOverAllocationFails) {
  Device dev = MakeDevice();
  auto st = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.AllocShared<float>(64 * 1024 / 4 + 1);  // > 48 KiB? 64KiB+4B
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kResourceExhausted);
}

TEST(LaunchTest, AllocSharedAlignsTo16Bytes) {
  Device dev = MakeDevice();
  auto st = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto a = blk.AllocShared<char>(3);
    auto b = blk.AllocShared<float>(5);   // starts at the next 16B boundary
    auto c = blk.AllocShared<double>(1);  // 20B of floats -> boundary at 48
    EXPECT_EQ(a.base_offset(), 0u);
    EXPECT_EQ(b.base_offset(), 16u);
    EXPECT_EQ(c.base_offset(), 48u);
    EXPECT_EQ(blk.shared_bytes_used(), 56u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 16, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data()) % 16, 0u);
  });
  ASSERT_TRUE(st.ok());
}

TEST(LaunchTest, AllocSharedOverflowStaysAlignedAndSafe) {
  // An over-allocation must fail the launch with kResourceExhausted, but the
  // span handed back has to stay writable and 16-byte aligned so the rest of
  // the block body runs safely until the launcher checks the budget.
  Device dev = MakeDevice();
  const size_t huge = DeviceSpec::TitanXMaxwell().shared_mem_per_block / 4 + 8;
  auto st = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.AllocShared<char>(1);  // push the next offset off zero
    auto big = blk.AllocShared<float>(huge);
    EXPECT_EQ(big.base_offset(), 16u);
    EXPECT_EQ(blk.shared_bytes_used(), 16u + huge * 4);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(big.data()) % 16, 0u);
    big.data()[0] = 1.0f;  // memory-safe despite exceeding the arena
    big.data()[huge - 1] = 2.0f;
    EXPECT_EQ(big.data()[huge - 1], 2.0f);
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kResourceExhausted);
}

TEST(LaunchTest, BlockDimValidated) {
  Device dev = MakeDevice();
  auto st = dev.Launch({.grid_dim = 1, .block_dim = 2048}, [](Block&) {});
  EXPECT_FALSE(st.ok());
}

// --- Coalescing analysis --------------------------------------------------------

TEST(CoalescingTest, FullyCoalescedWarpIsFourSectors) {
  Device dev = MakeDevice();
  auto buf = dev.Alloc<float>(32).value();
  GlobalSpan<float> g(buf);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) { g.Read(t, t.tid); });
  });
  ASSERT_TRUE(stats.ok());
  // 32 lanes * 4B contiguous = 128B = 4 sectors of 32B.
  EXPECT_EQ(stats->metrics.global_transactions, 4u);
  EXPECT_EQ(stats->metrics.global_bytes, 128u);
  EXPECT_EQ(stats->metrics.global_useful_bytes, 128u);
  EXPECT_EQ(stats->metrics.warp_instructions, 1u);
}

TEST(CoalescingTest, StridedWarpWastesBandwidth) {
  Device dev = MakeDevice();
  auto buf = dev.Alloc<float>(32 * 32).value();
  GlobalSpan<float> g(buf);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) { g.Read(t, t.tid * 32); });
  });
  ASSERT_TRUE(stats.ok());
  // Each lane touches its own 32B sector: 32 transactions, 1 KiB moved for
  // 128 useful bytes.
  EXPECT_EQ(stats->metrics.global_transactions, 32u);
  EXPECT_EQ(stats->metrics.global_bytes, 1024u);
  EXPECT_EQ(stats->metrics.global_useful_bytes, 128u);
}

TEST(CoalescingTest, SameAddressReadsOneSector) {
  Device dev = MakeDevice();
  auto buf = dev.Alloc<float>(32).value();
  GlobalSpan<float> g(buf);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) { g.Read(t, 0); });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.global_transactions, 1u);
}

TEST(CoalescingTest, DoubleKeysCoalesceAcrossEightSectors) {
  Device dev = MakeDevice();
  auto buf = dev.Alloc<double>(32).value();
  GlobalSpan<double> g(buf);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) { g.Read(t, t.tid); });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.global_bytes, 256u);
  EXPECT_EQ(stats->metrics.global_useful_bytes, 256u);
}

// --- Bank conflict analysis ------------------------------------------------------

TEST(BankConflictTest, ConsecutiveWordsConflictFree) {
  Device dev = MakeDevice();
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<float>(64);
    blk.ForEachThread([&](Thread& t) { smem.Write(t, t.tid, 1.0f); });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.shared_cycles, 1u);
  EXPECT_EQ(stats->metrics.bank_conflict_cycles, 0u);
}

TEST(BankConflictTest, Stride32IsThirtyTwoWayConflict) {
  Device dev = MakeDevice();
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<float>(32 * 32);
    blk.ForEachThread([&](Thread& t) { smem.Write(t, t.tid * 32, 1.0f); });
  });
  ASSERT_TRUE(stats.ok());
  // All lanes hit bank 0 with distinct words: 32 replays.
  EXPECT_EQ(stats->metrics.shared_cycles, 32u);
  EXPECT_EQ(stats->metrics.bank_conflict_cycles, 31u);
}

TEST(BankConflictTest, Stride2IsTwoWayConflict) {
  Device dev = MakeDevice();
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<float>(64);
    blk.ForEachThread([&](Thread& t) { smem.Read(t, t.tid * 2); });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.shared_cycles, 2u);
  EXPECT_EQ(stats->metrics.bank_conflict_cycles, 1u);
}

TEST(BankConflictTest, BroadcastIsFree) {
  Device dev = MakeDevice();
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<float>(32);
    blk.ForEachThread([&](Thread& t) {
      (void)t;
      smem.Read(t, 5);  // all lanes, same word
    });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.shared_cycles, 1u);
  EXPECT_EQ(stats->metrics.bank_conflict_cycles, 0u);
}

TEST(BankConflictTest, PaddingBreaksColumnConflicts) {
  // Column access of a [32][32] matrix conflicts; padding to [32][33] fixes
  // it. This is precisely the paper's "Breaking Conflicts with Padding".
  Device dev = MakeDevice();
  auto unpadded = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<float>(32 * 32);
    blk.ForEachThread([&](Thread& t) { smem.Read(t, t.tid * 32 + 3); });
  });
  auto padded = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<float>(32 * 33);
    blk.ForEachThread([&](Thread& t) { smem.Read(t, t.tid * 33 + 3); });
  });
  ASSERT_TRUE(unpadded.ok());
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(unpadded->metrics.shared_cycles, 32u);
  EXPECT_EQ(padded->metrics.shared_cycles, 1u);
}

TEST(BankConflictTest, SameWordAtomicsAggregate) {
  // Same-word atomics within a warp are hardware-aggregated into one update
  // (plus the read-modify-write cycle); functional fetch-add values remain
  // per-lane unique.
  Device dev = MakeDevice();
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<uint32_t>(32);
    blk.ForEachThread([&](Thread& t) {
      (void)t;
      smem.AtomicAdd(t, 0, 1u);  // all lanes same counter
    });
    blk.ForEachThread([&](Thread& t) {
      if (t.tid == 0) {
        EXPECT_EQ(smem.Read(t, 0), 32u);
      }
    });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.shared_atomic_cycles, 2u);
}

TEST(BankConflictTest, DistinctWordAtomicsOnOneBankReplay) {
  Device dev = MakeDevice();
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<uint32_t>(32 * 32);
    blk.ForEachThread([&](Thread& t) {
      smem.AtomicAdd(t, t.tid * 32, 1u);  // all lanes bank 0, distinct words
    });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.shared_atomic_cycles, 33u);  // 32 replays + RMW
}

// --- Divergence & barriers -------------------------------------------------------

TEST(DivergenceTest, RaggedAccessCountsIdleLanes) {
  Device dev = MakeDevice();
  auto buf = dev.Alloc<float>(1024).value();
  GlobalSpan<float> g(buf);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) {
      // Lane 0 does 4 accesses, everyone else 1: three warp instructions
      // run with a single active lane.
      int reps = t.tid == 0 ? 4 : 1;
      for (int r = 0; r < reps; ++r) g.Read(t, t.tid + 32 * r);
    });
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->metrics.warp_instructions, 4u);
  EXPECT_EQ(stats->metrics.divergent_lane_slots, 3u * 31u);
}

TEST(BarrierTest, EpochsDoNotMergeAcrossSync) {
  Device dev = MakeDevice();
  // Region 1: lane 0 accesses twice; region 2: all lanes access once. With
  // epoch alignment region 2 must be exactly one warp instruction, not merge
  // into lane 0's leftover sequence slot.
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    auto smem = blk.AllocShared<float>(128);
    blk.ForEachThread([&](Thread& t) {
      smem.Write(t, t.tid, 0.f);
      if (t.tid == 0) smem.Write(t, 64, 0.f);
    });
    blk.Sync();
    blk.ForEachThread([&](Thread& t) { smem.Read(t, t.tid); });
  });
  ASSERT_TRUE(stats.ok());
  // warp instructions: region1 = 2 (full write + lone write), region2 = 1.
  EXPECT_EQ(stats->metrics.warp_instructions, 3u);
  EXPECT_EQ(stats->metrics.shared_cycles, 3u);
}

// --- Sampling ----------------------------------------------------------------------

TEST(SamplingTest, SampledMetricsMatchFullTrace) {
  const int kGrid = 64;
  auto run = [&](int sample_target) {
    Device dev = MakeDevice();
    dev.set_trace_sample_target(sample_target);
    auto buf = dev.Alloc<float>(kGrid * 256).value();
    GlobalSpan<float> g(buf);
    auto stats = dev.Launch({.grid_dim = kGrid, .block_dim = 256},
                            [&](Block& blk) {
      blk.ForEachThread([&](Thread& t) {
        size_t i =
            static_cast<size_t>(blk.block_idx()) * blk.block_dim() + t.tid;
        g.Write(t, i, 1.0f);
      });
    });
    return stats->metrics;
  };
  KernelMetrics full = run(0);
  KernelMetrics sampled = run(8);
  EXPECT_EQ(full.global_bytes, sampled.global_bytes);
  EXPECT_EQ(full.global_transactions, sampled.global_transactions);
  EXPECT_LT(sampled.blocks_traced, full.blocks_traced);
}

// --- Occupancy / timing --------------------------------------------------------------

TEST(OccupancyTest, SharedMemoryLimitsResidency) {
  DeviceSpec spec = DeviceSpec::TitanXMaxwell();
  // 32 KiB per block -> 3 blocks/SM on 96 KiB.
  Occupancy occ = ComputeOccupancy(
      spec, KernelResources{.grid_dim = 1000, .block_dim = 256,
                            .regs_per_thread = 32,
                            .shared_bytes_per_block = 32 * 1024});
  EXPECT_EQ(occ.blocks_per_sm, 3);
  EXPECT_EQ(occ.warps_per_sm, 24);
  EXPECT_DOUBLE_EQ(occ.bw_efficiency, 1.0);
}

TEST(OccupancyTest, TinyBlocksWithHugeSharedStarveBandwidth) {
  DeviceSpec spec = DeviceSpec::TitanXMaxwell();
  // The per-thread top-k regime at k=256: 32-thread blocks with 32 KiB each.
  Occupancy occ = ComputeOccupancy(
      spec, KernelResources{.grid_dim = 1000, .block_dim = 32,
                            .regs_per_thread = 32,
                            .shared_bytes_per_block = 32 * 1024});
  EXPECT_EQ(occ.blocks_per_sm, 3);
  EXPECT_EQ(occ.warps_per_sm, 3);
  EXPECT_LT(occ.bw_efficiency, 0.25);
}

TEST(OccupancyTest, RegisterPressureLimitsResidency) {
  DeviceSpec spec = DeviceSpec::TitanXMaxwell();
  Occupancy light = ComputeOccupancy(
      spec, KernelResources{.grid_dim = 1000, .block_dim = 256,
                            .regs_per_thread = 32,
                            .shared_bytes_per_block = 0});
  Occupancy heavy = ComputeOccupancy(
      spec, KernelResources{.grid_dim = 1000, .block_dim = 256,
                            .regs_per_thread = 128,
                            .shared_bytes_per_block = 0});
  EXPECT_GT(light.warps_per_sm, heavy.warps_per_sm);
}

TEST(TimingTest, GlobalBoundKernelMatchesBandwidthFloor) {
  // Reading D bytes perfectly coalesced at full occupancy should take
  // ~D / 251 GBps.
  Device dev = MakeDevice();
  const int grid = 256, block = 256;
  const size_t n = static_cast<size_t>(grid) * block * 4;  // 4 floats/thread
  auto buf = dev.Alloc<float>(n).value();
  auto out = dev.Alloc<float>(grid).value();
  GlobalSpan<float> g(buf), go(out);
  auto stats = dev.Launch({.grid_dim = grid, .block_dim = block},
                          [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) {
      float acc = 0;
      for (int r = 0; r < 4; ++r) {
        size_t i = (static_cast<size_t>(blk.block_idx()) * blk.block_dim()) *
                       4 + r * blk.block_dim() + t.tid;
        acc += g.Read(t, i);
      }
      if (t.tid == 0) go.Write(t, blk.block_idx(), acc);
    });
  });
  ASSERT_TRUE(stats.ok());
  double expect_ms = static_cast<double>(n * 4) / (251.0 * 1e9) * 1e3;
  EXPECT_NEAR(stats->time.global_ms, expect_ms, expect_ms * 0.05);
  EXPECT_GE(stats->time.total_ms, stats->time.global_ms);
}

TEST(TimingTest, DeviceAccumulatesAcrossLaunches) {
  Device dev = MakeDevice();
  auto buf = dev.Alloc<float>(1024).value();
  GlobalSpan<float> g(buf);
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(dev.Launch({.grid_dim = 4, .block_dim = 256}, [&](Block& blk) {
      blk.ForEachThread([&](Thread& t) {
        g.Write(t, (blk.block_idx() * blk.block_dim() + t.tid) % 1024, 0.f);
      });
    }).ok());
  }
  EXPECT_EQ(dev.kernel_log().size(), 3u);
  EXPECT_GT(dev.total_sim_ms(), 0.0);
  dev.ResetAccounting();
  EXPECT_EQ(dev.total_sim_ms(), 0.0);
  EXPECT_TRUE(dev.kernel_log().empty());
}

TEST(TimingTest, PcieStagingAccounted) {
  Device dev = MakeDevice();
  auto buf = dev.Alloc<float>(1 << 20).value();
  std::vector<float> host(1 << 20, 1.0f);
  dev.CopyToDevice(buf, host.data(), host.size());
  double expect_ms = (4.0 * (1 << 20)) / (12.0 * 1e9) * 1e3;
  EXPECT_NEAR(dev.pcie_ms(), expect_ms, expect_ms * 0.01);
}

}  // namespace
}  // namespace mptopk::simt
