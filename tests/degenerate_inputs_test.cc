// Degenerate-input coverage across every registered top-k operator (GPU
// algorithms, chunked, and the CPU baselines enumerate from
// topk::Registry::All()): k = 0, k = n, k > n, n = 0, all-duplicate keys,
// and NaN / +-Inf keys. The NaN contract (common/key_transform.h) is
// enforced here: every operator must agree that all NaNs are equal and
// rank above +Inf. Operators whose capability descriptor rules out a
// configuration (pow2-only k, max_k) are skipped in the positive tests
// and must reject cleanly in the negative ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distributions.h"
#include "common/key_transform.h"
#include "cputopk/cpu_topk.h"
#include "topk/registry.h"

namespace mptopk {
namespace {

std::vector<const topk::TopKOperator*> AllOps() {
  return topk::Registry::Instance().All();
}

// Reference top-k under the library's one true ordering (ordered bits, so
// NaN-safe): descending, ties kept.
std::vector<uint32_t> ReferenceOrderedBits(const std::vector<float>& data,
                                           size_t k) {
  std::vector<float> ref = data;
  std::sort(ref.begin(), ref.end(),
            [](float a, float b) { return OrderedLess(b, a); });
  ref.resize(std::min(ref.size(), k));
  std::vector<uint32_t> bits;
  for (float v : ref) bits.push_back(KeyTraits<float>::ToOrderedBits(v));
  return bits;
}

std::vector<uint32_t> ToBits(const std::vector<float>& items) {
  std::vector<uint32_t> bits;
  for (float v : items) bits.push_back(KeyTraits<float>::ToOrderedBits(v));
  return bits;
}

TEST(DegenerateInputsTest, KZeroRejectedEverywhere) {
  auto data = GenerateFloats(1024, Distribution::kUniform);
  for (const auto* op : AllOps()) {
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), data.size(), 0);
    ASSERT_FALSE(r.ok()) << op->name();
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << op->name();
  }
}

TEST(DegenerateInputsTest, NZeroRejectedEverywhere) {
  float dummy = 0.0f;
  for (const auto* op : AllOps()) {
    simt::Device dev;
    auto r = op->TopKHost(dev, &dummy, 0, 4);
    EXPECT_FALSE(r.ok()) << op->name();
  }
}

TEST(DegenerateInputsTest, KGreaterThanNRejectedEverywhere) {
  auto data = GenerateFloats(256, Distribution::kUniform);
  for (const auto* op : AllOps()) {
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), data.size(), 257);
    ASSERT_FALSE(r.ok()) << op->name();
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << op->name();
  }
}

TEST(DegenerateInputsTest, KEqualsNReturnsFullSort) {
  const size_t n = 64;
  auto data = GenerateFloats(n, Distribution::kUniform);
  const auto ref = ReferenceOrderedBits(data, n);
  int ran = 0;
  for (const auto* op : AllOps()) {
    if (!op->CheckCaps(topk::ElemType::kF32, n, n).ok()) continue;
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), n, n);
    if (!r.ok()) {
      // Per-thread heaps may exceed shared memory at k = n — a documented
      // feasibility limit (paper Section 4.1), reported as a clean error.
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << op->name() << ": " << r.status();
      continue;
    }
    EXPECT_EQ(ToBits(r->items), ref) << op->name();
    ++ran;
  }
  EXPECT_GE(ran, 8) << "caps must not exclude feasible configurations";
}

TEST(DegenerateInputsTest, AllDuplicateKeys) {
  const size_t n = 4096;
  const size_t k = 16;
  std::vector<float> data(n, 7.5f);
  for (const auto* op : AllOps()) {
    ASSERT_TRUE(op->CheckCaps(topk::ElemType::kF32, n, k).ok()) << op->name();
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), n, k);
    ASSERT_TRUE(r.ok()) << op->name() << ": " << r.status();
    ASSERT_EQ(r->items.size(), k) << op->name();
    for (float v : r->items) EXPECT_EQ(v, 7.5f) << op->name();
  }
}

// The consistency contract: every operator — selection-based (which ranks
// through ordered bits) and comparison-based (which ranks through
// ElementTraits::Less) — must agree on inputs containing NaN and +-Inf.
TEST(DegenerateInputsTest, NanAndInfinityOrderingIsConsistent) {
  const size_t n = 4096;
  const size_t k = 8;
  auto data = GenerateFloats(n, Distribution::kUniform);
  data[17] = std::numeric_limits<float>::quiet_NaN();
  data[101] = -std::numeric_limits<float>::quiet_NaN();  // sign/payload vary
  data[1023] = std::nanf("0x42");
  data[5] = std::numeric_limits<float>::infinity();
  data[4000] = -std::numeric_limits<float>::infinity();

  const auto ref = ReferenceOrderedBits(data, k);
  // The contract itself: three NaNs first (all equal, greatest), +Inf next.
  ASSERT_EQ(ref[0], KeyTraits<float>::ToOrderedBits(
                        std::numeric_limits<float>::quiet_NaN()));
  ASSERT_EQ(ref[0], ref[1]);
  ASSERT_EQ(ref[1], ref[2]);
  ASSERT_EQ(ref[3], KeyTraits<float>::ToOrderedBits(
                        std::numeric_limits<float>::infinity()));

  for (const auto* op : AllOps()) {
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), n, k);
    ASSERT_TRUE(r.ok()) << op->name() << ": " << r.status();
    EXPECT_EQ(ToBits(r->items), ref) << op->name();
    EXPECT_TRUE(IsNanKey(r->items[0])) << op->name();
    EXPECT_TRUE(std::isinf(r->items[3])) << op->name();
  }
}

TEST(DegenerateInputsTest, NanOrderingHoldsForDouble) {
  const size_t n = 2048;
  const size_t k = 4;
  std::vector<double> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<double>(i) * 0.25;
  data[99] = std::numeric_limits<double>::quiet_NaN();
  data[100] = std::numeric_limits<double>::infinity();

  simt::Device dev;
  auto g = topk::FindOperator("BitonicTopK")
               .value()
               ->TopKHost(dev, data.data(), n, k);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_TRUE(IsNanKey(g->items[0]));
  EXPECT_TRUE(std::isinf(g->items[1]));

  auto c = cpu::CpuTopK(data.data(), n, k, cpu::CpuAlgorithm::kBitonic);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_TRUE(IsNanKey(c->items[0]));
  EXPECT_TRUE(std::isinf(c->items[1]));
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(KeyTraits<double>::ToOrderedBits(g->items[i]),
              KeyTraits<double>::ToOrderedBits(c->items[i]));
  }
}

// All-NaN input: still returns k items, all NaN, from every operator.
TEST(DegenerateInputsTest, AllNanInput) {
  const size_t n = 2048;
  const size_t k = 8;
  std::vector<float> data(n, std::numeric_limits<float>::quiet_NaN());
  for (const auto* op : AllOps()) {
    simt::Device dev;
    auto r = op->TopKHost(dev, data.data(), n, k);
    ASSERT_TRUE(r.ok()) << op->name() << ": " << r.status();
    ASSERT_EQ(r->items.size(), k) << op->name();
    for (float v : r->items) EXPECT_TRUE(IsNanKey(v)) << op->name();
  }
}

}  // namespace
}  // namespace mptopk
