// Property tests for the bitonic step sequences and the register-window
// planner (shared by the kernels and the cost model).
#include <gtest/gtest.h>

#include <set>

#include "common/bits.h"
#include "gputopk/bitonic_plan.h"

namespace mptopk::gpu {
namespace {

// --- Step sequences -----------------------------------------------------------

TEST(BitonicStepsTest, LocalSortStepCount) {
  // k = 2^p: phases 1..p with 1..p steps -> p(p+1)/2 total.
  for (uint32_t p = 1; p <= 10; ++p) {
    auto steps = BitonicLocalSortSteps(1u << p);
    EXPECT_EQ(steps.size(), p * (p + 1) / 2) << "k=2^" << p;
  }
  EXPECT_TRUE(BitonicLocalSortSteps(1).empty());
}

TEST(BitonicStepsTest, RebuildStepCount) {
  for (uint32_t p = 1; p <= 10; ++p) {
    auto steps = BitonicRebuildSteps(1u << p);
    EXPECT_EQ(steps.size(), p);
    for (const auto& s : steps) {
      EXPECT_EQ(s.dir, 1u << p);
    }
  }
  EXPECT_TRUE(BitonicRebuildSteps(1).empty());
}

TEST(BitonicStepsTest, DistancesDescendWithinPhases) {
  auto steps = BitonicLocalSortSteps(64);
  for (size_t i = 1; i < steps.size(); ++i) {
    if (steps[i].dir == steps[i - 1].dir) {
      EXPECT_EQ(steps[i].inc, steps[i - 1].inc >> 1);
    } else {
      EXPECT_EQ(steps[i].dir, steps[i - 1].dir << 1);
      EXPECT_EQ(steps[i].inc, steps[i].dir >> 1);
    }
  }
}

// --- Window planner -------------------------------------------------------------

class WindowPlanTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>> {};

TEST_P(WindowPlanTest, PreservesStepsInOrderWithinBudget) {
  auto [k, wb] = GetParam();
  for (const auto& steps :
       {BitonicLocalSortSteps(k), BitonicRebuildSteps(k)}) {
    auto windows = PlanBitonicWindows(steps, wb);
    // Flattening the windows must reproduce the steps exactly, in order.
    std::vector<BitonicStep> flat;
    for (const auto& w : windows) {
      EXPECT_LE(w.hi_bit - w.lo_bit + 1, std::max(1, wb))
          << "window width over budget";
      EXPECT_LE(w.group_size(), 1 << std::max(1, wb));
      for (const auto& s : w.steps) {
        int bit = Log2Floor(s.inc);
        EXPECT_GE(bit, w.lo_bit);
        EXPECT_LE(bit, w.hi_bit);
        flat.push_back(s);
      }
    }
    ASSERT_EQ(flat.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
      EXPECT_EQ(flat[i].inc, steps[i].inc) << i;
      EXPECT_EQ(flat[i].dir, steps[i].dir) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndBudget, WindowPlanTest,
    ::testing::Combine(::testing::Values(2u, 8u, 32u, 256u, 1024u),
                       ::testing::Values(1, 2, 3, 4, 6)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_wb" +
             std::to_string(std::get<1>(info.param));
    });

TEST(WindowPlanTest, EarlyPhasesAbsorbIntoOneWindow) {
  // Local sort of k=16 with budget 4 is one 16-element window: the whole
  // per-thread chunk sorts in registers (paper: B=16 per thread).
  auto windows = PlanBitonicWindows(BitonicLocalSortSteps(16), 4);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].lo_bit, 0);
  EXPECT_EQ(windows[0].hi_bit, 3);
  EXPECT_EQ(windows[0].steps.size(), 10u);
}

TEST(WindowPlanTest, FullWindowsEndAtDistanceOne) {
  // Low-aligned split: the final window of each descending run must be
  // contiguous (lo_bit == 0) so it is conflict-free under padding.
  auto windows = PlanBitonicWindows(BitonicRebuildSteps(256), 4);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].lo_bit, 4);  // strided lead window
  EXPECT_EQ(windows[0].hi_bit, 7);
  EXPECT_TRUE(windows[0].strided());
  EXPECT_EQ(windows[1].lo_bit, 0);  // contiguous bulk window
  EXPECT_FALSE(windows[1].strided());
}

TEST(WindowPlanTest, BudgetOneDegeneratesToSingleSteps) {
  auto steps = BitonicLocalSortSteps(64);
  auto windows = PlanBitonicWindows(steps, 1);
  ASSERT_EQ(windows.size(), steps.size());
  for (const auto& w : windows) {
    EXPECT_EQ(w.group_size(), 2);
  }
}

}  // namespace
}  // namespace mptopk::gpu
