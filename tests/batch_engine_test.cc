// engine::BatchExecutor: batched execution across streams must be a pure
// scheduling change — per-query results bit-identical to the legacy
// sequential path — while the simulated makespan beats the serialized sum
// and allocator pooling keeps the peak below the no-reuse baseline. A fault
// recovered by one query's resilient executor must not corrupt its peers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/batch.h"
#include "engine/query.h"
#include "engine/tweets.h"
#include "simt/fault_injection.h"

namespace mptopk::engine {
namespace {

constexpr size_t kRows = 1 << 14;
constexpr uint64_t kSeed = 123;
constexpr int kBatch = 16;

// The same Q1..Q4 shapes bench_engine --batch uses, cycled to length n.
std::vector<BatchQuery> MakeMix(int n) {
  const Ranking by_retweets{{{"retweet_count", 1.0}}};
  std::vector<BatchQuery> qs;
  for (int i = 0; i < n; ++i) {
    BatchQuery q;
    switch (i % 4) {
      case 0:
        q.label = "q1";
        q.filter = Filter{{{"tweet_time", CompareOp::kLt,
                            0.5 * kTweetTimeRange}}};
        q.ranking = by_retweets;
        q.k = 50;
        break;
      case 1:
        q.label = "q2";
        q.ranking = Ranking{{{"retweet_count", 1.0}, {"likes_count", 0.5}}};
        q.k = 64;
        break;
      case 2:
        q.label = "q3";
        q.filter = Filter{{{"lang", CompareOp::kEq, kLangEn},
                           {"lang", CompareOp::kEq, kLangEs}}};
        q.ranking = by_retweets;
        q.k = 64;
        q.strategy = TopKStrategy::kFilterBitonic;
        break;
      default:
        q.label = "q4";
        q.kind = BatchQuery::Kind::kGroupByCount;
        q.group_column = "uid";
        q.k = 50;
        break;
    }
    qs.push_back(std::move(q));
  }
  return qs;
}

struct SequentialRef {
  std::vector<QueryResult> filter_results;   // indexed like the mix
  std::vector<GroupByResult> group_results;  // empty slots for filter items
};

// Legacy path: each query one at a time on the default stream.
SequentialRef RunSequential(Table& table, const std::vector<BatchQuery>& mix) {
  SequentialRef ref;
  ref.filter_results.resize(mix.size());
  ref.group_results.resize(mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    const BatchQuery& q = mix[i];
    if (q.kind == BatchQuery::Kind::kFilterTopK) {
      auto r = FilterTopKQuery(table, q.filter, q.ranking, q.id_column, q.k,
                               q.strategy, q.exec);
      EXPECT_TRUE(r.ok()) << r.status();
      if (r.ok()) ref.filter_results[i] = std::move(r).value();
    } else {
      auto r = GroupByCountTopKQuery(table, q.group_column, q.k,
                                     q.groupby_strategy, q.exec);
      EXPECT_TRUE(r.ok()) << r.status();
      if (r.ok()) ref.group_results[i] = std::move(r).value();
    }
  }
  return ref;
}

void ExpectItemMatchesRef(const BatchItemReport& item, const BatchQuery& q,
                          const SequentialRef& ref, size_t i) {
  if (q.kind == BatchQuery::Kind::kFilterTopK) {
    EXPECT_EQ(item.result.ids, ref.filter_results[i].ids) << q.label;
    EXPECT_EQ(item.result.rank_values, ref.filter_results[i].rank_values)
        << q.label;
    EXPECT_EQ(item.result.matched_rows, ref.filter_results[i].matched_rows);
  } else {
    EXPECT_EQ(item.group_result.keys, ref.group_results[i].keys) << q.label;
    EXPECT_EQ(item.group_result.counts, ref.group_results[i].counts);
    EXPECT_EQ(item.group_result.num_groups, ref.group_results[i].num_groups);
  }
}

TEST(BatchEngineTest, SixteenQueriesBitIdenticalToSequential) {
  auto mix = MakeMix(kBatch);

  // Reference: a fresh device + same-seed table, queries run one by one.
  simt::Device ref_dev;
  auto ref_table = MakeTweetsTable(&ref_dev, kRows, kSeed).value();
  SequentialRef ref = RunSequential(*ref_table, mix);

  simt::Device dev;
  auto table = MakeTweetsTable(&dev, kRows, kSeed).value();
  BatchExecutor exec(*table, /*num_streams=*/4);
  auto rep_or = exec.Execute(mix);
  ASSERT_TRUE(rep_or.ok()) << rep_or.status();
  const BatchReport& rep = rep_or.value();

  ASSERT_EQ(rep.items.size(), mix.size());
  EXPECT_EQ(rep.failed, 0);
  for (size_t i = 0; i < mix.size(); ++i) {
    ASSERT_TRUE(rep.items[i].status.ok()) << rep.items[i].status;
    ExpectItemMatchesRef(rep.items[i], mix[i], ref, i);
  }

  // Streams overlap: the simulated makespan must beat the serialized sum.
  EXPECT_GT(rep.serialized_sum_ms, 0.0);
  EXPECT_LT(rep.makespan_ms, rep.serialized_sum_ms);
  EXPECT_GT(rep.queries_per_sec, 0.0);
  // Per-query arenas saw traffic and the pool recycled between queries.
  EXPECT_GT(rep.pool_reuse_count, 0u);
  for (const auto& item : rep.items) {
    EXPECT_GT(item.arena_peak_bytes, 0u) << item.label;
  }
}

TEST(BatchEngineTest, SingleStreamBatchMakespanEqualsSum) {
  simt::Device dev;
  auto table = MakeTweetsTable(&dev, kRows, kSeed).value();
  BatchExecutor exec(*table, /*num_streams=*/1);
  auto rep = exec.Execute(MakeMix(8));
  ASSERT_TRUE(rep.ok()) << rep.status();
  EXPECT_EQ(rep->failed, 0);
  EXPECT_NEAR(rep->makespan_ms, rep->serialized_sum_ms,
              1e-9 * rep->serialized_sum_ms);
}

TEST(BatchEngineTest, PoolingBeatsNoReuseBaseline) {
  auto mix = MakeMix(kBatch);

  simt::Device pooled_dev;
  auto pooled_table = MakeTweetsTable(&pooled_dev, kRows, kSeed).value();
  BatchExecutor pooled(*pooled_table, 4);
  auto pooled_rep = pooled.Execute(mix);
  ASSERT_TRUE(pooled_rep.ok()) << pooled_rep.status();

  simt::Device raw_dev;
  raw_dev.set_pooling(false);
  auto raw_table = MakeTweetsTable(&raw_dev, kRows, kSeed).value();
  BatchExecutor raw(*raw_table, 4);
  auto raw_rep = raw.Execute(mix);
  ASSERT_TRUE(raw_rep.ok()) << raw_rep.status();

  EXPECT_EQ(pooled_rep->failed, 0);
  EXPECT_EQ(raw_rep->failed, 0);
  // Pooling reclaims per-query scratch, so the high-water mark stays
  // strictly below the never-freed baseline.
  EXPECT_LT(pooled_rep->peak_allocated_bytes, raw_rep->peak_allocated_bytes);
  EXPECT_GT(pooled_rep->pool_reuse_count, 0u);
  EXPECT_EQ(raw_rep->pool_reuse_count, 0u);
}

TEST(BatchEngineTest, ResilientRecoveryDoesNotCorruptPeers) {
  auto mix = MakeMix(kBatch);
  for (auto& q : mix) q.exec.resilient = true;

  // Clean reference with the same resilient options.
  simt::Device ref_dev;
  auto ref_table = MakeTweetsTable(&ref_dev, kRows, kSeed).value();
  SequentialRef ref = RunSequential(*ref_table, mix);

  simt::Device dev;
  auto table = MakeTweetsTable(&dev, kRows, kSeed).value();
  // Arm a one-shot launch abort that fires inside the batch (the table is
  // staged before the plan is installed, so launch #3 lands in an early
  // query's kernel sequence).
  simt::FaultPlanConfig cfg;
  cfg.seed = kSeed;
  cfg.fail_launch_index = 3;
  auto plan = std::make_shared<simt::FaultPlan>(cfg);
  dev.set_fault_plan(plan);

  BatchExecutor exec(*table, 4);
  auto rep_or = exec.Execute(mix);
  ASSERT_TRUE(rep_or.ok()) << rep_or.status();
  const BatchReport& rep = rep_or.value();
  EXPECT_EQ(plan->stats().launches_aborted, 1);

  // The fault may fail one query (if it hit an unrecoverable stage) or be
  // absorbed by the resilient top-k executor; either way every successful
  // item must be bit-identical to the clean sequential reference.
  EXPECT_LE(rep.failed, 1);
  for (size_t i = 0; i < mix.size(); ++i) {
    if (!rep.items[i].status.ok()) continue;
    ExpectItemMatchesRef(rep.items[i], mix[i], ref, i);
  }
  // At least 15 of the 16 queries survive the fault untouched.
  EXPECT_GE(static_cast<int>(mix.size()) - rep.failed, kBatch - 1);
}

}  // namespace
}  // namespace mptopk::engine
