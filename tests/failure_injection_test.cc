// Failure-injection tests, built on the deterministic FaultPlan hooks
// (simt/fault_injection.h): injected faults must surface as Status errors —
// never crashes, leaks or silent corruption — and the resilient executor
// (planner/resilient.h) must convert every faulted run back into a correct
// top-k answer with bit-for-bit reproducible decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/distributions.h"
#include "engine/query.h"
#include "engine/tweets.h"
#include "gputopk/chunked.h"
#include "gputopk/topk.h"
#include "planner/resilient.h"

namespace mptopk {
namespace {

using gpu::Algorithm;
using gpu::AlgorithmName;
using simt::FaultPlan;
using simt::FaultPlanConfig;

std::vector<float> TopKReference(const std::vector<float>& data, size_t k) {
  std::vector<float> ref = data;
  std::sort(ref.begin(), ref.end(), std::greater<float>());
  ref.resize(std::min(ref.size(), k));
  return ref;
}

simt::DeviceSpec TinyMemorySpec(size_t bytes) {
  auto spec = simt::DeviceSpec::TitanXMaxwell();
  spec.global_mem_bytes = bytes;
  return spec;
}

std::shared_ptr<FaultPlan> Install(simt::Device& dev,
                                   const FaultPlanConfig& cfg) {
  auto plan = std::make_shared<FaultPlan>(cfg);
  dev.set_fault_plan(plan);
  return plan;
}

// --- FaultPlan unit behaviour ----------------------------------------------

TEST(FaultPlanTest, NthAllocationFailsOnce) {
  FaultPlanConfig cfg;
  cfg.fail_alloc_index = 2;
  FaultPlan plan(cfg);
  EXPECT_TRUE(plan.OnAlloc(100).ok());
  Status st = plan.OnAlloc(100);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(plan.OnAlloc(100).ok());  // one-shot: later allocs succeed
  EXPECT_EQ(plan.stats().allocs_seen, 3);
  EXPECT_EQ(plan.stats().allocs_failed, 1);
}

TEST(FaultPlanTest, AllocAboveThresholdFailsPersistently) {
  FaultPlanConfig cfg;
  cfg.fail_alloc_above_bytes = 4096;
  FaultPlan plan(cfg);
  EXPECT_TRUE(plan.OnAlloc(4096).ok());
  EXPECT_EQ(plan.OnAlloc(4097).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(plan.OnAlloc(1 << 20).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(plan.stats().allocs_failed, 2);
}

TEST(FaultPlanTest, NthTransferIsUnavailableAndRetryable) {
  FaultPlanConfig cfg;
  cfg.fail_transfer_index = 1;
  FaultPlan plan(cfg);
  Status st = plan.OnTransfer(64, /*readback=*/false);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(st.IsRetryable());
  // The retry advances the counter past the one-shot trigger.
  EXPECT_TRUE(plan.OnTransfer(64, /*readback=*/false).ok());
  EXPECT_EQ(plan.stats().transfers_seen, 2);
  EXPECT_EQ(plan.stats().transfers_failed, 1);
}

TEST(FaultPlanTest, NthLaunchAborts) {
  FaultPlanConfig cfg;
  cfg.fail_launch_index = 3;
  FaultPlan plan(cfg);
  EXPECT_TRUE(plan.OnLaunch("a").ok());
  EXPECT_TRUE(plan.OnLaunch("b").ok());
  EXPECT_EQ(plan.OnLaunch("c").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(plan.OnLaunch("d").ok());
  EXPECT_EQ(plan.stats().launches_aborted, 1);
}

TEST(FaultPlanTest, ResetRearmsOneShotTriggers) {
  FaultPlanConfig cfg;
  cfg.fail_alloc_index = 1;
  FaultPlan plan(cfg);
  EXPECT_FALSE(plan.OnAlloc(8).ok());
  EXPECT_TRUE(plan.OnAlloc(8).ok());
  plan.Reset();
  EXPECT_EQ(plan.stats().allocs_seen, 0);
  EXPECT_FALSE(plan.OnAlloc(8).ok());  // fires again
}

TEST(FaultPlanTest, ProbabilisticFaultsAreSeedDeterministic) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.transient_transfer_prob = 0.5;
  FaultPlan a(cfg), b(cfg);
  cfg.seed = 8;
  FaultPlan c(cfg);
  std::vector<bool> sa, sb, sc;
  for (int i = 0; i < 100; ++i) {
    sa.push_back(a.OnTransfer(64, false).ok());
    sb.push_back(b.OnTransfer(64, false).ok());
    sc.push_back(c.OnTransfer(64, false).ok());
  }
  EXPECT_EQ(sa, sb);  // same seed, same fault sequence
  EXPECT_NE(sa, sc);  // different seed decorrelates
}

TEST(FaultPlanTest, CorruptReadbackFlipsExactlyOneBit) {
  simt::Device dev;
  const size_t n = 64;
  std::vector<uint32_t> zeros(n, 0);
  auto buf = dev.Alloc<uint32_t>(n).value();
  ASSERT_TRUE(dev.CopyToDevice(buf, zeros.data(), n).ok());
  FaultPlanConfig cfg;
  cfg.seed = 3;
  cfg.corrupt_readback_index = 1;
  auto plan = Install(dev, cfg);
  std::vector<uint32_t> host(n, 0);
  ASSERT_TRUE(dev.CopyToHost(host.data(), buf, n).ok());
  int set_bits = 0;
  for (uint32_t w : host) set_bits += __builtin_popcount(w);
  EXPECT_EQ(set_bits, 1);
  EXPECT_EQ(plan->stats().corruptions, 1);
  // Subsequent readbacks are clean (one-shot).
  ASSERT_TRUE(dev.CopyToHost(host.data(), buf, n).ok());
  set_bits = 0;
  for (uint32_t w : host) set_bits += __builtin_popcount(w);
  EXPECT_EQ(set_bits, 0);
}

// --- Device OOM propagation (pre-FaultPlan behaviour must still hold) -------

TEST(FailureInjectionTest, BitonicPropagatesDeviceOom) {
  const size_t n = 1 << 16;
  simt::Device dev(TinyMemorySpec(n * sizeof(float) + 1024));
  auto data = GenerateFloats(n, Distribution::kUniform);
  auto buf = dev.Alloc<float>(n);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(dev.CopyToDevice(*buf, data.data(), n).ok());
  auto r = gpu::BitonicTopKDevice(dev, *buf, n, 32);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, AllocationReleasedAfterFailure) {
  const size_t n = 1 << 16;
  simt::Device dev(TinyMemorySpec(n * sizeof(float) + 2048));
  auto data = GenerateFloats(n, Distribution::kUniform);
  size_t before = dev.allocated_bytes();
  {
    auto buf = dev.Alloc<float>(n);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE(dev.CopyToDevice(*buf, data.data(), n).ok());
    auto r = gpu::BitonicTopKDevice(dev, *buf, n, 32);
    ASSERT_FALSE(r.ok());  // reduction buffers do not fit
  }
  // RAII must return every byte, so the device is reusable.
  EXPECT_EQ(dev.allocated_bytes(), before);
  auto r2 = gpu::TopK(dev, data.data(), 256, 8);
  EXPECT_TRUE(r2.ok()) << r2.status();
}

// --- Scripted fault campaign ------------------------------------------------

// For every algorithm, fail each of its internal allocations in turn. Every
// run must either succeed with a correct answer or return a non-OK Status,
// and the device must get every byte back (no leak across the failure path).
TEST(FaultCampaignTest, AllocSweepEveryAlgorithm) {
  const size_t n = 1 << 14;
  const size_t k = 32;
  auto data = GenerateFloats(n, Distribution::kUniform);
  const auto ref = TopKReference(data, k);
  for (Algorithm algo :
       {Algorithm::kSort, Algorithm::kPerThread, Algorithm::kRadixSelect,
        Algorithm::kBucketSelect, Algorithm::kBitonic, Algorithm::kHybrid}) {
    // Calibrate: count the algorithm's allocations under a no-fault plan.
    int allocs = 0;
    {
      simt::Device dev;
      auto buf = dev.Alloc<float>(n).value();
      ASSERT_TRUE(dev.CopyToDevice(buf, data.data(), n).ok());
      auto plan = Install(dev, FaultPlanConfig{});
      auto r = gpu::TopKDevice(dev, buf, n, k, algo);
      ASSERT_TRUE(r.ok()) << AlgorithmName(algo) << ": " << r.status();
      allocs = plan->stats().allocs_seen;
    }
    ASSERT_GT(allocs, 0) << AlgorithmName(algo);
    for (int i = 1; i <= allocs; ++i) {
      simt::Device dev;
      auto buf = dev.Alloc<float>(n).value();
      ASSERT_TRUE(dev.CopyToDevice(buf, data.data(), n).ok());
      FaultPlanConfig cfg;
      cfg.fail_alloc_index = i;
      Install(dev, cfg);
      const size_t before = dev.allocated_bytes();
      auto r = gpu::TopKDevice(dev, buf, n, k, algo);
      if (r.ok()) {
        ASSERT_EQ(r->items.size(), k) << AlgorithmName(algo) << " alloc " << i;
        EXPECT_EQ(r->items.front(), ref.front());
      } else {
        EXPECT_FALSE(r.status().message().empty());
      }
      EXPECT_EQ(dev.allocated_bytes(), before)
          << AlgorithmName(algo) << " leaked after failing alloc " << i;
    }
  }
}

// The resilient executor must convert each of those faulted runs into the
// correct answer (fallback to another algorithm, degrade, or CPU).
TEST(FaultCampaignTest, ResilientConvertsEveryAllocFault) {
  const size_t n = 1 << 14;
  const size_t k = 32;
  auto data = GenerateFloats(n, Distribution::kUniform);
  const auto ref = TopKReference(data, k);
  for (int i = 1; i <= 12; ++i) {
    simt::Device dev;
    FaultPlanConfig cfg;
    cfg.fail_alloc_index = i;
    Install(dev, cfg);
    auto r = planner::ResilientTopK(dev, data.data(), n, k);
    ASSERT_TRUE(r.ok()) << "failing alloc " << i << ": " << r.status();
    ASSERT_EQ(r->items.size(), k);
    for (size_t j = 0; j < k; ++j) {
      EXPECT_EQ(r->items[j], ref[j]) << "failing alloc " << i;
    }
    EXPECT_EQ(dev.allocated_bytes(), 0u) << "failing alloc " << i;
  }
}

// --- Resilient executor behaviour -------------------------------------------

TEST(ResilientTopKTest, NoFaultNoOverheadDecisions) {
  const size_t n = 1 << 14;
  const size_t k = 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device dev;
  auto r = planner::ResilientTopK(dev, data.data(), n, k);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->report.retries, 0);
  EXPECT_EQ(r->report.fallbacks, 0);
  EXPECT_EQ(r->report.faults_seen, 0);
  EXPECT_FALSE(r->report.used_cpu);
  EXPECT_FALSE(r->report.degraded_to_chunked);
  EXPECT_EQ(r->report.added_latency_ms, 0.0);
  EXPECT_EQ(r->items, TopKReference(data, k));
}

TEST(ResilientTopKTest, TransientTransferFaultIsRetried) {
  const size_t n = 1 << 14;
  const size_t k = 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device dev;
  FaultPlanConfig cfg;
  cfg.fail_transfer_index = 2;  // #1 stages the input; #2 is in-algorithm
  Install(dev, cfg);
  auto r = planner::ResilientTopK(dev, data.data(), n, k);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->report.retries, 1);
  EXPECT_EQ(r->report.faults_seen, 1);
  EXPECT_GT(r->report.backoff_ms, 0.0);
  EXPECT_GT(r->report.added_latency_ms, 0.0);
  EXPECT_EQ(r->items, TopKReference(data, k));
}

TEST(ResilientTopKTest, LaunchAbortIsRetried) {
  const size_t n = 1 << 14;
  const size_t k = 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device dev;
  FaultPlanConfig cfg;
  cfg.fail_launch_index = 1;
  Install(dev, cfg);
  auto r = planner::ResilientTopK(dev, data.data(), n, k);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(r->report.retries, 1);
  EXPECT_EQ(r->items, TopKReference(data, k));
}

TEST(ResilientTopKTest, PersistentExhaustionFallsBackToCpu) {
  const size_t n = 1 << 14;
  const size_t k = 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device dev;
  FaultPlanConfig cfg;
  cfg.fail_alloc_above_bytes = 4096;  // no working buffer fits anywhere
  Install(dev, cfg);
  auto r = planner::ResilientTopK(dev, data.data(), n, k);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->report.used_cpu);
  EXPECT_EQ(r->report.final_algorithm, "cpu:HandPq");
  EXPECT_GE(r->report.fallbacks, 2);  // chunked, then CPU
  EXPECT_EQ(r->items, TopKReference(data, k));
}

TEST(ResilientTopKTest, OversizedInputDegradesToChunked) {
  const size_t n = 1 << 17;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device dev(TinyMemorySpec(n * sizeof(float)));  // no headroom
  dev.set_trace_sample_target(4);
  auto r = planner::ResilientTopK(dev, data.data(), n, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->report.degraded_to_chunked);
  EXPECT_EQ(r->report.final_algorithm, "ChunkedTopK");
  EXPECT_FALSE(r->report.used_cpu);
  EXPECT_EQ(r->items, TopKReference(data, 64));
}

TEST(ResilientTopKTest, CorruptedResultReadbackIsCaughtAndRerun) {
  const size_t n = 1 << 14;
  const size_t k = 8;
  auto data = GenerateFloats(n, Distribution::kUniform);
  planner::ResilienceOptions opts;
  opts.verify_samples = static_cast<int>(k);
  // Calibrate: how many readbacks does a clean resilient run perform? The
  // last one carries the result.
  int readbacks = 0;
  {
    simt::Device dev;
    auto buf = dev.Alloc<float>(n).value();
    ASSERT_TRUE(dev.CopyToDevice(buf, data.data(), n).ok());
    auto plan = Install(dev, FaultPlanConfig{});
    auto r = planner::ResilientTopKDevice(dev, buf, n, k, opts);
    ASSERT_TRUE(r.ok()) << r.status();
    readbacks = plan->stats().readbacks_seen;
  }
  ASSERT_GT(readbacks, 0);
  // Re-run, flipping one bit of the result readback.
  simt::Device dev;
  auto buf = dev.Alloc<float>(n).value();
  ASSERT_TRUE(dev.CopyToDevice(buf, data.data(), n).ok());
  FaultPlanConfig cfg;
  cfg.seed = 1;
  cfg.corrupt_readback_index = readbacks;
  auto plan = Install(dev, cfg);
  auto r = planner::ResilientTopKDevice(dev, buf, n, k, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(plan->stats().corruptions, 1);
  EXPECT_EQ(r->report.corruption_reruns, 1);
  EXPECT_GT(r->report.added_latency_ms, 0.0);
  EXPECT_EQ(r->items, TopKReference(data, k));
}

TEST(ResilientTopKTest, SameSeedIsBitForBitDeterministic) {
  const size_t n = 1 << 14;
  const size_t k = 16;
  auto data = GenerateFloats(n, Distribution::kUniform);
  auto run = [&]() {
    simt::Device dev;
    FaultPlanConfig cfg;
    cfg.seed = 42;
    cfg.transient_transfer_prob = 0.25;
    cfg.fail_launch_index = 2;
    Install(dev, cfg);
    auto r = planner::ResilientTopK(dev, data.data(), n, k);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.items, b.items);
  ASSERT_EQ(a.report.attempts.size(), b.report.attempts.size());
  for (size_t i = 0; i < a.report.attempts.size(); ++i) {
    EXPECT_EQ(a.report.attempts[i].stage, b.report.attempts[i].stage);
    EXPECT_EQ(a.report.attempts[i].code, b.report.attempts[i].code);
    EXPECT_EQ(a.report.attempts[i].backoff_ms, b.report.attempts[i].backoff_ms);
  }
  EXPECT_EQ(a.report.retries, b.report.retries);
  EXPECT_EQ(a.report.fallbacks, b.report.fallbacks);
  EXPECT_EQ(a.report.final_algorithm, b.report.final_algorithm);
  // Bit-for-bit: simulated latency, not approximately equal.
  EXPECT_EQ(a.report.backoff_ms, b.report.backoff_ms);
  EXPECT_EQ(a.report.total_device_ms, b.report.total_device_ms);
  EXPECT_EQ(a.report.added_latency_ms, b.report.added_latency_ms);
  EXPECT_EQ(a.report.Summary(), b.report.Summary());
}

// --- Engine routing ----------------------------------------------------------

TEST(EngineResilienceTest, ResilientFlagMatchesDirectExecution) {
  simt::Device dev;
  auto table = engine::MakeTweetsTable(&dev, 1 << 14, 7).value();
  engine::Filter f{{"tweet_time", engine::CompareOp::kLt, 1 << 13}};
  engine::Ranking rank{{{"retweet_count", 1.0}, {"likes_count", 0.5}}};
  auto direct = engine::FilterTopKQuery(*table, f, rank, "id", 10,
                                        engine::TopKStrategy::kFilterBitonic);
  ASSERT_TRUE(direct.ok()) << direct.status();
  engine::ExecOptions exec;
  exec.resilient = true;
  auto res = engine::FilterTopKQuery(*table, f, rank, "id", 10,
                                     engine::TopKStrategy::kFilterBitonic,
                                     exec);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->rank_values, direct->rank_values);
  EXPECT_FALSE(res->resilience_summary.empty());

  auto gdirect = engine::GroupByCountTopKQuery(*table, "lang", 5,
                                               engine::GroupByStrategy::kSort);
  ASSERT_TRUE(gdirect.ok()) << gdirect.status();
  auto gres = engine::GroupByCountTopKQuery(
      *table, "lang", 5, engine::GroupByStrategy::kSort, exec);
  ASSERT_TRUE(gres.ok()) << gres.status();
  EXPECT_EQ(gres->counts, gdirect->counts);
  EXPECT_FALSE(gres->resilience_summary.empty());
}

// --- StatusOr hardening (release builds must abort, not read garbage) --------

#if GTEST_HAS_DEATH_TEST
TEST(StatusOrDeathTest, ValueOnErrorAbortsWithMessage) {
  StatusOr<int> s(Status::Internal("boom"));
  EXPECT_DEATH({ (void)s.value(); }, "boom");
}
#endif

}  // namespace
}  // namespace mptopk
