// Failure-injection tests: resource exhaustion and degenerate inputs must
// surface as Status errors (never crashes or silent corruption), matching
// the library's errors-are-values contract.
#include <gtest/gtest.h>

#include "common/distributions.h"
#include "gputopk/chunked.h"
#include "gputopk/topk.h"

namespace mptopk::gpu {
namespace {

simt::DeviceSpec TinyMemorySpec(size_t bytes) {
  auto spec = simt::DeviceSpec::TitanXMaxwell();
  spec.global_mem_bytes = bytes;
  return spec;
}

TEST(FailureInjectionTest, BitonicPropagatesDeviceOom) {
  // Enough memory for the input but not the reduction buffers.
  const size_t n = 1 << 16;
  simt::Device dev(TinyMemorySpec(n * sizeof(float) + 1024));
  auto data = GenerateFloats(n, Distribution::kUniform);
  auto buf = dev.Alloc<float>(n);
  ASSERT_TRUE(buf.ok());
  dev.CopyToDevice(*buf, data.data(), n);
  auto r = BitonicTopKDevice(dev, *buf, n, 32);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, SortPropagatesDeviceOom) {
  const size_t n = 1 << 16;
  simt::Device dev(TinyMemorySpec(n * sizeof(float) + 1024));
  auto buf = dev.Alloc<float>(n);
  ASSERT_TRUE(buf.ok());
  auto r = SortTopKDevice(dev, *buf, n, 32);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, RadixSelectPropagatesDeviceOom) {
  const size_t n = 1 << 16;
  simt::Device dev(TinyMemorySpec(n * sizeof(float) + 1024));
  auto buf = dev.Alloc<float>(n);
  ASSERT_TRUE(buf.ok());
  auto r = RadixSelectTopKDevice(dev, *buf, n, 32);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, AllocationReleasedAfterFailure) {
  const size_t n = 1 << 16;
  // Room for the input plus a sliver -- the bitonic reduction buffers
  // (~n/16 + n/256 elements) do not fit.
  simt::Device dev(TinyMemorySpec(n * sizeof(float) + 2048));
  auto data = GenerateFloats(n, Distribution::kUniform);
  size_t before = dev.allocated_bytes();
  {
    auto buf = dev.Alloc<float>(n);
    ASSERT_TRUE(buf.ok());
    dev.CopyToDevice(*buf, data.data(), n);
    auto r = BitonicTopKDevice(dev, *buf, n, 32);
    ASSERT_FALSE(r.ok());  // reduction buffers do not fit
  }
  // RAII must return every byte, so the device is reusable.
  EXPECT_EQ(dev.allocated_bytes(), before);
  auto r2 = TopK(dev, data.data(), 256, 8);
  EXPECT_TRUE(r2.ok()) << r2.status();
}

TEST(FailureInjectionTest, AllSentinelValuedInput) {
  // Inputs consisting of the sentinel value itself still return k items
  // with correct keys.
  std::vector<float> data(4096, KeyTraits<float>::Lowest());
  simt::Device dev;
  auto r = TopK(dev, data.data(), data.size(), 16);
  ASSERT_TRUE(r.ok());
  for (float v : r->items) {
    EXPECT_EQ(v, KeyTraits<float>::Lowest());
  }
}

TEST(FailureInjectionTest, ExtremeValuesSurvive) {
  auto data = GenerateFloats(1 << 14, Distribution::kUniform);
  data[17] = 3.0e38f;
  data[4242] = -3.0e38f;
  data[99] = 0.0f;
  data[100] = -0.0f;
  for (auto algo : {Algorithm::kBitonic, Algorithm::kRadixSelect,
                    Algorithm::kBucketSelect, Algorithm::kSort,
                    Algorithm::kPerThread}) {
    simt::Device dev;
    auto r = TopK(dev, data.data(), data.size(), 4, algo);
    ASSERT_TRUE(r.ok()) << AlgorithmName(algo);
    EXPECT_EQ(r->items.front(), 3.0e38f) << AlgorithmName(algo);
  }
}

TEST(FailureInjectionTest, ChunkedSurvivesTinyChunks) {
  auto data = GenerateFloats(10000, Distribution::kUniform);
  simt::Device dev;
  // chunk_elems below 2k is clamped up.
  auto r = ChunkedTopK(dev, data.data(), data.size(), 64, 1);
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<float> ref = data;
  std::sort(ref.begin(), ref.end(), std::greater<float>());
  EXPECT_EQ(r->items.front(), ref.front());
}

}  // namespace
}  // namespace mptopk::gpu
