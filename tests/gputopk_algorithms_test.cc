// Cross-algorithm correctness tests: Sort, PerThread, RadixSelect,
// BucketSelect and the TopK dispatcher, over k x distribution x type sweeps.
// All algorithms must agree with the host reference (primary-key multiset).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/distributions.h"
#include "gputopk/topk.h"

namespace mptopk::gpu {
namespace {

template <typename E>
std::vector<typename ElementTraits<E>::Key> ReferenceKeys(std::vector<E> data,
                                                          size_t k) {
  std::sort(data.begin(), data.end(),
            [](const E& a, const E& b) { return ElementTraits<E>::Less(b, a); });
  std::vector<typename ElementTraits<E>::Key> keys(k);
  for (size_t i = 0; i < k; ++i) keys[i] = ElementTraits<E>::PrimaryKey(data[i]);
  return keys;
}

template <typename E>
void CheckKeys(const TopKResult<E>& got, const std::vector<E>& data,
               size_t k) {
  auto expect = ReferenceKeys(data, k);
  ASSERT_EQ(got.items.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(ElementTraits<E>::PrimaryKey(got.items[i]), expect[i])
        << "rank " << i;
  }
}

struct AlgoCase {
  Algorithm algo;
  size_t k;
  Distribution dist;
};

class AlgoSweepTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(AlgoSweepTest, MatchesReference) {
  auto [algo, k, dist] = GetParam();
  auto data =
      GenerateFloats(1 << 16, dist, /*seed=*/k * 31 + static_cast<int>(algo));
  simt::Device dev;
  auto r = TopK(dev, data.data(), data.size(), k, algo);
  ASSERT_TRUE(r.ok()) << r.status();
  CheckKeys(*r, data, k);
}

std::vector<AlgoCase> AllCases() {
  std::vector<AlgoCase> cases;
  for (Algorithm a : {Algorithm::kSort, Algorithm::kPerThread,
                      Algorithm::kRadixSelect, Algorithm::kBucketSelect,
                      Algorithm::kBitonic}) {
    for (size_t k : {1, 2, 7, 32, 100, 256}) {
      cases.push_back({a, k, Distribution::kUniform});
    }
    cases.push_back({a, 32, Distribution::kIncreasing});
    cases.push_back({a, 32, Distribution::kDecreasing});
    cases.push_back({a, 32, Distribution::kBucketKiller});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, AlgoSweepTest, ::testing::ValuesIn(AllCases()),
    [](const auto& info) {
      return std::string(AlgorithmName(info.param.algo)) + "_k" +
             std::to_string(info.param.k) + "_" +
             DistributionName(info.param.dist);
    });

// --- Type coverage ---------------------------------------------------------

template <typename E>
void TypeCase(const std::vector<E>& data, size_t k) {
  for (Algorithm a : {Algorithm::kSort, Algorithm::kRadixSelect,
                      Algorithm::kBucketSelect, Algorithm::kPerThread,
                      Algorithm::kBitonic}) {
    simt::Device dev;
    auto r = TopK(dev, data.data(), data.size(), k, a);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a) << ": " << r.status();
    CheckKeys(*r, data, k);
  }
}

TEST(AlgoTypesTest, U32) { TypeCase(GenerateU32(1 << 15, Distribution::kUniform), 64); }
TEST(AlgoTypesTest, I32) { TypeCase(GenerateI32(1 << 15, Distribution::kUniform), 64); }
TEST(AlgoTypesTest, F64) { TypeCase(GenerateDoubles(1 << 15, Distribution::kUniform), 64); }

TEST(AlgoTypesTest, KVPayloadSurvivesAllAlgorithms) {
  auto keys = GenerateFloats(1 << 14, Distribution::kUniform);
  std::vector<KV> data(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    data[i] = KV{keys[i], static_cast<uint32_t>(i)};
  }
  for (Algorithm a : {Algorithm::kSort, Algorithm::kRadixSelect,
                      Algorithm::kBucketSelect, Algorithm::kPerThread,
                      Algorithm::kBitonic}) {
    simt::Device dev;
    auto r = TopK(dev, data.data(), data.size(), 32, a);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a) << ": " << r.status();
    // Keys unique -> the payload must identify the original element.
    for (const KV& kv : r->items) {
      EXPECT_EQ(data[kv.value].key, kv.key) << AlgorithmName(a);
    }
  }
}

// --- Paper resource-limit behaviour (Section 4.1 / 6.2) --------------------

TEST(PerThreadLimitsTest, FailsAtK512Floats) {
  simt::Device dev;
  auto data = GenerateFloats(1 << 16, Distribution::kUniform);
  auto r = PerThreadTopK(dev, data.data(), data.size(), 512);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(PerThreadLimitsTest, FailsAtK256Doubles) {
  simt::Device dev;
  auto data = GenerateDoubles(1 << 15, Distribution::kUniform);
  EXPECT_TRUE(PerThreadTopK(dev, data.data(), data.size(), 128).ok());
  auto r = PerThreadTopK(dev, data.data(), data.size(), 256);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(PerThreadLimitsTest, K256FloatsStillWorks) {
  simt::Device dev;
  auto data = GenerateFloats(1 << 16, Distribution::kUniform);
  auto r = PerThreadTopK(dev, data.data(), data.size(), 256);
  ASSERT_TRUE(r.ok()) << r.status();
  CheckKeys(*r, data, 256);
}

// --- Register variant (Appendix A) ------------------------------------------

TEST(PerThreadRegistersTest, CorrectAcrossK) {
  auto data = GenerateFloats(1 << 16, Distribution::kUniform, 11);
  for (size_t k : {8, 32, 64}) {
    simt::Device dev;
    PerThreadOptions o;
    o.use_registers = true;
    auto r = PerThreadTopK(dev, data.data(), data.size(), k, o);
    ASSERT_TRUE(r.ok()) << r.status();
    CheckKeys(*r, data, k);
  }
}

TEST(PerThreadRegistersTest, SpillsBillLocalTraffic) {
  auto data = GenerateFloats(1 << 16, Distribution::kUniform, 11);
  PerThreadOptions o;
  o.use_registers = true;
  simt::Device small, large;
  ASSERT_TRUE(PerThreadTopK(small, data.data(), data.size(), 32, o).ok());
  ASSERT_TRUE(PerThreadTopK(large, data.data(), data.size(), 128, o).ok());
  EXPECT_EQ(small.total_metrics().local_bytes, 0u)
      << "k=32 fits the register budget";
  EXPECT_GT(large.total_metrics().local_bytes, 0u)
      << "k=128 must spill to local memory";
}

// --- Performance shape checks (paper Section 6) -----------------------------

TEST(AlgoShapeTest, SortIsFlatInK) {
  auto data = GenerateFloats(1 << 18, Distribution::kUniform);
  double t32, t256;
  {
    simt::Device dev;
    t32 = SortTopK(dev, data.data(), data.size(), 32)->kernel_ms;
  }
  {
    simt::Device dev;
    t256 = SortTopK(dev, data.data(), data.size(), 256)->kernel_ms;
  }
  EXPECT_NEAR(t32, t256, t32 * 0.02);
}

TEST(AlgoShapeTest, BitonicBeatsSortAtSmallK) {
  auto data = GenerateFloats(1 << 20, Distribution::kUniform);
  simt::Device d1, d2;
  double bitonic = BitonicTopK(d1, data.data(), data.size(), 32)->kernel_ms;
  double sort = SortTopK(d2, data.data(), data.size(), 32)->kernel_ms;
  EXPECT_LT(bitonic * 4, sort) << "paper reports up to 15x";
}

TEST(AlgoShapeTest, RadixSelectFasterOnUniformIntsThanFloats) {
  // Uniform u32 keys give maximal per-pass reduction on the first digit;
  // U(0,1) floats concentrate in few exponent buckets (paper Section 6.3).
  const size_t n = 1 << 20;
  simt::Device d1, d2;
  auto f = GenerateFloats(n, Distribution::kUniform);
  auto u = GenerateU32(n, Distribution::kUniform);
  double tf = RadixSelectTopK(d1, f.data(), n, 64)->kernel_ms;
  double tu = RadixSelectTopK(d2, u.data(), n, 64)->kernel_ms;
  EXPECT_LT(tu, tf);
}

TEST(AlgoShapeTest, BucketKillerDegradesRadixSelectToSortCost) {
  const size_t n = 1 << 20;
  simt::Device d1, d2, d3;
  auto killer = GenerateFloats(n, Distribution::kBucketKiller);
  auto uniform = GenerateFloats(n, Distribution::kUniform);
  double t_killer = RadixSelectTopK(d1, killer.data(), n, 32)->kernel_ms;
  double t_uniform = RadixSelectTopK(d2, uniform.data(), n, 32)->kernel_ms;
  EXPECT_GT(t_killer, t_uniform * 1.5);
  // And bitonic is unaffected (data-oblivious).
  double t_bitonic = BitonicTopK(d3, killer.data(), n, 32)->kernel_ms;
  EXPECT_LT(t_bitonic, t_killer);
}

TEST(AlgoShapeTest, BucketSelectFastAtK1) {
  const size_t n = 1 << 20;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device d1, d2;
  double t1 = BucketSelectTopK(d1, data.data(), n, 1)->kernel_ms;
  double t64 = BucketSelectTopK(d2, data.data(), n, 64)->kernel_ms;
  EXPECT_LT(t1, t64 * 0.7) << "k=1 returns right after min/max";
}

TEST(AlgoShapeTest, PerThreadOccupancyCliffAtLargeK) {
  const size_t n = 1 << 20;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device d1, d2;
  double t16 = PerThreadTopK(d1, data.data(), n, 16)->kernel_ms;
  double t256 = PerThreadTopK(d2, data.data(), n, 256)->kernel_ms;
  EXPECT_GT(t256, t16 * 2) << "shared-memory occupancy loss (paper Fig 11a)";
}

}  // namespace
}  // namespace mptopk::gpu
