// Property-based differential campaign: a seeded generator sweeps
// n x k x distribution (uniform / zipf / all-equal / sorted / reverse-sorted
// / NaN-Inf mix) across every GPU algorithm, the sampling hybrid, the
// chunked executor and the CPU backends. Each run is checked against a
// std::partial_sort-style host oracle under the library's one true ordering
// (ordered bits, NaN-safe) and all backends are cross-checked pairwise.
// Every failure message carries the reproducing case seed.
//
// The campaign runs >= 200 cases per algorithm in Release; under
// MPTOPK_RACECHECK=1 (the CI racecheck legs) sizes and case counts are
// capped so the checker's per-block analysis stays within budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/distributions.h"
#include "common/key_transform.h"
#include "cputopk/cpu_topk.h"
#include "gputopk/chunked.h"
#include "gputopk/topk.h"
#include "simt/device.h"
#include "simt/racecheck.h"

namespace mptopk {
namespace {

using gpu::Algorithm;
using gpu::AlgorithmName;
using cpu::CpuAlgorithm;
using cpu::CpuAlgorithmName;

enum class Dist {
  kUniform,
  kZipf,
  kAllEqual,
  kSorted,
  kReverseSorted,
  kNanInfMix,
};
constexpr Dist kAllDists[] = {Dist::kUniform,  Dist::kZipf,
                              Dist::kAllEqual, Dist::kSorted,
                              Dist::kReverseSorted, Dist::kNanInfMix};

const char* DistName(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kZipf: return "zipf";
    case Dist::kAllEqual: return "all-equal";
    case Dist::kSorted: return "sorted";
    case Dist::kReverseSorted: return "reverse-sorted";
    case Dist::kNanInfMix: return "nan-inf-mix";
  }
  return "?";
}

std::vector<float> Generate(Dist d, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uni(-1000.0f, 1000.0f);
  std::vector<float> v(n);
  switch (d) {
    case Dist::kUniform:
      for (auto& x : v) x = uni(rng);
      break;
    case Dist::kZipf: {
      // Zipf-ish heavy tail: value ~ 1/rank^1.07, ranks shuffled.
      for (size_t i = 0; i < n; ++i) {
        v[i] = 1e6f / std::pow(static_cast<float>(i + 1), 1.07f);
      }
      std::shuffle(v.begin(), v.end(), rng);
      break;
    }
    case Dist::kAllEqual:
      std::fill(v.begin(), v.end(), uni(rng));
      break;
    case Dist::kSorted:
      for (auto& x : v) x = uni(rng);
      std::sort(v.begin(), v.end());
      break;
    case Dist::kReverseSorted:
      for (auto& x : v) x = uni(rng);
      std::sort(v.begin(), v.end(), std::greater<float>());
      break;
    case Dist::kNanInfMix: {
      std::uniform_int_distribution<int> coin(0, 9);
      const float inf = std::numeric_limits<float>::infinity();
      const float nan = std::numeric_limits<float>::quiet_NaN();
      for (auto& x : v) {
        switch (coin(rng)) {
          case 0: x = nan; break;
          case 1: x = inf; break;
          case 2: x = -inf; break;
          case 3: x = -0.0f; break;
          case 4: x = std::numeric_limits<float>::denorm_min(); break;
          default: x = uni(rng); break;
        }
      }
      break;
    }
  }
  return v;
}

// The one true ordering: descending by ordered bits (every NaN maps to the
// greatest key — common/key_transform.h).
std::vector<uint32_t> OracleBits(const std::vector<float>& data, size_t k) {
  std::vector<uint32_t> bits(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    bits[i] = KeyTraits<float>::ToOrderedBits(data[i]);
  }
  const size_t kk = std::min(k, bits.size());
  std::partial_sort(bits.begin(), bits.begin() + kk, bits.end(),
                    std::greater<uint32_t>());
  bits.resize(kk);
  return bits;
}

std::vector<uint32_t> ToBits(const std::vector<float>& items) {
  std::vector<uint32_t> bits;
  bits.reserve(items.size());
  for (float v : items) bits.push_back(KeyTraits<float>::ToOrderedBits(v));
  // Ties may be ordered arbitrarily across backends at the boundary of
  // equal keys; the multiset of ordered bits is the invariant.
  std::sort(bits.begin(), bits.end(), std::greater<uint32_t>());
  return bits;
}

struct Case {
  uint64_t seed;
  size_t n;
  size_t k;
  Dist dist;

  std::string Label() const {
    return "case seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
           " k=" + std::to_string(k) + " dist=" + DistName(dist);
  }
};

TEST(PropertyDifferential, Campaign) {
  // Under the racecheck CI legs every Device launches with the checker on;
  // cap the campaign so per-block pair analysis stays cheap.
  const bool capped = simt::RacecheckEnvEnabled();
  const int cases = capped ? 48 : 240;
  const std::vector<size_t> n_choices =
      capped ? std::vector<size_t>{33, 257, 1024, 4096}
             : std::vector<size_t>{33, 257, 1024, 4096, 16384};
  const std::vector<size_t> k_choices = {1, 2, 8, 17, 32, 64, 100, 256};

  constexpr Algorithm kGpuAlgos[] = {
      Algorithm::kSort, Algorithm::kPerThread, Algorithm::kRadixSelect,
      Algorithm::kBucketSelect, Algorithm::kBitonic};
  constexpr CpuAlgorithm kCpuAlgos[] = {CpuAlgorithm::kStlPq,
                                        CpuAlgorithm::kHandPq};

  std::map<std::string, int> runs;
  std::mt19937_64 meta(20260807);
  for (int c = 0; c < cases; ++c) {
    Case tc;
    tc.seed = meta();
    std::mt19937_64 pick(tc.seed);
    tc.n = n_choices[pick() % n_choices.size()];
    tc.k = std::min(k_choices[pick() % k_choices.size()], tc.n);
    tc.dist = kAllDists[c % std::size(kAllDists)];

    const auto data = Generate(tc.dist, tc.n, tc.seed);
    const auto oracle = OracleBits(data, tc.k);

    // (backend name, result bits) for the pairwise cross-check.
    std::vector<std::pair<std::string, std::vector<uint32_t>>> results;

    for (Algorithm algo : kGpuAlgos) {
      simt::Device dev;
      dev.set_trace_sample_target(4);
      auto r = gpu::TopK(dev, data.data(), data.size(), tc.k, algo);
      if (!r.ok()) {
        // Per-thread top-k may exhaust shared memory at large k; every
        // other failure is a bug.
        ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted)
            << tc.Label() << " algo=" << AlgorithmName(algo) << ": "
            << r.status().ToString();
        continue;
      }
      ASSERT_EQ(r->items.size(), tc.k)
          << tc.Label() << " algo=" << AlgorithmName(algo);
      results.emplace_back(AlgorithmName(algo), ToBits(r->items));
      ++runs[AlgorithmName(algo)];
    }
    {
      // The sampling hybrid and the CPU bitonic network require
      // power-of-two k: run them at bit_floor(k) against their own oracle
      // (and each other), and join the pairwise pool when bit_floor(k) == k.
      const size_t k2 = std::bit_floor(tc.k);
      const auto oracle2 = (k2 == tc.k) ? oracle : OracleBits(data, k2);

      simt::Device dev;
      dev.set_trace_sample_target(4);
      auto h = gpu::TopK(dev, data.data(), data.size(), k2,
                         Algorithm::kHybrid);
      ASSERT_TRUE(h.ok()) << tc.Label() << " algo=hybrid k2=" << k2 << ": "
                          << h.status().ToString();
      ASSERT_EQ(h->items.size(), k2) << tc.Label() << " algo=hybrid";
      const auto hbits = ToBits(h->items);
      ASSERT_EQ(hbits, oracle2)
          << tc.Label() << ": hybrid (k2=" << k2
          << ") disagrees with the partial_sort oracle";
      ++runs["hybrid"];

      auto cb = cpu::CpuTopK(data.data(), data.size(), k2,
                             CpuAlgorithm::kBitonic);
      ASSERT_TRUE(cb.ok()) << tc.Label() << " algo=cpu:bitonic k2=" << k2
                           << ": " << cb.status().ToString();
      const auto cbits = ToBits(cb->items);
      ASSERT_EQ(cbits, oracle2)
          << tc.Label() << ": cpu:bitonic (k2=" << k2
          << ") disagrees with the partial_sort oracle";
      ASSERT_EQ(hbits, cbits)
          << tc.Label() << ": hybrid vs cpu:bitonic pairwise mismatch at k2="
          << k2;
      ++runs["cpu:bitonic"];

      if (k2 == tc.k) {
        results.emplace_back("hybrid", hbits);
        results.emplace_back("cpu:bitonic", cbits);
      }
    }
    {
      simt::Device dev;
      dev.set_trace_sample_target(4);
      const size_t chunk = std::max<size_t>(tc.k, tc.n / 3 + 1);
      auto r = gpu::ChunkedTopK(dev, data.data(), data.size(), tc.k, chunk);
      ASSERT_TRUE(r.ok()) << tc.Label()
                          << " algo=chunked: " << r.status().ToString();
      ASSERT_EQ(r->items.size(), tc.k) << tc.Label() << " algo=chunked";
      results.emplace_back("chunked", ToBits(r->items));
      ++runs["chunked"];
    }
    for (CpuAlgorithm algo : kCpuAlgos) {
      auto r = cpu::CpuTopK(data.data(), data.size(), tc.k, algo);
      ASSERT_TRUE(r.ok()) << tc.Label() << " algo=" << CpuAlgorithmName(algo)
                          << ": " << r.status().ToString();
      results.emplace_back(std::string("cpu:") + CpuAlgorithmName(algo),
                           ToBits(r->items));
      ++runs[std::string("cpu:") + CpuAlgorithmName(algo)];
    }

    for (const auto& [name, bits] : results) {
      ASSERT_EQ(bits, oracle) << tc.Label() << ": " << name
                              << " disagrees with the partial_sort oracle";
    }
    for (size_t i = 1; i < results.size(); ++i) {
      ASSERT_EQ(results[i].second, results[i - 1].second)
          << tc.Label() << ": " << results[i].first << " vs "
          << results[i - 1].first << " pairwise mismatch";
    }
  }

  // The acceptance bar: at least 200 executed cases per algorithm (the
  // capped racecheck legs run a smaller, still-exhaustive sweep).
  const int floor_runs = capped ? 40 : 200;
  for (const auto& [name, count] : runs) {
    EXPECT_GE(count, floor_runs) << name << " ran too few cases";
  }
  EXPECT_EQ(runs.size(), 10u);  // 6 GPU + chunked + 3 CPU backends
}

}  // namespace
}  // namespace mptopk
