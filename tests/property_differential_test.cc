// Property-based differential campaign: a seeded generator sweeps
// n x k x distribution (uniform / zipf / all-equal / sorted / reverse-sorted
// / NaN-Inf mix) across every operator in the top-k registry -- GPU
// algorithms, the sampling hybrid, the chunked executor and the CPU
// backends enumerate from topk::Registry::All(), so a newly registered
// operator joins the campaign with zero edits here. Each run is checked
// against a std::partial_sort-style host oracle under the library's one
// true ordering (ordered bits, NaN-safe) and all backends are
// cross-checked pairwise. Every failure message carries the reproducing
// case seed.
//
// The campaign runs >= 200 cases per algorithm in Release; under
// MPTOPK_RACECHECK=1 (the CI racecheck legs) sizes and case counts are
// capped so the checker's per-block analysis stays within budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/distributions.h"
#include "common/key_transform.h"
#include "gputopk/chunked.h"
#include "simt/device.h"
#include "simt/racecheck.h"
#include "topk/registry.h"

namespace mptopk {
namespace {

enum class Dist {
  kUniform,
  kZipf,
  kAllEqual,
  kSorted,
  kReverseSorted,
  kNanInfMix,
};
constexpr Dist kAllDists[] = {Dist::kUniform,  Dist::kZipf,
                              Dist::kAllEqual, Dist::kSorted,
                              Dist::kReverseSorted, Dist::kNanInfMix};

const char* DistName(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kZipf: return "zipf";
    case Dist::kAllEqual: return "all-equal";
    case Dist::kSorted: return "sorted";
    case Dist::kReverseSorted: return "reverse-sorted";
    case Dist::kNanInfMix: return "nan-inf-mix";
  }
  return "?";
}

std::vector<float> Generate(Dist d, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uni(-1000.0f, 1000.0f);
  std::vector<float> v(n);
  switch (d) {
    case Dist::kUniform:
      for (auto& x : v) x = uni(rng);
      break;
    case Dist::kZipf: {
      // Zipf-ish heavy tail: value ~ 1/rank^1.07, ranks shuffled.
      for (size_t i = 0; i < n; ++i) {
        v[i] = 1e6f / std::pow(static_cast<float>(i + 1), 1.07f);
      }
      std::shuffle(v.begin(), v.end(), rng);
      break;
    }
    case Dist::kAllEqual:
      std::fill(v.begin(), v.end(), uni(rng));
      break;
    case Dist::kSorted:
      for (auto& x : v) x = uni(rng);
      std::sort(v.begin(), v.end());
      break;
    case Dist::kReverseSorted:
      for (auto& x : v) x = uni(rng);
      std::sort(v.begin(), v.end(), std::greater<float>());
      break;
    case Dist::kNanInfMix: {
      std::uniform_int_distribution<int> coin(0, 9);
      const float inf = std::numeric_limits<float>::infinity();
      const float nan = std::numeric_limits<float>::quiet_NaN();
      for (auto& x : v) {
        switch (coin(rng)) {
          case 0: x = nan; break;
          case 1: x = inf; break;
          case 2: x = -inf; break;
          case 3: x = -0.0f; break;
          case 4: x = std::numeric_limits<float>::denorm_min(); break;
          default: x = uni(rng); break;
        }
      }
      break;
    }
  }
  return v;
}

// The one true ordering: descending by ordered bits (every NaN maps to the
// greatest key — common/key_transform.h).
std::vector<uint32_t> OracleBits(const std::vector<float>& data, size_t k) {
  std::vector<uint32_t> bits(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    bits[i] = KeyTraits<float>::ToOrderedBits(data[i]);
  }
  const size_t kk = std::min(k, bits.size());
  std::partial_sort(bits.begin(), bits.begin() + kk, bits.end(),
                    std::greater<uint32_t>());
  bits.resize(kk);
  return bits;
}

std::vector<uint32_t> ToBits(const std::vector<float>& items) {
  std::vector<uint32_t> bits;
  bits.reserve(items.size());
  for (float v : items) bits.push_back(KeyTraits<float>::ToOrderedBits(v));
  // Ties may be ordered arbitrarily across backends at the boundary of
  // equal keys; the multiset of ordered bits is the invariant.
  std::sort(bits.begin(), bits.end(), std::greater<uint32_t>());
  return bits;
}

struct Case {
  uint64_t seed;
  size_t n;
  size_t k;
  Dist dist;

  std::string Label() const {
    return "case seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
           " k=" + std::to_string(k) + " dist=" + DistName(dist);
  }
};

TEST(PropertyDifferential, Campaign) {
  // Under the racecheck CI legs every Device launches with the checker on;
  // cap the campaign so per-block pair analysis stays cheap.
  const bool capped = simt::RacecheckEnvEnabled();
  const int cases = capped ? 48 : 240;
  const std::vector<size_t> n_choices =
      capped ? std::vector<size_t>{33, 257, 1024, 4096}
             : std::vector<size_t>{33, 257, 1024, 4096, 16384};
  const std::vector<size_t> k_choices = {1, 2, 8, 17, 32, 64, 100, 256};

  // The documented operator set: 6 GPU algorithms + chunked + 3 CPU
  // backends (docs/operators.md). A registrar added/removed anywhere in
  // the linked libraries shows up here.
  const auto ops = topk::Registry::Instance().All();
  ASSERT_EQ(ops.size(), 10u);

  std::map<std::string, int> runs;
  std::mt19937_64 meta(20260807);
  for (int c = 0; c < cases; ++c) {
    Case tc;
    tc.seed = meta();
    std::mt19937_64 pick(tc.seed);
    tc.n = n_choices[pick() % n_choices.size()];
    tc.k = std::min(k_choices[pick() % k_choices.size()], tc.n);
    tc.dist = kAllDists[c % std::size(kAllDists)];

    const auto data = Generate(tc.dist, tc.n, tc.seed);

    // Results grouped by the k each operator actually ran at: pow2-only
    // operators (cpu:Bitonic) run at bit_floor(k) and cross-check against
    // each other; everything else runs at tc.k. Pairwise comparison
    // happens within each group, oracle comparison against that group's k.
    std::map<size_t,
             std::vector<std::pair<std::string, std::vector<uint32_t>>>>
        by_k;

    for (const auto* op : ops) {
      size_t k_eff = tc.k;
      if (op->caps().pow2_k_only) k_eff = std::bit_floor(k_eff);
      if (op->caps().max_k > 0) k_eff = std::min(k_eff, op->caps().max_k);
      if (!op->CheckCaps(topk::ElemType::kF32, tc.n, k_eff).ok()) continue;

      simt::Device dev;
      dev.set_trace_sample_target(4);
      auto r = op->TopKHost(dev, data.data(), data.size(), k_eff);
      if (!r.ok()) {
        // Per-thread top-k may exhaust shared memory at large k; every
        // other failure is a bug.
        ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted)
            << tc.Label() << " op=" << op->name() << ": "
            << r.status().ToString();
        continue;
      }
      ASSERT_EQ(r->items.size(), k_eff)
          << tc.Label() << " op=" << op->name();
      by_k[k_eff].emplace_back(op->name(), ToBits(r->items));
      ++runs[op->name()];
    }
    {
      // The registry runs the chunked executor single-chunk; keep an
      // explicit multi-chunk case so the merge path stays covered.
      simt::Device dev;
      dev.set_trace_sample_target(4);
      const size_t chunk = std::max<size_t>(tc.k, tc.n / 3 + 1);
      auto r = gpu::ChunkedTopK(dev, data.data(), data.size(), tc.k, chunk);
      ASSERT_TRUE(r.ok()) << tc.Label()
                          << " algo=chunked-multi: " << r.status().ToString();
      ASSERT_EQ(r->items.size(), tc.k) << tc.Label() << " algo=chunked-multi";
      by_k[tc.k].emplace_back("chunked-multi", ToBits(r->items));
      ++runs["chunked-multi"];
    }

    for (const auto& [k_eff, results] : by_k) {
      const auto oracle = OracleBits(data, k_eff);
      for (const auto& [name, bits] : results) {
        ASSERT_EQ(bits, oracle)
            << tc.Label() << ": " << name << " (k=" << k_eff
            << ") disagrees with the partial_sort oracle";
      }
      for (size_t i = 1; i < results.size(); ++i) {
        ASSERT_EQ(results[i].second, results[i - 1].second)
            << tc.Label() << ": " << results[i].first << " vs "
            << results[i - 1].first << " pairwise mismatch at k=" << k_eff;
      }
    }
  }

  // The acceptance bar: at least 200 executed cases per backend (the
  // capped racecheck legs run a smaller, still-exhaustive sweep).
  const int floor_runs = capped ? 40 : 200;
  for (const auto& [name, count] : runs) {
    EXPECT_GE(count, floor_runs) << name << " ran too few cases";
  }
  // Every registered operator plus the explicit multi-chunk round must
  // have participated.
  EXPECT_EQ(runs.size(), ops.size() + 1);
}

}  // namespace
}  // namespace mptopk
