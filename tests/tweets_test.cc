// Validation of the synthetic tweets generator against the dataset
// properties the paper's queries depend on (Section 6.8 substitution).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/tweets.h"

namespace mptopk::engine {
namespace {

class TweetsGenTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 1 << 16;
  simt::Device dev;
  std::unique_ptr<Table> table =
      std::move(MakeTweetsTable(&dev, kRows, 77)).value();

  const int32_t* Col(const char* name) {
    return table->GetColumn(name).value()->i32.host_data();
  }
};

TEST_F(TweetsGenTest, SchemaComplete) {
  EXPECT_EQ(table->num_rows(), kRows);
  for (const char* c :
       {"tweet_time", "retweet_count", "likes_count", "lang", "uid"}) {
    ASSERT_TRUE(table->HasColumn(c)) << c;
    EXPECT_EQ(table->GetColumn(c).value()->type, ColumnType::kInt32) << c;
  }
  EXPECT_EQ(table->GetColumn("id").value()->type, ColumnType::kInt64);
}

TEST_F(TweetsGenTest, IdsUnique) {
  const int64_t* id = table->GetColumn("id").value()->i64.host_data();
  std::set<int64_t> s(id, id + kRows);
  EXPECT_EQ(s.size(), kRows);
}

TEST_F(TweetsGenTest, LangSelectivityMatchesPaperQuery3) {
  const int32_t* lang = Col("lang");
  size_t en_es = 0;
  for (size_t i = 0; i < kRows; ++i) {
    en_es += lang[i] == kLangEn || lang[i] == kLangEs;
  }
  EXPECT_NEAR(static_cast<double>(en_es) / kRows, 0.80, 0.02)
      << "paper: 'selectivity of around 80%'";
}

TEST_F(TweetsGenTest, TimeUniformForSelectivitySweep) {
  const int32_t* t = Col("tweet_time");
  size_t below_half = 0;
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_GE(t[i], 0);
    ASSERT_LT(t[i], kTweetTimeRange);
    below_half += t[i] < kTweetTimeRange / 2;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / kRows, 0.5, 0.02);
}

TEST_F(TweetsGenTest, UsersRoughlyQuarterOfRowsAndSkewed) {
  const int32_t* uid = Col("uid");
  std::set<int32_t> users(uid, uid + kRows);
  // ~rows/4 possible users; the square-skew leaves most of them observed.
  EXPECT_GT(users.size(), kRows / 8);
  EXPECT_LE(users.size(), kRows / 2);
  // Skew: the busiest user tweets far more than average.
  std::map<int32_t, int> counts;
  for (size_t i = 0; i < kRows; ++i) counts[uid[i]]++;
  int max_count = 0;
  for (auto& [u, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20) << "Q4's top users must stand out";
}

TEST_F(TweetsGenTest, RetweetsHeavyTailed) {
  const int32_t* rt = Col("retweet_count");
  size_t zero_or_low = 0;
  int32_t max_rt = 0;
  for (size_t i = 0; i < kRows; ++i) {
    zero_or_low += rt[i] <= 2;
    max_rt = std::max(max_rt, rt[i]);
  }
  EXPECT_GT(static_cast<double>(zero_or_low) / kRows, 0.5)
      << "most tweets get few retweets";
  EXPECT_GT(max_rt, 10000) << "a few go viral";
}

TEST_F(TweetsGenTest, DeterministicPerSeed) {
  simt::Device d2;
  auto t2 = std::move(MakeTweetsTable(&d2, kRows, 77)).value();
  const int32_t* a = Col("retweet_count");
  const int32_t* b = t2->GetColumn("retweet_count").value()->i32.host_data();
  EXPECT_TRUE(std::equal(a, a + kRows, b));
}

TEST_F(TweetsGenTest, RejectsZeroRows) {
  simt::Device d2;
  EXPECT_FALSE(MakeTweetsTable(&d2, 0).ok());
}

}  // namespace
}  // namespace mptopk::engine
