// Tests for the radix-prefilter + bitonic hybrid (paper Section 8 future
// work): correctness across distributions, the fallback path, and the
// expected cost advantage at scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/distributions.h"
#include "gputopk/hybrid_topk.h"
#include "gputopk/topk.h"

namespace mptopk::gpu {
namespace {

template <typename E>
void CheckAgainstReference(const TopKResult<E>& got, std::vector<E> data,
                           size_t k) {
  std::sort(data.begin(), data.end(),
            [](const E& a, const E& b) { return ElementTraits<E>::Less(b, a); });
  ASSERT_EQ(got.items.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(ElementTraits<E>::PrimaryKey(got.items[i]),
              ElementTraits<E>::PrimaryKey(data[i]))
        << "rank " << i;
  }
}

struct HybridCase {
  size_t k;
  Distribution dist;
};

class HybridSweepTest : public ::testing::TestWithParam<HybridCase> {};

TEST_P(HybridSweepTest, MatchesReference) {
  auto [k, dist] = GetParam();
  auto data = GenerateFloats(1 << 16, dist, 13 * k);
  simt::Device dev;
  auto r = HybridTopK(dev, data.data(), data.size(), k);
  ASSERT_TRUE(r.ok()) << r.status();
  CheckAgainstReference(*r, data, k);
}

INSTANTIATE_TEST_SUITE_P(
    All, HybridSweepTest,
    ::testing::Values(HybridCase{1, Distribution::kUniform},
                      HybridCase{32, Distribution::kUniform},
                      HybridCase{256, Distribution::kUniform},
                      HybridCase{1024, Distribution::kUniform},
                      HybridCase{32, Distribution::kIncreasing},
                      HybridCase{32, Distribution::kDecreasing},
                      HybridCase{32, Distribution::kBucketKiller}),
    [](const auto& info) {
      return std::string(DistributionName(info.param.dist)) + "_k" +
             std::to_string(info.param.k);
    });

TEST(HybridTopKTest, BucketKillerTakesFallback) {
  // Nearly all keys equal: the pivot cannot discriminate, the candidate
  // cap overflows, and the hybrid must take the plain-bitonic fallback and
  // still be correct.
  auto data = GenerateFloats(1 << 16, Distribution::kBucketKiller);
  simt::Device with_hybrid, plain;
  auto hy = HybridTopK(with_hybrid, data.data(), data.size(), 32);
  auto bi = BitonicTopK(plain, data.data(), data.size(), 32);
  ASSERT_TRUE(hy.ok());
  ASSERT_TRUE(bi.ok());
  EXPECT_EQ(hy->items, bi->items);
  // Fallback cost: at most bitonic plus the wasted sample + filter passes
  // (at this small n the sampling stage is skipped entirely, so the times
  // may be identical).
  EXPECT_GE(hy->kernel_ms, bi->kernel_ms);
  EXPECT_LT(hy->kernel_ms, bi->kernel_ms * 3.0);
}

TEST(HybridTopKTest, BeatsBitonicOnUniformIntsAtScale) {
  const size_t n = 1 << 21;
  auto data = GenerateU32(n, Distribution::kUniform);
  simt::Device d1, d2;
  d1.set_trace_sample_target(24);
  d2.set_trace_sample_target(24);
  auto hy = HybridTopK(d1, data.data(), n, 32);
  auto bi = BitonicTopK(d2, data.data(), n, 32);
  ASSERT_TRUE(hy.ok());
  ASSERT_TRUE(bi.ok());
  EXPECT_LT(hy->kernel_ms, bi->kernel_ms)
      << "one histogram read + tiny bitonic should beat shared-bound "
         "bitonic over everything";
}

TEST(HybridTopKTest, BeatsBitonicOnUniformFloatsAtScale) {
  // The sampled pivot discriminates any distribution with enough distinct
  // keys -- including U(0,1) floats, where a byte-radix prefilter would
  // fail on the exponent clustering.
  const size_t n = 1 << 21;
  auto data = GenerateFloats(n, Distribution::kUniform);
  simt::Device d1, d2;
  d1.set_trace_sample_target(24);
  d2.set_trace_sample_target(24);
  auto hy = HybridTopK(d1, data.data(), n, 32);
  auto bi = BitonicTopK(d2, data.data(), n, 32);
  ASSERT_TRUE(hy.ok());
  ASSERT_TRUE(bi.ok());
  EXPECT_EQ(hy->items, bi->items);
  EXPECT_LT(hy->kernel_ms, bi->kernel_ms);
}

TEST(HybridTopKTest, KVPayloadsSurvive) {
  auto keys = GenerateFloats(1 << 15, Distribution::kUniform);
  std::vector<KV> data(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    data[i] = KV{keys[i], static_cast<uint32_t>(i)};
  }
  simt::Device dev;
  auto r = HybridTopK(dev, data.data(), data.size(), 64);
  ASSERT_TRUE(r.ok()) << r.status();
  for (const KV& kv : r->items) {
    EXPECT_EQ(data[kv.value].key, kv.key);
  }
}

TEST(HybridTopKTest, DispatcherRoundsUpNonPowerOfTwoK) {
  auto data = GenerateFloats(1 << 15, Distribution::kUniform);
  simt::Device dev;
  auto r = TopK(dev, data.data(), data.size(), 100, Algorithm::kHybrid);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->items.size(), 100u);
  CheckAgainstReference(*r, data, 100);
}

TEST(HybridTopKTest, RejectsBadArguments) {
  auto data = GenerateFloats(128, Distribution::kUniform);
  simt::Device dev;
  EXPECT_FALSE(HybridTopK(dev, data.data(), 128, 0).ok());
  EXPECT_FALSE(HybridTopK(dev, data.data(), 128, 3).ok());
  EXPECT_FALSE(HybridTopK(dev, data.data(), 128, 256).ok());
}

}  // namespace
}  // namespace mptopk::gpu
