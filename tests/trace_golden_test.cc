// Golden-metrics regression tests for BlockTracer::Analyze: hand-built
// access patterns with counts derivable from the hardware model by hand —
// coalescing sector math, bank-conflict replays, the broadcast exemption,
// atomic serialization, and divergence slots. These lock the timing-model
// inputs against tracer refactors (the numbers feed every simulated
// millisecond in the paper reproduction).
#include <gtest/gtest.h>

#include "simt/device_spec.h"
#include "simt/metrics.h"
#include "simt/trace.h"

namespace mptopk::simt {
namespace {

KernelMetrics Analyzed(const BlockTracer& tracer) {
  KernelMetrics m;
  tracer.Analyze(&m);
  return m;
}

// 32 lanes loading 4 consecutive bytes each from a sector-aligned base:
// one warp instruction, 128 contiguous bytes = 4 perfectly-used sectors.
TEST(TraceGolden, CoalescedGlobalLoad) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    tracer.RecordGlobal(lane, /*seq=*/0, /*addr=*/4096 + 4 * lane, 4,
                        /*write=*/false);
  }
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.warp_instructions, 1u);
  EXPECT_EQ(m.global_transactions, 4u);
  EXPECT_EQ(m.global_bytes, 128u);
  EXPECT_EQ(m.global_useful_bytes, 128u);
  EXPECT_EQ(m.divergent_lane_slots, 0u);
  EXPECT_EQ(m.blocks_traced, 1u);
}

// Stride-32B access: every lane lands in its own sector — the 8x coalescing
// inefficiency the paper's Figure 6 markers are priced from.
TEST(TraceGolden, StridedGlobalLoadOneSectorPerLane) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    tracer.RecordGlobal(lane, 0, 4096 + 32 * lane, 4, false);
  }
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.warp_instructions, 1u);
  EXPECT_EQ(m.global_transactions, 32u);
  EXPECT_EQ(m.global_bytes, 1024u);
  EXPECT_EQ(m.global_useful_bytes, 128u);
}

// A misaligned contiguous load crosses one extra sector: [16, 144) touches
// sectors 0..4 of the 32-byte grid.
TEST(TraceGolden, MisalignedGlobalLoadExtraSector) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    tracer.RecordGlobal(lane, 0, 4096 + 16 + 4 * lane, 4, false);
  }
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.global_transactions, 5u);
  EXPECT_EQ(m.global_bytes, 160u);
  EXPECT_EQ(m.global_useful_bytes, 128u);
}

// Only 8 of 32 lanes participate: 24 idle lane-slots in one instruction.
// Different seq values do NOT merge: each becomes its own instruction with
// 31 idle slots.
TEST(TraceGolden, DivergenceSlots) {
  DeviceSpec spec;
  {
    BlockTracer tracer(spec, 32);
    for (int lane = 0; lane < 8; ++lane) {
      tracer.RecordGlobal(lane, 0, 4 * lane, 4, false);
    }
    KernelMetrics m = Analyzed(tracer);
    EXPECT_EQ(m.warp_instructions, 1u);
    EXPECT_EQ(m.divergent_lane_slots, 24u);
  }
  {
    BlockTracer tracer(spec, 32);
    tracer.RecordGlobal(0, /*seq=*/0, 0, 4, false);
    tracer.RecordGlobal(1, /*seq=*/1, 4, 4, false);
    KernelMetrics m = Analyzed(tracer);
    EXPECT_EQ(m.warp_instructions, 2u);
    EXPECT_EQ(m.divergent_lane_slots, 62u);
  }
}

// Warps analyze independently: the same (seq, addr) on tids 0 and 32 is two
// warp instructions, not one.
TEST(TraceGolden, WarpsAreIndependent) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 64);
  tracer.RecordGlobal(0, 0, 0, 4, false);
  tracer.RecordGlobal(32, 0, 0, 4, false);
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.warp_instructions, 2u);
  EXPECT_EQ(m.global_transactions, 2u);
}

// Lane i -> word i: all 32 banks hit once — one conflict-free cycle moving
// a full 128-byte bandwidth slot.
TEST(TraceGolden, SharedConflictFree) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    tracer.RecordShared(lane, 0, 4 * lane, 4, false, false);
  }
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.shared_cycles, 1u);
  EXPECT_EQ(m.bank_conflict_cycles, 0u);
  EXPECT_EQ(m.shared_bytes, 128u);
  EXPECT_EQ(m.shared_useful_bytes, 128u);
}

// Lane i -> word 2i: banks 0,2,..,30 each see two distinct words — the
// classic 2-way conflict, one replay cycle.
TEST(TraceGolden, SharedTwoWayBankConflict) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    tracer.RecordShared(lane, 0, 4 * (2 * lane), 4, false, false);
  }
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.shared_cycles, 2u);
  EXPECT_EQ(m.bank_conflict_cycles, 1u);
  EXPECT_EQ(m.shared_bytes, 256u);
}

// All lanes reading one word broadcast conflict-free (the exemption that
// makes the paper's padded layouts worthwhile only for writes/distinct
// words).
TEST(TraceGolden, SharedBroadcastExemption) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    tracer.RecordShared(lane, 0, /*addr=*/0, 4, false, false);
  }
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.shared_cycles, 1u);
  EXPECT_EQ(m.bank_conflict_cycles, 0u);
  EXPECT_EQ(m.shared_useful_bytes, 128u);
}

// 8-byte accesses occupy two words each: every bank holds two distinct
// words -> two cycles (the hardware's two-phase 64-bit access).
TEST(TraceGolden, SharedEightByteTwoPhase) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    tracer.RecordShared(lane, 0, 8 * lane, 8, false, false);
  }
  KernelMetrics m = Analyzed(tracer);
  EXPECT_EQ(m.shared_cycles, 2u);
  EXPECT_EQ(m.bank_conflict_cycles, 1u);
  EXPECT_EQ(m.shared_useful_bytes, 256u);
}

// Warp-aggregated same-word atomics: one update cycle plus the RMW cycle.
// Distinct words on one bank serialize per word instead.
TEST(TraceGolden, SharedAtomics) {
  DeviceSpec spec;
  {
    BlockTracer tracer(spec, 32);
    for (int lane = 0; lane < 32; ++lane) {
      tracer.RecordShared(lane, 0, 0, 4, true, /*atomic=*/true);
    }
    KernelMetrics m = Analyzed(tracer);
    EXPECT_EQ(m.shared_atomic_cycles, 2u);
    EXPECT_EQ(m.shared_cycles, 0u);  // atomics billed separately
    EXPECT_EQ(m.shared_useful_bytes, 128u);
  }
  {
    BlockTracer tracer(spec, 32);
    for (int lane = 0; lane < 32; ++lane) {
      // Word 32*lane: all in bank 0, all distinct -> 32 + 1 cycles.
      tracer.RecordShared(lane, 0, 4 * 32 * lane, 4, true, /*atomic=*/true);
    }
    KernelMetrics m = Analyzed(tracer);
    EXPECT_EQ(m.shared_atomic_cycles, 33u);
  }
}

// The barrier epoch is stamped on accesses but must never change the
// metrics: the same pattern split across epochs analyzes identically.
TEST(TraceGolden, EpochsDoNotAffectMetrics) {
  DeviceSpec spec;
  BlockTracer flat(spec, 32);
  BlockTracer epoched(spec, 32);
  for (int lane = 0; lane < 32; ++lane) {
    flat.RecordShared(lane, 0, 4 * lane, 4, true, false);
    flat.RecordShared(lane, 1, 4 * lane, 4, false, false);
  }
  for (int lane = 0; lane < 32; ++lane) {
    epoched.RecordShared(lane, 0, 4 * lane, 4, true, false);
  }
  epoched.AdvanceEpoch();
  for (int lane = 0; lane < 32; ++lane) {
    epoched.RecordShared(lane, 1, 4 * lane, 4, false, false);
  }
  KernelMetrics a = Analyzed(flat);
  KernelMetrics b = Analyzed(epoched);
  EXPECT_EQ(a.shared_cycles, b.shared_cycles);
  EXPECT_EQ(a.shared_bytes, b.shared_bytes);
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.bank_conflict_cycles, b.bank_conflict_cycles);

  // ... while the recorded epochs differ as stamped.
  EXPECT_EQ(epoched.shared_accesses()[0][0].epoch, 0u);
  EXPECT_EQ(epoched.shared_accesses()[0][1].epoch, 1u);
  EXPECT_EQ(flat.shared_accesses()[0][1].epoch, 0u);
}

// Reset clears accesses and rewinds the epoch counter for block reuse.
TEST(TraceGolden, ResetClearsEpoch) {
  DeviceSpec spec;
  BlockTracer tracer(spec, 32);
  tracer.RecordShared(0, 0, 0, 4, true, false);
  tracer.AdvanceEpoch();
  EXPECT_EQ(tracer.epoch(), 1u);
  tracer.Reset(32);
  EXPECT_EQ(tracer.epoch(), 0u);
  EXPECT_TRUE(tracer.shared_accesses()[0].empty());
  tracer.RecordShared(0, 0, 0, 4, true, false);
  EXPECT_EQ(tracer.shared_accesses()[0][0].epoch, 0u);
}

}  // namespace
}  // namespace mptopk::simt
