// The parallel block launcher's determinism contract (simt/workers.h):
// for every worker count, simulated metrics, timings, race accounting and
// canonical top-k results must be bit-identical to the sequential
// workers=1 loop. Sweeps every algorithm, the chunked executor and the
// query engine across workers in {1, 2, 7, 8} (7 catches shard-boundary
// bugs), stress-tests the global-atomic turnstile, and runs a compact
// differential sweep at 4 workers. The TSan CI leg runs this binary with
// MPTOPK_WORKERS=4 to prove the launcher data-race-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/key_transform.h"
#include "engine/query.h"
#include "engine/table.h"
#include "engine/tweets.h"
#include "gputopk/chunked.h"
#include "gputopk/topk.h"
#include "simt/device.h"
#include "simt/workers.h"

namespace mptopk {
namespace {

using gpu::Algorithm;
using gpu::AlgorithmName;
using simt::Block;
using simt::Device;
using simt::GlobalSpan;
using simt::KernelMetrics;
using simt::KernelStats;
using simt::Thread;

constexpr int kWorkerSweep[] = {1, 2, 7, 8};

void ExpectMetricsEq(const KernelMetrics& a, const KernelMetrics& b,
                     const std::string& label) {
  EXPECT_EQ(a.global_transactions, b.global_transactions) << label;
  EXPECT_EQ(a.global_bytes, b.global_bytes) << label;
  EXPECT_EQ(a.global_useful_bytes, b.global_useful_bytes) << label;
  EXPECT_EQ(a.local_bytes, b.local_bytes) << label;
  EXPECT_EQ(a.shared_cycles, b.shared_cycles) << label;
  EXPECT_EQ(a.shared_bytes, b.shared_bytes) << label;
  EXPECT_EQ(a.shared_useful_bytes, b.shared_useful_bytes) << label;
  EXPECT_EQ(a.bank_conflict_cycles, b.bank_conflict_cycles) << label;
  EXPECT_EQ(a.shared_atomic_cycles, b.shared_atomic_cycles) << label;
  EXPECT_EQ(a.global_atomics, b.global_atomics) << label;
  EXPECT_EQ(a.dependent_stall_cycles, b.dependent_stall_cycles) << label;
  EXPECT_EQ(a.warp_instructions, b.warp_instructions) << label;
  EXPECT_EQ(a.divergent_lane_slots, b.divergent_lane_slots) << label;
  EXPECT_EQ(a.blocks_traced, b.blocks_traced) << label;
  EXPECT_EQ(a.blocks_launched, b.blocks_launched) << label;
}

// Full simulated-time fingerprint of a device after a run: every kernel's
// metrics and timeline placement plus the device clocks. Doubles are
// compared with EXPECT_EQ — the contract is bit-identity, not tolerance.
void ExpectLogsEq(const Device& base, const Device& dev,
                  const std::string& label) {
  EXPECT_EQ(base.total_sim_ms(), dev.total_sim_ms()) << label;
  EXPECT_EQ(base.makespan_ms(), dev.makespan_ms()) << label;
  EXPECT_EQ(base.pcie_ms(), dev.pcie_ms()) << label;
  ASSERT_EQ(base.kernel_log().size(), dev.kernel_log().size()) << label;
  for (size_t i = 0; i < base.kernel_log().size(); ++i) {
    const KernelStats& a = base.kernel_log()[i];
    const KernelStats& b = dev.kernel_log()[i];
    const std::string l = label + " kernel[" + std::to_string(i) + "]=" +
                          a.name;
    EXPECT_EQ(a.name, b.name) << l;
    EXPECT_EQ(a.time.total_ms, b.time.total_ms) << l;
    EXPECT_EQ(a.start_ms, b.start_ms) << l;
    EXPECT_EQ(a.end_ms, b.end_ms) << l;
    EXPECT_EQ(a.race.hazard_count, b.race.hazard_count) << l;
    ExpectMetricsEq(a.metrics, b.metrics, l);
  }
}

std::vector<float> UniformData(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uni(-1000.0f, 1000.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = uni(rng);
  return v;
}

// --- Turnstile semantics -----------------------------------------------------

// Every thread of every block hammers counter[0] with a value-returning
// AtomicAdd and counter[1] with a ReduceAdd. Totals must be exact, and the
// turnstile must make each AtomicAdd return exactly its sequential ticket
// (block-major, then thread order within the block).
TEST(ParallelLaunch, AtomicCounterStress) {
  constexpr int kGrid = 48, kBlock = 64;
  constexpr size_t kN = static_cast<size_t>(kGrid) * kBlock;
  for (int w : kWorkerSweep) {
    Device dev;
    dev.set_host_workers(w);
    auto counters = dev.Alloc<uint32_t>(2).value();
    auto tickets = dev.Alloc<uint32_t>(kN).value();
    counters.host_data()[0] = 0;
    counters.host_data()[1] = 0;
    GlobalSpan<uint32_t> ctr(counters);
    GlobalSpan<uint32_t> out(tickets);
    auto st = dev.Launch(
        {.grid_dim = kGrid, .block_dim = kBlock, .name = "atomic_stress"},
        [&](Block& blk) {
          blk.ForEachThread([&](Thread& t) {
            uint32_t ticket = ctr.AtomicAdd(t, 0, 1u);
            out.Write(t,
                      static_cast<size_t>(blk.block_idx()) * kBlock + t.tid,
                      ticket);
            ctr.ReduceAdd(t, 1, 1u);
          });
        });
    ASSERT_TRUE(st.ok()) << st.status();
    EXPECT_EQ(counters.host_data()[0], kN) << "workers=" << w;
    EXPECT_EQ(counters.host_data()[1], kN) << "workers=" << w;
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(tickets.host_data()[i], i) << "workers=" << w << " i=" << i;
    }
  }
}

// First-wins election through a value-returning atomic: the winner must be
// the sequential one (block 0, thread 0) under every worker count.
TEST(ParallelLaunch, ElectionIsSequentialEquivalent) {
  constexpr int kGrid = 16, kBlock = 32;
  for (int w : kWorkerSweep) {
    Device dev;
    dev.set_host_workers(w);
    auto flag = dev.Alloc<uint32_t>(1).value();
    auto winner = dev.Alloc<uint32_t>(1).value();
    flag.host_data()[0] = 0;
    winner.host_data()[0] = 0xffffffffu;
    GlobalSpan<uint32_t> f(flag);
    GlobalSpan<uint32_t> win(winner);
    auto st = dev.Launch(
        {.grid_dim = kGrid, .block_dim = kBlock, .name = "election"},
        [&](Block& blk) {
          blk.ForEachThread([&](Thread& t) {
            if (f.AtomicAdd(t, 0, 1u) == 0) {
              win.Write(t, 0,
                        static_cast<uint32_t>(blk.block_idx()) * kBlock +
                            t.tid);
            }
          });
        });
    ASSERT_TRUE(st.ok()) << st.status();
    EXPECT_EQ(winner.host_data()[0], 0u) << "workers=" << w;
  }
}

// A grid that divides into neither 2, 7 nor 8 shards: every block must run
// exactly once.
TEST(ParallelLaunch, OddGridFullCoverage) {
  constexpr int kGrid = 13, kBlock = 32;
  for (int w : kWorkerSweep) {
    Device dev;
    dev.set_host_workers(w);
    auto buf = dev.Alloc<uint32_t>(kGrid).value();
    std::fill(buf.host_data(), buf.host_data() + kGrid, 0u);
    GlobalSpan<uint32_t> out(buf);
    auto st = dev.Launch(
        {.grid_dim = kGrid, .block_dim = kBlock, .name = "coverage"},
        [&](Block& blk) {
          blk.ForEachThread([&](Thread& t) {
            if (t.tid == 0) {
              out.ReduceAdd(t, static_cast<size_t>(blk.block_idx()), 1u);
            }
          });
        });
    ASSERT_TRUE(st.ok()) << st.status();
    for (int b = 0; b < kGrid; ++b) {
      EXPECT_EQ(buf.host_data()[b], 1u) << "workers=" << w << " block=" << b;
    }
  }
}

// --- Worker-count resolution -------------------------------------------------

TEST(ParallelLaunch, WorkerCountResolution) {
  {
    Device dev;
    dev.set_host_workers(6);
    EXPECT_EQ(dev.host_workers(), 6);
    dev.set_host_workers(0);  // clamps to 1
    EXPECT_EQ(dev.host_workers(), 1);
  }
  {
    simt::DeviceSpec spec;
    spec.host_workers = 5;
    Device dev(spec);
    EXPECT_EQ(dev.host_workers(), 5);
  }
  {
    ::setenv("MPTOPK_WORKERS", "3", 1);
    Device dev;
    EXPECT_EQ(dev.host_workers(), 3);
    ::unsetenv("MPTOPK_WORKERS");
  }
  {
    // The bench --workers override outranks the environment.
    ::setenv("MPTOPK_WORKERS", "3", 1);
    simt::SetHostWorkersOverride(2);
    Device dev;
    EXPECT_EQ(dev.host_workers(), 2);
    simt::SetHostWorkersOverride(0);
    ::unsetenv("MPTOPK_WORKERS");
  }
}

// --- Error paths -------------------------------------------------------------

TEST(ParallelLaunch, SharedOverflowStillFails) {
  for (int w : {1, 4}) {
    Device dev;
    dev.set_host_workers(w);
    auto st = dev.Launch(
        {.grid_dim = 8, .block_dim = 32, .name = "overflow"},
        [&](Block& blk) {
          auto s = blk.AllocShared<float>(64 * 1024);  // 256 KiB > 48 KiB
          blk.ForEachThread([&](Thread& t) { s.Write(t, t.tid, 0.0f); });
        });
    ASSERT_FALSE(st.ok()) << "workers=" << w;
    EXPECT_EQ(st.status().code(), StatusCode::kResourceExhausted)
        << "workers=" << w;
    EXPECT_NE(st.status().ToString().find("shared memory"), std::string::npos)
        << st.status().ToString();
  }
}

// --- Trace sampling ----------------------------------------------------------

// Ceil-division stride: grid 10 at target 3 must trace blocks {0, 4, 8} —
// three blocks, not the four the old floor-division stride produced.
TEST(ParallelLaunch, SampleStrideCeilDivision) {
  for (int w : kWorkerSweep) {
    Device dev;
    dev.set_host_workers(w);
    dev.set_trace_sample_target(3);
    auto buf = dev.Alloc<uint32_t>(320).value();
    GlobalSpan<uint32_t> out(buf);
    auto st = dev.Launch(
        {.grid_dim = 10, .block_dim = 32, .name = "sampled"},
        [&](Block& blk) {
          blk.ForEachThread([&](Thread& t) {
            out.Write(t, static_cast<size_t>(blk.block_idx()) * 32 + t.tid,
                      1u);
          });
        });
    ASSERT_TRUE(st.ok()) << st.status();
    EXPECT_EQ(st->metrics.blocks_traced, 3u) << "workers=" << w;
    EXPECT_EQ(st->metrics.blocks_launched, 10u) << "workers=" << w;
  }
}

// --- Full algorithm sweep ----------------------------------------------------

class AlgorithmSweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmSweep, BitIdenticalAcrossWorkerCounts) {
  const Algorithm algo = GetParam();
  const size_t n = 16384;
  // Power-of-two k so the hybrid runs too.
  const size_t k = 32;
  const auto data = UniformData(n, 20260807);

  Device base;
  base.set_host_workers(1);
  auto r0 = gpu::TopK(base, data.data(), n, k, algo);
  ASSERT_TRUE(r0.ok()) << r0.status();

  for (int w : kWorkerSweep) {
    if (w == 1) continue;
    Device dev;
    dev.set_host_workers(w);
    auto r = gpu::TopK(dev, data.data(), n, k, algo);
    ASSERT_TRUE(r.ok()) << r.status();
    const std::string label =
        std::string(AlgorithmName(algo)) + " workers=" + std::to_string(w);
    ASSERT_EQ(r0->items.size(), r->items.size()) << label;
    for (size_t i = 0; i < r->items.size(); ++i) {
      EXPECT_EQ(KeyTraits<float>::ToOrderedBits(r0->items[i]),
                KeyTraits<float>::ToOrderedBits(r->items[i]))
          << label << " i=" << i;
    }
    EXPECT_EQ(r0->kernel_ms, r->kernel_ms) << label;
    ExpectLogsEq(base, dev, label);
  }
}

TEST_P(AlgorithmSweep, BitIdenticalUnderTraceSampling) {
  const Algorithm algo = GetParam();
  const size_t n = 16384;
  const size_t k = 32;
  const auto data = UniformData(n, 77);

  Device base;
  base.set_host_workers(1);
  base.set_trace_sample_target(4);
  auto r0 = gpu::TopK(base, data.data(), n, k, algo);
  ASSERT_TRUE(r0.ok()) << r0.status();

  for (int w : {7, 8}) {
    Device dev;
    dev.set_host_workers(w);
    dev.set_trace_sample_target(4);
    auto r = gpu::TopK(dev, data.data(), n, k, algo);
    ASSERT_TRUE(r.ok()) << r.status();
    ExpectLogsEq(base, dev,
                 std::string(AlgorithmName(algo)) + " sampled workers=" +
                     std::to_string(w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSweep,
    ::testing::Values(Algorithm::kSort, Algorithm::kPerThread,
                      Algorithm::kRadixSelect, Algorithm::kBucketSelect,
                      Algorithm::kBitonic, Algorithm::kHybrid),
    [](const auto& info) { return AlgorithmName(info.param); });

TEST(ParallelLaunch, ChunkedBitIdenticalAcrossWorkerCounts) {
  const size_t n = 16384, k = 37;
  const auto data = UniformData(n, 4242);
  const size_t chunk = n / 3 + 1;

  Device base;
  base.set_host_workers(1);
  auto r0 = gpu::ChunkedTopK(base, data.data(), n, k, chunk);
  ASSERT_TRUE(r0.ok()) << r0.status();

  for (int w : kWorkerSweep) {
    if (w == 1) continue;
    Device dev;
    dev.set_host_workers(w);
    auto r = gpu::ChunkedTopK(dev, data.data(), n, k, chunk);
    ASSERT_TRUE(r.ok()) << r.status();
    const std::string label = "chunked workers=" + std::to_string(w);
    ASSERT_EQ(r0->items.size(), r->items.size()) << label;
    for (size_t i = 0; i < r->items.size(); ++i) {
      EXPECT_EQ(KeyTraits<float>::ToOrderedBits(r0->items[i]),
                KeyTraits<float>::ToOrderedBits(r->items[i]))
          << label << " i=" << i;
    }
    EXPECT_EQ(r0->kernel_ms, r->kernel_ms) << label;
    ExpectLogsEq(base, dev, label);
  }
}

// --- Engine queries ----------------------------------------------------------

// Filter + top-k (the scatter-counter path) and hash group-by (the CAS
// path) across worker counts: results, per-query times and the device's
// whole simulated timeline must match workers=1.
TEST(ParallelLaunch, EngineQueriesBitIdentical) {
  using namespace mptopk::engine;
  constexpr size_t kRows = 1 << 15;

  struct Run {
    QueryResult q1;
    GroupByResult q4;
    double total_sim_ms;
    double makespan_ms;
  };
  auto run_queries = [&](int workers, Device* dev_out) {
    Device& dev = *dev_out;
    dev.set_host_workers(workers);
    auto table = std::move(MakeTweetsTable(&dev, kRows, 123).value());
    Filter f{{{"tweet_time", CompareOp::kLt, 0.5 * kTweetTimeRange}}};
    Ranking rank{{{"retweet_count", 1.0}}};
    auto q1 = FilterTopKQuery(*table, f, rank, "id", 50,
                              TopKStrategy::kFilterBitonic);
    EXPECT_TRUE(q1.ok()) << q1.status();
    auto q4 = GroupByCountTopKQuery(*table, "uid", 50, GroupByStrategy::kSort);
    EXPECT_TRUE(q4.ok()) << q4.status();
    if (!q1.ok() || !q4.ok()) return Run{};
    return Run{*q1, *q4, dev.total_sim_ms(), dev.makespan_ms()};
  };

  Device base_dev;
  Run base = run_queries(1, &base_dev);
  for (int w : kWorkerSweep) {
    if (w == 1) continue;
    Device dev;
    Run r = run_queries(w, &dev);
    const std::string label = "engine workers=" + std::to_string(w);
    EXPECT_EQ(base.q1.ids, r.q1.ids) << label;
    EXPECT_EQ(base.q1.rank_values, r.q1.rank_values) << label;
    EXPECT_EQ(base.q1.matched_rows, r.q1.matched_rows) << label;
    EXPECT_EQ(base.q1.kernel_ms, r.q1.kernel_ms) << label;
    EXPECT_EQ(base.q4.keys, r.q4.keys) << label;
    EXPECT_EQ(base.q4.counts, r.q4.counts) << label;
    EXPECT_EQ(base.q4.num_groups, r.q4.num_groups) << label;
    EXPECT_EQ(base.q4.kernel_ms, r.q4.kernel_ms) << label;
    EXPECT_EQ(base.total_sim_ms, r.total_sim_ms) << label;
    EXPECT_EQ(base.makespan_ms, r.makespan_ms) << label;
    ExpectLogsEq(base_dev, dev, label);
  }
}

// --- Racecheck under parallel execution --------------------------------------

// The checker analyzes traced blocks independently; per-block reports are
// merged in block order, so hazard attribution matches workers=1 exactly.
TEST(ParallelLaunch, RacecheckReportsMatchSequential) {
  auto racy_launch = [](Device& dev) {
    auto buf = dev.Alloc<uint32_t>(6 * 64).value();
    GlobalSpan<uint32_t> data(buf);
    return dev.Launch(
        {.grid_dim = 6, .block_dim = 64, .name = "racy"},
        [&](Block& blk) {
          auto s = blk.AllocShared<uint32_t>(64);
          blk.ForEachThread(
              [&](Thread& t) { s.Write(t, t.tid, t.tid); });
          // Missing Sync(): same-epoch cross-warp R/W hazard on shared
          // memory. Global writes stay per-block disjoint — cross-block
          // plain writes to one address would be a real host race here,
          // exactly as they would be UB on hardware.
          blk.ForEachThread([&](Thread& t) {
            data.Write(t, static_cast<size_t>(blk.block_idx()) * 64 + t.tid,
                       s.Read(t, 63 - t.tid));
          });
        });
  };

  Device base;
  base.set_host_workers(1);
  base.set_racecheck(true);
  auto r0 = racy_launch(base);
  ASSERT_TRUE(r0.ok()) << r0.status();
  ASSERT_GT(r0->race.hazard_count, 0u);

  for (int w : {2, 7, 8}) {
    Device dev;
    dev.set_host_workers(w);
    dev.set_racecheck(true);
    auto r = racy_launch(dev);
    ASSERT_TRUE(r.ok()) << r.status();
    const std::string label = "racecheck workers=" + std::to_string(w);
    EXPECT_EQ(r0->race.hazard_count, r->race.hazard_count) << label;
    ASSERT_EQ(r0->race.hazards.size(), r->race.hazards.size()) << label;
    for (size_t i = 0; i < r0->race.hazards.size(); ++i) {
      EXPECT_EQ(r0->race.hazards[i].block_idx, r->race.hazards[i].block_idx)
          << label << " i=" << i;
      EXPECT_EQ(r0->race.hazards[i].a.tid, r->race.hazards[i].a.tid)
          << label << " i=" << i;
      EXPECT_EQ(r0->race.hazards[i].b.tid, r->race.hazards[i].b.tid)
          << label << " i=" << i;
    }
    EXPECT_EQ(base.race_report().hazard_count, dev.race_report().hazard_count)
        << label;
  }
}

// --- Differential sweep at 4 workers -----------------------------------------

// A compact version of the property-differential campaign pinned to 4
// workers: every algorithm + chunked against the partial_sort oracle. (CI
// additionally runs the full 240-case sweep with MPTOPK_WORKERS=4 on the
// Release leg.)
TEST(ParallelLaunch, DifferentialSweepAtFourWorkers) {
  constexpr Algorithm kAlgos[] = {Algorithm::kSort, Algorithm::kPerThread,
                                  Algorithm::kRadixSelect,
                                  Algorithm::kBucketSelect,
                                  Algorithm::kBitonic};
  for (size_t n : {257u, 4096u, 16384u}) {
    for (size_t k : {1u, 32u, 100u}) {
      const size_t kk = std::min(k, n);
      const auto data = UniformData(n, 1000 + n + k);
      std::vector<uint32_t> oracle(n);
      for (size_t i = 0; i < n; ++i) {
        oracle[i] = KeyTraits<float>::ToOrderedBits(data[i]);
      }
      std::partial_sort(oracle.begin(), oracle.begin() + kk, oracle.end(),
                        std::greater<uint32_t>());
      oracle.resize(kk);

      auto check = [&](const std::vector<float>& items,
                       const std::string& name) {
        ASSERT_EQ(items.size(), kk) << name << " n=" << n << " k=" << kk;
        std::vector<uint32_t> bits;
        for (float v : items) bits.push_back(KeyTraits<float>::ToOrderedBits(v));
        std::sort(bits.begin(), bits.end(), std::greater<uint32_t>());
        EXPECT_EQ(bits, oracle) << name << " n=" << n << " k=" << kk;
      };

      for (Algorithm algo : kAlgos) {
        Device dev;
        dev.set_host_workers(4);
        auto r = gpu::TopK(dev, data.data(), n, kk, algo);
        ASSERT_TRUE(r.ok())
            << AlgorithmName(algo) << " n=" << n << " k=" << kk << ": "
            << r.status().ToString();
        check(r->items, AlgorithmName(algo));
      }
      {
        Device dev;
        dev.set_host_workers(4);
        auto r = gpu::ChunkedTopK(dev, data.data(), n, kk,
                                  std::max(kk, n / 3 + 1));
        ASSERT_TRUE(r.ok()) << "chunked n=" << n << " k=" << kk;
        check(r->items, "chunked");
      }
    }
  }
}

}  // namespace
}  // namespace mptopk
