// Correctness tests for bitonic top-k across element types, sizes, k values,
// distributions and every optimization level (each Section 4.3 optimization
// must not change results). Reference = sort-descending-take-k.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "common/distributions.h"
#include "gputopk/bitonic_topk.h"

namespace mptopk::gpu {
namespace {

template <typename E>
std::vector<E> ReferenceTopK(std::vector<E> data, size_t k) {
  std::sort(data.begin(), data.end(),
            [](const E& a, const E& b) { return ElementTraits<E>::Less(b, a); });
  data.resize(k);
  return data;
}

// Results must be in descending order and (as key multisets) equal the
// reference. Payload correctness for KV types is checked via exact multiset
// equality when keys are unique.
template <typename E>
void CheckResult(const std::vector<E>& got, const std::vector<E>& expect) {
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_FALSE(ElementTraits<E>::Less(got[i - 1], got[i]))
        << "result not descending at " << i;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(ElementTraits<E>::PrimaryKey(got[i]),
              ElementTraits<E>::PrimaryKey(expect[i]))
        << "key mismatch at rank " << i;
  }
}

template <typename E>
void RunCase(const std::vector<E>& data, size_t k,
             const BitonicOptions& opts = {}) {
  simt::Device dev;
  auto result = BitonicTopK(dev, data.data(), data.size(), k, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  CheckResult(result->items, ReferenceTopK(data, k));
  EXPECT_GT(result->kernel_ms, 0.0);
  EXPECT_GT(result->kernels_launched, 0);
}

// --- Basic functionality ------------------------------------------------------

TEST(BitonicTopKTest, TinyInput) {
  RunCase<float>({3.f, 1.f, 4.f, 1.5f, 9.f, 2.6f, 5.f, 3.5f}, 4);
}

TEST(BitonicTopKTest, KEqualsOne) {
  auto data = GenerateFloats(10000, Distribution::kUniform);
  RunCase(data, 1);
}

TEST(BitonicTopKTest, KEqualsN) {
  auto data = GenerateFloats(256, Distribution::kUniform);
  RunCase(data, 256);
}

TEST(BitonicTopKTest, NonPowerOfTwoN) {
  auto data = GenerateFloats(100003, Distribution::kUniform);
  RunCase(data, 32);
}

TEST(BitonicTopKTest, SingleElement) { RunCase<float>({42.f}, 1); }

TEST(BitonicTopKTest, DuplicateKeys) {
  std::vector<float> data(5000, 7.0f);
  for (int i = 0; i < 100; ++i) data[i * 37] = 9.0f;
  RunCase(data, 64);
}

TEST(BitonicTopKTest, NegativeValues) {
  auto data = GenerateFloats(20000, Distribution::kUniform);
  for (size_t i = 0; i < data.size(); i += 2) data[i] = -data[i];
  RunCase(data, 128);
}

// --- Validation -----------------------------------------------------------------

TEST(BitonicTopKTest, RejectsNonPowerOfTwoK) {
  simt::Device dev;
  auto data = GenerateFloats(1024, Distribution::kUniform);
  auto r = BitonicTopK(dev, data.data(), data.size(), 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BitonicTopKTest, RejectsKGreaterThanN) {
  simt::Device dev;
  auto data = GenerateFloats(16, Distribution::kUniform);
  EXPECT_FALSE(BitonicTopK(dev, data.data(), data.size(), 32).ok());
}

TEST(BitonicTopKTest, RejectsZeroK) {
  simt::Device dev;
  auto data = GenerateFloats(16, Distribution::kUniform);
  EXPECT_FALSE(BitonicTopK(dev, data.data(), data.size(), 0).ok());
}

TEST(BitonicTopKTest, RejectsOversizedK) {
  simt::Device dev;
  auto data = GenerateFloats(1 << 16, Distribution::kUniform);
  auto r = BitonicTopK(dev, data.data(), data.size(), 4096);
  ASSERT_FALSE(r.ok());
}

// --- Parameterized sweep: k x distribution (property-style) ---------------------

struct SweepParam {
  size_t k;
  Distribution dist;
};

class BitonicSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BitonicSweepTest, MatchesReference) {
  auto [k, dist] = GetParam();
  auto data = GenerateFloats(1 << 16, dist, /*seed=*/k * 7919 + 1);
  RunCase(data, k);
}

INSTANTIATE_TEST_SUITE_P(
    KAndDistribution, BitonicSweepTest,
    ::testing::Values(
        SweepParam{1, Distribution::kUniform},
        SweepParam{2, Distribution::kUniform},
        SweepParam{8, Distribution::kUniform},
        SweepParam{32, Distribution::kUniform},
        SweepParam{64, Distribution::kUniform},
        SweepParam{256, Distribution::kUniform},
        SweepParam{512, Distribution::kUniform},
        SweepParam{1024, Distribution::kUniform},
        SweepParam{32, Distribution::kIncreasing},
        SweepParam{32, Distribution::kDecreasing},
        SweepParam{32, Distribution::kBucketKiller},
        SweepParam{256, Distribution::kIncreasing},
        SweepParam{1024, Distribution::kDecreasing}),
    [](const auto& info) {
      return std::string(DistributionName(info.param.dist)) + "_k" +
             std::to_string(info.param.k);
    });

// --- Optimization levels must all be correct -------------------------------------

BitonicOptions LevelOpts(int level) {
  BitonicOptions o = BitonicOptions::Naive();
  if (level >= 1) o.use_shared_memory = true;
  if (level >= 2) o.fuse_kernels = true;
  if (level >= 3) o.combine_steps = true;
  if (level >= 4) o.pad_shared = true;
  if (level >= 5) o.chunk_permute = true;
  if (level >= 6) o.reassign_partitions = true;
  return o;
}

class BitonicOptLevelTest : public ::testing::TestWithParam<int> {};

TEST_P(BitonicOptLevelTest, CorrectAtEveryLevel) {
  auto data = GenerateFloats(1 << 15, Distribution::kUniform, 99);
  RunCase(data, 32, LevelOpts(GetParam()));
  RunCase(data, 256, LevelOpts(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Levels, BitonicOptLevelTest,
                         ::testing::Range(0, 7));

// Optimizations must never change the simulated *result*, only the time;
// and each cumulative level should not be slower than the previous by more
// than noise (monotone ladder, paper Section 4.3).
TEST(BitonicOptLevelTest, LadderIsMonotoneForTop32) {
  auto data = GenerateFloats(1 << 18, Distribution::kUniform, 5);
  double prev_ms = 1e30;
  for (int level = 0; level <= 6; ++level) {
    simt::Device dev;
    auto r = BitonicTopK(dev, data.data(), data.size(), 32, LevelOpts(level));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_LE(r->kernel_ms, prev_ms * 1.10)
        << "optimization level " << level << " slowed things down";
    prev_ms = r->kernel_ms;
  }
}

// --- Elements-per-thread (paper Figure 8 parameter) --------------------------------

class BitonicElemsPerThreadTest : public ::testing::TestWithParam<int> {};

TEST_P(BitonicElemsPerThreadTest, CorrectForAllB) {
  BitonicOptions o;
  o.elems_per_thread = GetParam();
  auto data = GenerateFloats(1 << 15, Distribution::kUniform, 17);
  RunCase(data, 32, o);
}

INSTANTIATE_TEST_SUITE_P(B, BitonicElemsPerThreadTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

// --- Element types -------------------------------------------------------------------

TEST(BitonicTopKTypesTest, U32Keys) {
  auto data = GenerateU32(1 << 15, Distribution::kUniform);
  RunCase(data, 64);
}

TEST(BitonicTopKTypesTest, I32KeysWithNegatives) {
  auto data = GenerateI32(1 << 15, Distribution::kUniform);
  RunCase(data, 64);
}

TEST(BitonicTopKTypesTest, DoubleKeys) {
  auto data = GenerateDoubles(1 << 15, Distribution::kUniform);
  RunCase(data, 64);
}

TEST(BitonicTopKTypesTest, KVCarriesPayload) {
  auto keys = GenerateFloats(1 << 14, Distribution::kUniform);
  std::vector<KV> data(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    data[i] = KV{keys[i], static_cast<uint32_t>(i)};
  }
  simt::Device dev;
  auto r = BitonicTopK(dev, data.data(), data.size(), 32);
  ASSERT_TRUE(r.ok()) << r.status();
  auto expect = ReferenceTopK(data, 32);
  // Uniform floats from mt19937 are almost surely unique -> payloads must
  // match exactly.
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(r->items[i].key, expect[i].key);
    EXPECT_EQ(r->items[i].value, expect[i].value)
        << "payload lost at rank " << i;
  }
}

TEST(BitonicTopKTypesTest, KKVLexicographicTieBreak) {
  // Primary keys drawn from a tiny set force key2 to decide order.
  std::mt19937 rng(3);
  std::vector<KKV> data(1 << 13);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = KKV{static_cast<float>(rng() % 4),
                  static_cast<float>(rng() % 1000) / 1000.f,
                  static_cast<uint32_t>(i)};
  }
  simt::Device dev;
  auto r = BitonicTopK(dev, data.data(), data.size(), 16);
  ASSERT_TRUE(r.ok()) << r.status();
  auto expect = ReferenceTopK(data, 16);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(r->items[i].key, expect[i].key);
    EXPECT_EQ(r->items[i].key2, expect[i].key2);
  }
}

TEST(BitonicTopKTypesTest, KKKVRuns) {
  std::mt19937 rng(4);
  std::vector<KKKV> data(1 << 13);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = KKKV{static_cast<float>(rng()) / 4e9f,
                   static_cast<float>(rng()) / 4e9f,
                   static_cast<float>(rng()) / 4e9f,
                   static_cast<uint32_t>(i)};
  }
  simt::Device dev;
  auto r = BitonicTopK(dev, data.data(), data.size(), 64);
  ASSERT_TRUE(r.ok()) << r.status();
  CheckResult(r->items, ReferenceTopK(data, 64));
}

// --- Performance-model sanity ---------------------------------------------------------

TEST(BitonicTopKPerfTest, DistributionInvariantTime) {
  // The bitonic network is data-oblivious: simulated time must be nearly
  // identical across distributions (paper Section 6.4).
  const size_t n = 1 << 18;
  double base_ms = -1;
  for (auto dist : {Distribution::kUniform, Distribution::kIncreasing,
                    Distribution::kBucketKiller}) {
    simt::Device dev;
    auto data = GenerateFloats(n, dist);
    auto r = BitonicTopK(dev, data.data(), n, 32);
    ASSERT_TRUE(r.ok());
    if (base_ms < 0) {
      base_ms = r->kernel_ms;
    } else {
      EXPECT_NEAR(r->kernel_ms, base_ms, base_ms * 0.02);
    }
  }
}

TEST(BitonicTopKPerfTest, PaddingReducesBankConflicts) {
  const size_t n = 1 << 18;
  auto data = GenerateFloats(n, Distribution::kUniform);
  BitonicOptions unpadded;
  unpadded.pad_shared = false;
  unpadded.chunk_permute = false;
  unpadded.elems_per_thread = 16;
  BitonicOptions padded = unpadded;
  padded.pad_shared = true;

  simt::Device d1, d2;
  ASSERT_TRUE(BitonicTopK(d1, data.data(), n, 32, unpadded).ok());
  ASSERT_TRUE(BitonicTopK(d2, data.data(), n, 32, padded).ok());
  EXPECT_LT(d2.total_metrics().bank_conflict_cycles,
            d1.total_metrics().bank_conflict_cycles / 2);
}

}  // namespace
}  // namespace mptopk::gpu
