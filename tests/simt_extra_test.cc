// Additional simulator coverage: buffer ownership semantics, span
// sub-views, metrics arithmetic, partial-thread regions, dependent-latency
// pricing, and tracing determinism.
#include <gtest/gtest.h>

#include <numeric>

#include "simt/device.h"

namespace mptopk::simt {
namespace {

// --- DeviceBuffer ownership -----------------------------------------------------

TEST(DeviceBufferTest, MoveTransfersOwnership) {
  Device dev;
  auto a = dev.Alloc<float>(100).value();
  size_t bytes = dev.allocated_bytes();
  DeviceBuffer<float> b = std::move(a);
  EXPECT_EQ(dev.allocated_bytes(), bytes) << "move must not double-count";
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented
  DeviceBuffer<float> c;
  c = std::move(b);
  EXPECT_EQ(dev.allocated_bytes(), bytes);
  EXPECT_EQ(c.size(), 100u);
}

TEST(DeviceBufferTest, MoveAssignReleasesOldAllocation) {
  Device dev;
  auto a = dev.Alloc<float>(100).value();
  auto b = dev.Alloc<float>(200).value();
  EXPECT_EQ(dev.allocated_bytes(), 1200u);
  a = std::move(b);  // the 100-float allocation must be released
  EXPECT_EQ(dev.allocated_bytes(), 800u);
}

// --- GlobalSpan sub-views --------------------------------------------------------

TEST(GlobalSpanTest, SubspanAddressesAndBounds) {
  Device dev;
  auto buf = dev.Alloc<int>(128).value();
  std::iota(buf.host_data(), buf.host_data() + 128, 0);
  GlobalSpan<int> whole(buf);
  GlobalSpan<int> part = whole.subspan(32, 64);
  EXPECT_EQ(part.size(), 64u);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 32}, [&](Block& blk) {
    blk.ForEachThread([&](Thread& t) {
      if (t.tid == 0) {
        EXPECT_EQ(part.Read(t, 0), 32);
        EXPECT_EQ(part.Read(t, 63), 95);
      }
    });
  });
  ASSERT_TRUE(stats.ok());
}

// --- Metrics arithmetic ----------------------------------------------------------

TEST(MetricsTest, ScaleRoundsCounters) {
  KernelMetrics m;
  m.global_bytes = 100;
  m.shared_cycles = 7;
  m.dependent_stall_cycles = 3;
  m.Scale(2.5);
  EXPECT_EQ(m.global_bytes, 250u);
  EXPECT_EQ(m.shared_cycles, 18u);  // 17.5 rounds
  EXPECT_EQ(m.dependent_stall_cycles, 8u);
}

TEST(MetricsTest, AccumulateAndPrint) {
  KernelMetrics a, b;
  a.global_bytes = 10;
  a.warp_instructions = 2;
  b.global_bytes = 5;
  b.blocks_traced = 1;
  a += b;
  EXPECT_EQ(a.global_bytes, 15u);
  EXPECT_EQ(a.blocks_traced, 1u);
  EXPECT_NE(a.ToString().find("global"), std::string::npos);
}

// --- Partial-thread regions ------------------------------------------------------

TEST(BlockTest, ForEachThreadBelowRunsSubset) {
  Device dev;
  auto buf = dev.Alloc<int>(64).value();
  std::fill(buf.host_data(), buf.host_data() + 64, 0);
  GlobalSpan<int> g(buf);
  auto stats = dev.Launch({.grid_dim = 1, .block_dim = 64}, [&](Block& blk) {
    blk.ForEachThreadBelow(16, [&](Thread& t) { g.Write(t, t.tid, 1); });
  });
  ASSERT_TRUE(stats.ok());
  int sum = std::accumulate(buf.host_data(), buf.host_data() + 64, 0);
  EXPECT_EQ(sum, 16);
}

// --- ThreadScratch stability -----------------------------------------------------

TEST(BlockTest, ThreadScratchPointersStableAcrossCalls) {
  Device dev;
  auto stats = dev.Launch({.grid_dim = 2, .block_dim = 32}, [&](Block& blk) {
    int* a = blk.ThreadScratch<int>(4);
    double* b = blk.ThreadScratch<double>(8);  // must not invalidate a
    int* a2 = a;
    blk.ForEachThread([&](Thread& t) {
      a2[t.tid * 4] = t.tid;
      b[t.tid * 8] = t.tid * 2.0;
    });
    blk.ForEachThread([&](Thread& t) {
      EXPECT_EQ(a[t.tid * 4], t.tid);
      EXPECT_EQ(b[t.tid * 8], t.tid * 2.0);
    });
  });
  ASSERT_TRUE(stats.ok());
}

// --- Dependent-latency pricing ---------------------------------------------------

TEST(TimingTest, DependentCyclesAddToTime) {
  Device dev;
  auto buf = dev.Alloc<float>(256).value();
  GlobalSpan<float> g(buf);
  auto run = [&](uint64_t dep) {
    auto stats = dev.Launch({.grid_dim = 1, .block_dim = 256},
                            [&](Block& blk) {
      blk.ForEachThread([&](Thread& t) {
        g.Write(t, t.tid, 1.0f);
        if (t.tracer != nullptr) t.tracer->RecordDependentCycles(dep);
      });
    });
    return stats->time;
  };
  KernelTime without = run(0);
  KernelTime with = run(10000);
  EXPECT_GT(with.dependent_ms, 0.0);
  EXPECT_NEAR(with.total_ms - without.total_ms, with.dependent_ms, 1e-9);
}

// --- Determinism -----------------------------------------------------------------

TEST(DeterminismTest, IdenticalRunsIdenticalMetrics) {
  auto run = [] {
    Device dev;
    auto buf = dev.Alloc<float>(1 << 14).value();
    GlobalSpan<float> g(buf);
    auto stats = dev.Launch({.grid_dim = 16, .block_dim = 256},
                            [&](Block& blk) {
      auto smem = blk.AllocShared<float>(1024);
      blk.ForEachThread([&](Thread& t) {
        size_t i = static_cast<size_t>(blk.block_idx()) * 1024 + t.tid;
        smem.Write(t, (t.tid * 17) % 1024, static_cast<float>(i));
      });
      blk.Sync();
      blk.ForEachThread([&](Thread& t) {
        size_t i = static_cast<size_t>(blk.block_idx()) * 1024 + t.tid;
        if (i < g.size()) g.Write(t, i, smem.Read(t, t.tid));
      });
    });
    return stats->time.total_ms;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

// --- Occupancy corner cases ------------------------------------------------------

TEST(OccupancyTest, SingleBlockGridStillHasOneResidentBlock) {
  DeviceSpec spec = DeviceSpec::TitanXMaxwell();
  Occupancy occ = ComputeOccupancy(
      spec, KernelResources{.grid_dim = 1, .block_dim = 256,
                            .regs_per_thread = 32,
                            .shared_bytes_per_block = 0});
  // One busy SM hosts the whole block: 8 resident warps, not 8/24.
  EXPECT_GE(occ.resident_warps, 8.0);
  EXPECT_NEAR(occ.sm_utilization, 1.0 / 24, 1e-9);
}

TEST(OccupancyTest, SharedEfficiencySaturatesBeforeGlobal) {
  DeviceSpec spec = DeviceSpec::TitanXMaxwell();
  Occupancy occ = ComputeOccupancy(
      spec, KernelResources{.grid_dim = 1000, .block_dim = 256,
                            .regs_per_thread = 32,
                            .shared_bytes_per_block = 40 * 1024});
  // 2 blocks/SM -> 16 warps: enough for both pipelines...
  EXPECT_DOUBLE_EQ(occ.shared_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(occ.bw_efficiency, 1.0);
  Occupancy low = ComputeOccupancy(
      spec, KernelResources{.grid_dim = 1000, .block_dim = 64,
                            .regs_per_thread = 32,
                            .shared_bytes_per_block = 40 * 1024});
  // 2 blocks/SM of 2 warps each: shared starved too, global more so.
  EXPECT_LT(low.bw_efficiency, low.shared_efficiency);
}

}  // namespace
}  // namespace mptopk::simt
